"""Ablation — the engine optimisations of Section 4 and the decode cache.

The paper attributes the speed of its generated simulators to (1) the
precomputed per-(place, type) sorted transition lists, (2) evaluating places
in reverse topological order so only feedback places need two-list storage,
and (3) decoding instructions once and caching the decoded tokens.  The
configurations are the engine axis of a declarative
:class:`~repro.campaign.CampaignSpec` — one
:class:`~repro.campaign.EngineVariant` per knob — measured on the
StrongARM model with each optimisation disabled in turn, with a hard
assertion that the simulated behaviour never changes (they are pure
performance knobs).
"""

import pytest

from repro.campaign import CampaignSpec, EngineVariant, execute_run, plan_campaign
from repro.core import EngineOptions

from conftest import BENCH_SCALE, record_result

#: One engine variant per Section 4 knob, plus the generated-simulator fast
#: path (repro.compiled); the equality assertion below doubles as a
#: differential check of the two backends.
ABLATION_CAMPAIGN = CampaignSpec(
    name="ablation",
    processors=("strongarm",),
    workloads=("crc",),
    scales=(BENCH_SCALE,),
    engines=(
        EngineVariant("all-optimisations", EngineOptions()),
        EngineVariant("no-sorted-transitions", EngineOptions(use_sorted_transitions=False)),
        EngineVariant("two-list-everywhere", EngineOptions(two_list_everywhere=True)),
        EngineVariant("no-decode-cache", EngineOptions(), use_decode_cache=False),
        EngineVariant("compiled-backend", EngineOptions(backend="compiled")),
    ),
    description="Section 4 ablation: each engine optimisation disabled in turn",
)
ABLATION_PLAN = plan_campaign(ABLATION_CAMPAIGN)

_reference = {}


@pytest.mark.parametrize(
    "run", ABLATION_PLAN.runs, ids=[run.engine.label for run in ABLATION_PLAN.runs]
)
def test_ablation_engine_optimizations(benchmark, run):
    result = benchmark.pedantic(
        lambda: execute_run(run, campaign=ABLATION_CAMPAIGN.name), rounds=1, iterations=1
    )

    row = {
        "configuration": run.engine.label,
        "cycles": result.cycles,
        "kcycles_per_sec": result.cycles_per_second / 1e3,
        "r0": hex(result.final_r0),
    }
    benchmark.extra_info.update({k: v for k, v in row.items() if k != "r0"})
    record_result("Ablation - engine optimisations (Section 4)", row)

    key = (result.cycles, result.instructions, result.final_r0)
    reference = _reference.setdefault("key", key)
    assert key == reference, "disabling an optimisation changed simulated behaviour"
