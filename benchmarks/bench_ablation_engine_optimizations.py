"""Ablation — the engine optimisations of Section 4 and the decode cache.

The paper attributes the speed of its generated simulators to (1) the
precomputed per-(place, type) sorted transition lists, (2) evaluating places
in reverse topological order so only feedback places need two-list storage,
and (3) decoding instructions once and caching the decoded tokens.  This
benchmark measures the StrongARM simulator with each optimisation disabled
and verifies the simulated behaviour never changes (they are pure
performance knobs).
"""

import pytest

from repro.core import EngineOptions
from repro.processors import build_strongarm_processor
from repro.workloads import get_workload

from conftest import BENCH_SCALE, record_result

CONFIGURATIONS = {
    "all-optimisations": dict(engine_options=EngineOptions()),
    "no-sorted-transitions": dict(
        engine_options=EngineOptions(use_sorted_transitions=False)
    ),
    "two-list-everywhere": dict(engine_options=EngineOptions(two_list_everywhere=True)),
    "no-decode-cache": dict(engine_options=EngineOptions(), use_decode_cache=False),
    # The generated-simulator fast path: on top of the interpreted engine's
    # optimisations, the model is partially evaluated into flat closures
    # (repro.compiled).  The equality assertion below doubles as a
    # differential check of the two backends.
    "compiled-backend": dict(engine_options=EngineOptions(backend="compiled")),
}

_reference = {}


@pytest.mark.parametrize("configuration", list(CONFIGURATIONS))
def test_ablation_engine_optimizations(benchmark, configuration):
    workload = get_workload("crc", scale=BENCH_SCALE)
    kwargs = CONFIGURATIONS[configuration]

    def run():
        processor = build_strongarm_processor(**kwargs)
        processor.load_program(workload.program)
        stats = processor.run()
        return processor, stats

    processor, stats = benchmark.pedantic(run, rounds=1, iterations=1)

    wall = stats.wall_time_seconds or 1e-9
    row = {
        "configuration": configuration,
        "cycles": stats.cycles,
        "kcycles_per_sec": stats.cycles / wall / 1e3,
        "r0": hex(processor.register(0)),
    }
    benchmark.extra_info.update({k: v for k, v in row.items() if k != "r0"})
    record_result("Ablation - engine optimisations (Section 4)", row)

    key = (stats.cycles, stats.instructions, processor.register(0))
    reference = _reference.setdefault("key", key)
    assert key == reference, "disabling an optimisation changed simulated behaviour"
