"""Rows per host second: lane-batched execution vs scalar ``generated``.

The batched backend (PR 7, :mod:`repro.batched`) steps N same-module
simulations in lockstep so one run-loop dispatch — the ``finished()``
probe, the budget checks, the ``step()`` call and the per-cycle stats
bookkeeping — is amortised over a whole stride of cycles across every
lane.  In pure Python that overhead is a few hundred nanoseconds against
a step body of tens of microseconds, so the win is a *systematic few
percent*, not a SIMD-style multiple — and host noise (frequency scaling,
noisy CI neighbours) on any single cell routinely exceeds it.

The gate therefore follows the measurement discipline the margin demands:

* the scalar and batched series are interleaved round by round, so noise
  hits both alike;
* processors are built once and reused across rounds (``reset()`` +
  ``load_program``), so module emission and cache traffic stay outside
  the timed region;
* each cell takes its best round, and the assertion compares the
  *aggregate* best-of walls over the whole capacity sweep rather than
  per-model cells, where a single scheduler hiccup can flip the sign.

The grid is the Figure 12 capacity sweep (strongarm-c512/-c2k/-c8k) —
three cache geometries over one pipeline, i.e. the "simulate many
configurations of one model" campaign shape the batch planner groups
into lane batches.
"""

import time

import pytest

from repro.batched import LaneBatch
from repro.core import EngineOptions
from repro.processors import build_processor
from repro.workloads import get_workload

from conftest import record_result

#: The capacity sweep: one StrongARM pipeline, three data-cache geometries.
SWEEP = ("strongarm-c512", "strongarm-c2k", "strongarm-c8k")

#: One workload per lane: (kernel, scale).  Three lanes per model keeps the
#: batch within the default lane budget while still amortising dispatch.
KERNELS = (("crc", 2), ("compress", 2), ("blowfish", 1))

#: Interleaved rounds per cell; each backend's figure is its best round.
ROUNDS = 7


def _programs():
    return [get_workload(kernel, scale=scale).program for kernel, scale in KERNELS]


def _scalar_round(processors, programs):
    """One generated-backend round: run every workload, sum the walls."""
    wall = 0.0
    for processor, program in zip(processors, programs):
        processor.reset()
        processor.load_program(program)
        start = time.perf_counter()
        processor.run()
        wall += time.perf_counter() - start
    return wall


def _batched_round(processors, programs, batch):
    """One batched round: reload every lane, drain the batch, time the drain."""
    for processor, program in zip(processors, programs):
        processor.reset()
        processor.load_program(program)
    start = time.perf_counter()
    batch.run()
    return time.perf_counter() - start


def test_batched_beats_scalar_generated_on_the_capacity_sweep(benchmark):
    """Aggregate best-of batched wall must undercut scalar ``generated``.

    CI runs this as a named gate: a batched backend that stops paying for
    its extra bookkeeping is a performance regression even while it stays
    bit-identical.  The same simulated cycles on both sides are asserted
    so the comparison can never be won by simulating less.
    """

    def measure():
        cells = {}
        for model in SWEEP:
            programs = _programs()
            scalar = [build_processor(model, backend="generated") for _ in KERNELS]
            lanes = [
                build_processor(
                    model,
                    engine_options=EngineOptions(backend="batched", lanes=len(KERNELS)),
                )
                for _ in KERNELS
            ]
            batch = LaneBatch([processor.engine for processor in lanes])
            scalar_walls, batched_walls = [], []
            for _ in range(ROUNDS):
                scalar_walls.append(_scalar_round(scalar, programs))
                batched_walls.append(_batched_round(lanes, programs, batch))
            for reference, lane in zip(scalar, lanes):
                assert lane.stats.cycles == reference.stats.cycles, model
                assert lane.stats.instructions == reference.stats.instructions, model
            cells[model] = (min(scalar_walls), min(batched_walls))
        return cells

    cells = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = len(KERNELS)
    for model, (scalar_wall, batched_wall) in cells.items():
        record_result(
            "Batched execution - RunSpec rows per host second (capacity sweep)",
            {
                "model": model,
                "lanes": rows,
                "generated_rows_per_sec": rows / scalar_wall,
                "batched_rows_per_sec": rows / batched_wall,
                "speedup": scalar_wall / batched_wall,
            },
        )

    scalar_total = sum(scalar for scalar, _ in cells.values())
    batched_total = sum(batched for _, batched in cells.values())
    benchmark.extra_info["aggregate_speedup"] = round(scalar_total / batched_total, 4)
    assert batched_total < scalar_total, (
        "batched backend is not faster than scalar generated on the sweep "
        "(generated %.4fs vs batched %.4fs, speedup %.4f)"
        % (scalar_total, batched_total, scalar_total / batched_total)
    )


def test_single_lane_batch_overhead_is_bounded():
    """A batch of one must not tax the scalar path it degenerates to.

    ``lanes=1`` is what the campaign runner hands the batch executor when
    a group doesn't fill — it pays the lane-tuple indirection without any
    amortisation, so some overhead is expected; it just must stay within
    a sane bound rather than silently regressing multiplicatively.
    """
    program = get_workload("crc", scale=2).program
    scalar = build_processor("strongarm", backend="generated")
    lane = build_processor(
        "strongarm", engine_options=EngineOptions(backend="batched", lanes=1)
    )
    batch = LaneBatch([lane.engine])
    scalar_walls, batched_walls = [], []
    for _ in range(5):
        scalar_walls.append(_scalar_round([scalar], [program]))
        batched_walls.append(_batched_round([lane], [program], batch))
    assert lane.stats.cycles == scalar.stats.cycles
    ratio = min(batched_walls) / min(scalar_walls)
    record_result(
        "Batched execution - RunSpec rows per host second (capacity sweep)",
        {
            "model": "strongarm (lanes=1)",
            "lanes": 1,
            "generated_rows_per_sec": 1 / min(scalar_walls),
            "batched_rows_per_sec": 1 / min(batched_walls),
            "speedup": 1 / ratio,
        },
    )
    if ratio > 1.15:
        pytest.fail("single-lane batch is %.2fx the scalar wall" % ratio)
