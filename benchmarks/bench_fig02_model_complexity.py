"""Figures 1 & 2 — modeling complexity of RCPN vs an equivalent CPN.

The paper's Figures 1 and 2 argue qualitatively that the RCPN of a pipeline
mirrors its block diagram while the equivalent CPN needs complement places
and circular arcs for every capacity constraint.  This benchmark makes the
claim quantitative for every processor model in the repository: it converts
each RCPN to a standard CPN and reports the structural blow-up.
"""

import pytest

from repro.analysis import model_complexity_table
from repro.campaign import ALL, CampaignSpec, campaign_processors
from repro.processors import build_processor

from conftest import record_result

#: The model axis of the figure, declared the campaign way: every
#: registered model, including the spec-defined variants.
MODELS = campaign_processors(
    CampaignSpec(name="fig02", processors=(ALL,), workloads=())
)


@pytest.mark.parametrize("model", list(MODELS))
def test_fig02_model_complexity(benchmark, model):
    def build_and_convert():
        return model_complexity_table({model: build_processor(model)})[0]

    row = benchmark.pedantic(build_and_convert, rounds=1, iterations=1)

    benchmark.extra_info.update(
        {key: value for key, value in row.items() if isinstance(value, (int, float))}
    )
    record_result("Figures 1/2 - RCPN vs CPN structural complexity", row)

    # The RCPN stays close to the block diagram; the CPN pays extra places
    # (one complement place per finite stage) and extra circular arcs.
    assert row["cpn_places"] > row["rcpn_places"]
    assert row["cpn_arcs"] > row["rcpn_arcs"]
    assert row["arc_blowup"] >= 1.5
