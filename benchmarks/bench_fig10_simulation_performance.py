"""Figure 10 — simulation performance (simulated cycles per host second).

The paper runs six benchmarks on SimpleScalar-ARM and on the generated
XScale and StrongARM simulators and reports million-cycles-per-second for
each.  This module regenerates the same rows: one benchmark per (simulator,
workload) pair, with throughput, CPI and the speed-up over the SimpleScalar
baseline recorded in ``extra_info`` and in the end-of-session table.

The absolute numbers are host- and language-dependent (see EXPERIMENTS.md);
the rows reproduce the figure's *structure*: same simulators, same
benchmarks, same metric.
"""

import pytest

from repro.analysis import run_processor, run_simplescalar
from repro.analysis.metrics import run_inorder
from repro.processors import build_strongarm_processor, build_xscale_processor
from repro.workloads import get_workload, workload_names

from conftest import BENCH_SCALE, record_result

SIMULATORS = {
    "simplescalar-arm": lambda w: run_simplescalar(w),
    "rcpn-xscale": lambda w: run_processor(build_xscale_processor, w, label="rcpn-xscale"),
    "rcpn-strongarm": lambda w: run_processor(build_strongarm_processor, w, label="rcpn-strongarm"),
    "inorder-baseline": lambda w: run_inorder(w),
}


@pytest.mark.parametrize("kernel", workload_names())
@pytest.mark.parametrize("simulator", list(SIMULATORS))
def test_fig10_simulation_performance(benchmark, simulator, kernel):
    workload = get_workload(kernel, scale=BENCH_SCALE)
    runner = SIMULATORS[simulator]

    result = benchmark.pedantic(lambda: runner(workload), rounds=1, iterations=1)

    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cycles_per_second"] = round(result.cycles_per_second)
    benchmark.extra_info["cpi"] = round(result.cpi, 3)
    record_result(
        "Figure 10 - simulation performance (simulated kcycles / host second)",
        {
            "benchmark": kernel,
            "simulator": simulator,
            "kcycles_per_sec": result.cycles_per_second / 1e3,
            "cycles": result.cycles,
            "cpi": result.cpi,
        },
    )
    assert result.finish_reason == "halt"
    assert result.cycles > 0
