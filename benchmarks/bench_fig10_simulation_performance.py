"""Figure 10 — simulation performance (simulated cycles per host second).

The paper runs six benchmarks on SimpleScalar-ARM and on the generated
XScale and StrongARM simulators and reports million-cycles-per-second for
each.  This module regenerates the same rows: one benchmark per (simulator,
workload) pair, with throughput, CPI and the speed-up over the SimpleScalar
baseline recorded in ``extra_info`` and in the end-of-session table.

The RCPN models appear twice: once with the interpreted engine and once
with the compiled (generated) engine, so the table also quantifies the
paper's core claim — the generated simulator outrunning the interpreted
model — on this host.  ``test_fig10_compiled_vs_interpreted_speedup``
measures that gap head-to-head (best of several runs, identical simulated
cycles enforced).

The absolute numbers are host- and language-dependent (see EXPERIMENTS.md);
the rows reproduce the figure's *structure*: same simulators, same
benchmarks, same metric.
"""

import functools

import pytest

from repro.analysis import run_processor, run_simplescalar
from repro.analysis.metrics import run_inorder
from repro.processors import (
    build_strongarm_processor,
    build_xscale_processor,
    get_entry,
    processor_names,
    supported_kernels,
)
from repro.workloads import get_workload, workload_names

from conftest import BENCH_SCALE, record_result


def _model_runner(name, backend):
    label = "rcpn-%s%s" % (name, "-compiled" if backend == "compiled" else "")
    builder = get_entry(name).builder
    return label, functools.partial(run_processor, builder, label=label, backend=backend)


#: One row per fixed baseline plus two rows (interpreted/compiled engine)
#: per registered RCPN model — the registry decides what appears in the
#: figure, so spec-defined variants show up automatically.  Each model row
#: only pairs with the kernels its ISA subset supports.
SIMULATORS = {
    "simplescalar-arm": lambda w: run_simplescalar(w),
    "inorder-baseline": lambda w: run_inorder(w),
}
SIMULATOR_KERNELS = [
    (label, kernel) for label in SIMULATORS for kernel in workload_names()
]
for _name in processor_names():
    for _backend in ("interpreted", "compiled"):
        _label, _runner = _model_runner(_name, _backend)
        SIMULATORS[_label] = _runner
        SIMULATOR_KERNELS.extend(
            (_label, kernel) for kernel in supported_kernels(_name, workload_names())
        )


@pytest.mark.parametrize("simulator,kernel", SIMULATOR_KERNELS)
def test_fig10_simulation_performance(benchmark, simulator, kernel):
    workload = get_workload(kernel, scale=BENCH_SCALE)
    runner = SIMULATORS[simulator]

    result = benchmark.pedantic(lambda: runner(workload), rounds=1, iterations=1)

    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cycles_per_second"] = round(result.cycles_per_second)
    benchmark.extra_info["cpi"] = round(result.cpi, 3)
    record_result(
        "Figure 10 - simulation performance (simulated kcycles / host second)",
        {
            "benchmark": kernel,
            "simulator": simulator,
            "kcycles_per_sec": result.cycles_per_second / 1e3,
            "cycles": result.cycles,
            "cpi": result.cpi,
        },
    )
    assert result.finish_reason == "halt"
    assert result.cycles > 0


@pytest.mark.parametrize("model", ["strongarm", "xscale"])
def test_fig10_compiled_vs_interpreted_speedup(benchmark, model):
    """The generated (compiled) engine must outrun the interpreted one.

    Both backends simulate the same workload; the simulated cycle counts
    must be bit-identical and the compiled backend's throughput (cycles per
    host second, best of three runs to suppress scheduler noise) must be
    measurably higher.
    """
    builder = {"strongarm": build_strongarm_processor, "xscale": build_xscale_processor}[model]
    workload = get_workload("crc", scale=max(BENCH_SCALE, 4))
    rounds = 3

    def measure():
        # Interleave the backends so host noise (frequency scaling, noisy
        # CI neighbours) hits both measurement series, then take the best
        # round of each.
        runs = {"interpreted": [], "compiled": []}
        for _ in range(rounds):
            for backend in runs:
                runs[backend].append(
                    run_processor(
                        builder, workload, label="rcpn-%s-%s" % (model, backend), backend=backend
                    )
                )
        for results in runs.values():
            assert len({r.cycles for r in results}) == 1, "non-deterministic simulation"
        return (
            max(runs["interpreted"], key=lambda r: r.cycles_per_second),
            max(runs["compiled"], key=lambda r: r.cycles_per_second),
        )

    interpreted, compiled = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert compiled.cycles == interpreted.cycles
    assert compiled.instructions == interpreted.instructions
    speedup = compiled.cycles_per_second / interpreted.cycles_per_second
    benchmark.extra_info["speedup"] = round(speedup, 3)
    record_result(
        "Figure 10 (cont.) - compiled vs interpreted engine",
        {
            "model": model,
            "interpreted_kc_per_sec": interpreted.cycles_per_second / 1e3,
            "compiled_kc_per_sec": compiled.cycles_per_second / 1e3,
            "speedup": speedup,
        },
    )
    assert speedup > 1.0, (
        "compiled backend is not faster than interpreted (speedup=%.3f)" % speedup
    )


@pytest.mark.parametrize("model", ["strongarm", "xscale"])
def test_fig10_plan_cache_hits_on_rebuild(benchmark, model):
    """Repeated builds of one spec reuse the generation-time analysis.

    The benchmark harness rebuilds the same models dozens of times; the
    spec fingerprint keys the static-schedule and compiled-plan caches so
    every rebuild after the first skips the structural analysis.  This test
    measures a rebuild and asserts both caches report a hit.
    """
    from repro.compiled.plan import PLAN_CACHE
    from repro.core.scheduler import SCHEDULE_CACHE

    builder = {"strongarm": build_strongarm_processor, "xscale": build_xscale_processor}[model]
    builder(backend="compiled")  # prime the caches (miss or earlier hit)

    processor = benchmark.pedantic(lambda: builder(backend="compiled"), rounds=1, iterations=1)

    report = processor.generation_report
    assert report.spec_fingerprint is not None
    assert report.schedule_cache == "hit"
    assert report.compilation["plan_cache"] == "hit"
    row = {
        "model": model,
        "schedule_cache": report.schedule_cache,
        "plan_cache": report.compilation["plan_cache"],
        "schedule_cache_hits": SCHEDULE_CACHE.stats()["hits"],
        "plan_cache_hits": PLAN_CACHE.stats()["hits"],
    }
    benchmark.extra_info.update(row)
    record_result("Figure 10 (cont.) - generation cache on spec rebuilds", row)
