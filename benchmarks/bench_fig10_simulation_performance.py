"""Figure 10 — simulation performance (simulated cycles per host second).

The paper runs six benchmarks on SimpleScalar-ARM and on the generated
XScale and StrongARM simulators and reports million-cycles-per-second for
each.  This module regenerates the same rows: one benchmark per (simulator,
workload) pair, with throughput, CPI and the speed-up over the SimpleScalar
baseline recorded in ``extra_info`` and in the end-of-session table.

The RCPN models appear twice: once with the interpreted engine and once
with the compiled (generated) engine, so the table also quantifies the
paper's core claim — the generated simulator outrunning the interpreted
model — on this host.  ``test_fig10_compiled_vs_interpreted_speedup``
measures that gap head-to-head (best of several runs, identical simulated
cycles enforced).

The absolute numbers are host- and language-dependent (see EXPERIMENTS.md);
the rows reproduce the figure's *structure*: same simulators, same
benchmarks, same metric.
"""

import pytest

from repro.analysis import run_processor, run_simplescalar
from repro.analysis.metrics import run_inorder
from repro.processors import build_strongarm_processor, build_xscale_processor
from repro.workloads import get_workload, workload_names

from conftest import BENCH_SCALE, record_result

SIMULATORS = {
    "simplescalar-arm": lambda w: run_simplescalar(w),
    "rcpn-xscale": lambda w: run_processor(build_xscale_processor, w, label="rcpn-xscale"),
    "rcpn-strongarm": lambda w: run_processor(build_strongarm_processor, w, label="rcpn-strongarm"),
    "rcpn-xscale-compiled": lambda w: run_processor(
        build_xscale_processor, w, label="rcpn-xscale-compiled", backend="compiled"
    ),
    "rcpn-strongarm-compiled": lambda w: run_processor(
        build_strongarm_processor, w, label="rcpn-strongarm-compiled", backend="compiled"
    ),
    "inorder-baseline": lambda w: run_inorder(w),
}


@pytest.mark.parametrize("kernel", workload_names())
@pytest.mark.parametrize("simulator", list(SIMULATORS))
def test_fig10_simulation_performance(benchmark, simulator, kernel):
    workload = get_workload(kernel, scale=BENCH_SCALE)
    runner = SIMULATORS[simulator]

    result = benchmark.pedantic(lambda: runner(workload), rounds=1, iterations=1)

    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cycles_per_second"] = round(result.cycles_per_second)
    benchmark.extra_info["cpi"] = round(result.cpi, 3)
    record_result(
        "Figure 10 - simulation performance (simulated kcycles / host second)",
        {
            "benchmark": kernel,
            "simulator": simulator,
            "kcycles_per_sec": result.cycles_per_second / 1e3,
            "cycles": result.cycles,
            "cpi": result.cpi,
        },
    )
    assert result.finish_reason == "halt"
    assert result.cycles > 0


@pytest.mark.parametrize("model", ["strongarm", "xscale"])
def test_fig10_compiled_vs_interpreted_speedup(benchmark, model):
    """The generated (compiled) engine must outrun the interpreted one.

    Both backends simulate the same workload; the simulated cycle counts
    must be bit-identical and the compiled backend's throughput (cycles per
    host second, best of three runs to suppress scheduler noise) must be
    measurably higher.
    """
    builder = {"strongarm": build_strongarm_processor, "xscale": build_xscale_processor}[model]
    workload = get_workload("crc", scale=max(BENCH_SCALE, 4))
    rounds = 3

    def measure():
        # Interleave the backends so host noise (frequency scaling, noisy
        # CI neighbours) hits both measurement series, then take the best
        # round of each.
        runs = {"interpreted": [], "compiled": []}
        for _ in range(rounds):
            for backend in runs:
                runs[backend].append(
                    run_processor(
                        builder, workload, label="rcpn-%s-%s" % (model, backend), backend=backend
                    )
                )
        for results in runs.values():
            assert len({r.cycles for r in results}) == 1, "non-deterministic simulation"
        return (
            max(runs["interpreted"], key=lambda r: r.cycles_per_second),
            max(runs["compiled"], key=lambda r: r.cycles_per_second),
        )

    interpreted, compiled = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert compiled.cycles == interpreted.cycles
    assert compiled.instructions == interpreted.instructions
    speedup = compiled.cycles_per_second / interpreted.cycles_per_second
    benchmark.extra_info["speedup"] = round(speedup, 3)
    record_result(
        "Figure 10 (cont.) - compiled vs interpreted engine",
        {
            "model": model,
            "interpreted_kc_per_sec": interpreted.cycles_per_second / 1e3,
            "compiled_kc_per_sec": compiled.cycles_per_second / 1e3,
            "speedup": speedup,
        },
    )
    assert speedup > 1.0, (
        "compiled backend is not faster than interpreted (speedup=%.3f)" % speedup
    )
