"""Figure 10 — simulation performance (simulated cycles per host second).

The paper runs six benchmarks on SimpleScalar-ARM and on the generated
XScale and StrongARM simulators and reports million-cycles-per-second for
each.  This module regenerates the same rows: the fixed baselines are
measured directly, and every RCPN (model, kernel, engine) combination is
one run of a declarative :class:`~repro.campaign.CampaignSpec` — the grid
that used to be a hand-rolled loop over the registry is now planned by
``repro.campaign`` and executed through its single
:func:`~repro.campaign.execute_run` path, so the figure and a stored
campaign over the same grid are bit-identical by construction.

The RCPN models appear four times: with the interpreted engine, with the
compiled (closure-specialising) engine, with the generated
(source-emitting, ``repro.codegen``) engine and with the batched
(lane-lockstep, ``repro.batched``) engine, so the table also quantifies
the paper's core claim — the generated simulator outrunning the
interpreted model — on this host.
``test_fig10_fast_backend_vs_interpreted_speedup`` measures the gaps
head-to-head (best of several runs, identical simulated cycles enforced).

The absolute numbers are host- and language-dependent (see EXPERIMENTS.md);
the rows reproduce the figure's *structure*: same simulators, same
benchmarks, same metric.  ``test_fig10_emit_bench_json`` persists the full
table plus per-backend aggregates as ``BENCH_fig10.json`` at the repository
root so the figure is diffable without re-running the harness.
"""

import json
import math
import os
import platform
from collections import defaultdict

import pytest

from repro.analysis import run_processor, run_simplescalar
from repro.analysis.metrics import run_inorder
from repro.campaign import ALL, CampaignSpec, execute_run, plan_campaign
from repro.processors import build_strongarm_processor, build_xscale_processor
from repro.workloads import get_workload, workload_names

from conftest import BENCH_SCALE, record_result

#: The figure's RCPN grid, declaratively: every registered model (so
#: spec-defined variants show up automatically) × every kernel its ISA
#: subset supports × every engine backend.
FIG10_CAMPAIGN = CampaignSpec(
    name="fig10",
    processors=(ALL,),
    workloads=(ALL,),
    scales=(BENCH_SCALE,),
    engines=("interpreted", "compiled", "generated", "batched"),
    description="Figure 10: simulation throughput of every model on every kernel",
)
FIG10_PLAN = plan_campaign(FIG10_CAMPAIGN)

BASELINES = {
    "simplescalar-arm": run_simplescalar,
    "inorder-baseline": run_inorder,
}


def _figure_label(run):
    # The figure's historical row labels: rcpn-<model>[-compiled|-generated].
    backend = run.engine.backend
    return "rcpn-%s%s" % (
        run.processor,
        "" if backend == "interpreted" else "-" + backend,
    )


@pytest.mark.parametrize(
    "baseline,kernel",
    [(label, kernel) for label in BASELINES for kernel in workload_names()],
)
def test_fig10_baseline_performance(benchmark, baseline, kernel):
    workload = get_workload(kernel, scale=BENCH_SCALE)
    runner = BASELINES[baseline]

    result = benchmark.pedantic(lambda: runner(workload), rounds=1, iterations=1)

    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cycles_per_second"] = round(result.cycles_per_second)
    benchmark.extra_info["cpi"] = round(result.cpi, 3)
    record_result(
        "Figure 10 - simulation performance (simulated kcycles / host second)",
        {
            "benchmark": kernel,
            "simulator": baseline,
            "kcycles_per_sec": result.cycles_per_second / 1e3,
            "cycles": result.cycles,
            "cpi": result.cpi,
        },
    )
    assert result.finish_reason == "halt"
    assert result.cycles > 0


@pytest.mark.parametrize("run", FIG10_PLAN.runs, ids=FIG10_PLAN.run_ids())
def test_fig10_simulation_performance(benchmark, run):
    result = benchmark.pedantic(
        lambda: execute_run(run, campaign=FIG10_CAMPAIGN.name), rounds=1, iterations=1
    )

    benchmark.extra_info["simulated_cycles"] = result.cycles
    benchmark.extra_info["cycles_per_second"] = round(result.cycles_per_second)
    benchmark.extra_info["cpi"] = round(result.cpi, 3)
    record_result(
        "Figure 10 - simulation performance (simulated kcycles / host second)",
        {
            "benchmark": run.workload,
            "simulator": _figure_label(run),
            "kcycles_per_sec": result.cycles_per_second / 1e3,
            "cycles": result.cycles,
            "cpi": result.cpi,
        },
    )
    assert result.finish_reason == "halt"
    assert result.cycles > 0


@pytest.mark.parametrize("fast_backend", ["compiled", "generated"])
@pytest.mark.parametrize("model", ["strongarm", "xscale"])
def test_fig10_fast_backend_vs_interpreted_speedup(benchmark, model, fast_backend):
    """Every simulator-generation backend must outrun the interpreted one.

    Both backends simulate the same workload; the simulated cycle counts
    must be bit-identical and the fast backend's throughput (cycles per
    host second, best of three runs to suppress scheduler noise) must be
    strictly higher.  CI gates on the ``generated`` case: a source-level
    emission that fails to beat the interpreter is a regression.
    """
    builder = {"strongarm": build_strongarm_processor, "xscale": build_xscale_processor}[model]
    workload = get_workload("crc", scale=max(BENCH_SCALE, 4))
    rounds = 3

    def measure():
        # Interleave the backends so host noise (frequency scaling, noisy
        # CI neighbours) hits both measurement series, then take the best
        # round of each.
        runs = {"interpreted": [], fast_backend: []}
        for _ in range(rounds):
            for backend in runs:
                runs[backend].append(
                    run_processor(
                        builder, workload, label="rcpn-%s-%s" % (model, backend), backend=backend
                    )
                )
        for results in runs.values():
            assert len({r.cycles for r in results}) == 1, "non-deterministic simulation"
        return (
            max(runs["interpreted"], key=lambda r: r.cycles_per_second),
            max(runs[fast_backend], key=lambda r: r.cycles_per_second),
        )

    interpreted, fast = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert fast.cycles == interpreted.cycles
    assert fast.instructions == interpreted.instructions
    # cycles_per_second is 0.0 (not a ZeroDivisionError) when the host
    # clock reports a sub-tick wall time; degrade the ratio the same way.
    speedup = (
        fast.cycles_per_second / interpreted.cycles_per_second
        if interpreted.cycles_per_second
        else 0.0
    )
    benchmark.extra_info["speedup"] = round(speedup, 3)
    record_result(
        "Figure 10 (cont.) - generation backends vs interpreted engine",
        {
            "model": model,
            "backend": fast_backend,
            "interpreted_kc_per_sec": interpreted.cycles_per_second / 1e3,
            "backend_kc_per_sec": fast.cycles_per_second / 1e3,
            "speedup": speedup,
        },
    )
    assert speedup > 1.0, (
        "%s backend is not faster than interpreted (speedup=%.3f)"
        % (fast_backend, speedup)
    )


@pytest.mark.parametrize("model", ["strongarm", "xscale"])
def test_fig10_plan_cache_hits_on_rebuild(benchmark, model):
    """Repeated builds of one spec reuse the generation-time analysis.

    The benchmark harness rebuilds the same models dozens of times; the
    spec fingerprint keys the static-schedule and compiled-plan caches so
    every rebuild after the first skips the structural analysis.  This test
    measures a rebuild and asserts both caches report a hit.
    """
    from repro.compiled.plan import PLAN_CACHE
    from repro.core.scheduler import SCHEDULE_CACHE

    builder = {"strongarm": build_strongarm_processor, "xscale": build_xscale_processor}[model]
    builder(backend="compiled")  # prime the caches (miss or earlier hit)

    processor = benchmark.pedantic(lambda: builder(backend="compiled"), rounds=1, iterations=1)

    report = processor.generation_report
    assert report.spec_fingerprint is not None
    assert report.schedule_cache == "hit"
    assert report.compilation["plan_cache"] == "hit"
    row = {
        "model": model,
        "schedule_cache": report.schedule_cache,
        "plan_cache": report.compilation["plan_cache"],
        "schedule_cache_hits": SCHEDULE_CACHE.stats()["hits"],
        "plan_cache_hits": PLAN_CACHE.stats()["hits"],
    }
    benchmark.extra_info.update(row)
    record_result("Figure 10 (cont.) - generation cache on spec rebuilds", row)


FIGURE_TABLE = "Figure 10 - simulation performance (simulated kcycles / host second)"
BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_fig10.json"
)


def _geometric_mean(values):
    return math.exp(sum(math.log(value) for value in values) / len(values))


def test_fig10_emit_bench_json(figure_results):
    """Persist the figure as machine-readable ``BENCH_fig10.json``.

    Defined last in the module so it runs after the grid above has filled
    the session registry; a partial invocation (``-k`` selections, single
    test ids) skips instead of publishing a truncated figure.  The file
    carries the raw rows plus two aggregates: geometric-mean throughput
    per backend and geometric-mean speedup over the interpreted engine on
    identical (model, kernel) cells.
    """
    rows = figure_results.get(FIGURE_TABLE, [])
    expected = len(FIG10_PLAN.runs) + len(BASELINES) * len(workload_names())
    if len(rows) != expected:
        pytest.skip("fig10 grid incomplete (%d/%d rows)" % (len(rows), expected))

    by_cell = {(row["simulator"], row["benchmark"]): row for row in rows}
    throughput = defaultdict(list)  # backend -> kcycles/sec across the grid
    speedup = defaultdict(list)  # backend -> ratio vs interpreted, same cell
    for run in FIG10_PLAN.runs:
        row = by_cell[(_figure_label(run), run.workload)]
        backend = run.engine.backend
        throughput[backend].append(row["kcycles_per_sec"])
        if backend != "interpreted":
            reference = by_cell[("rcpn-%s" % run.processor, run.workload)]
            speedup[backend].append(
                row["kcycles_per_sec"] / reference["kcycles_per_sec"]
            )

    payload = {
        "figure": FIGURE_TABLE,
        "scale": BENCH_SCALE,
        "host": {"python": platform.python_version(), "machine": platform.machine()},
        "kcycles_per_sec_geomean": {
            backend: round(_geometric_mean(values), 3)
            for backend, values in sorted(throughput.items())
        },
        "speedup_over_interpreted_geomean": {
            backend: round(_geometric_mean(values), 4)
            for backend, values in sorted(speedup.items())
        },
        "rows": sorted(
            (
                dict(
                    row,
                    kcycles_per_sec=round(row["kcycles_per_sec"], 3),
                    cpi=round(row["cpi"], 4),
                )
                for row in rows
            ),
            key=lambda row: (row["simulator"], row["benchmark"]),
        ),
    }
    with open(BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The figure's headline claims must hold in the published artifact.
    ratios = payload["speedup_over_interpreted_geomean"]
    assert ratios["generated"] > 1.0
    assert ratios["batched"] > 1.0
