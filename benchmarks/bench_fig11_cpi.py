"""Figure 11 — clocks per instruction (CPI) accuracy.

The paper compares the CPI reported by SimpleScalar-ARM and by the
generated StrongARM simulator on the six benchmarks and argues the two
track each other within ~10%.  The StrongARM rows are a declarative
:class:`~repro.campaign.CampaignSpec` grid (strongarm × every kernel,
interpreted engine) executed through the campaign subsystem; each row is
compared against a directly-measured SimpleScalar baseline and the
reproduction-level claim is asserted: both CPIs are plausible for a
single-issue five-stage core and they stay within a factor-of-1.5 band of
each other.
"""

import pytest

from repro.analysis import run_simplescalar
from repro.baseline.simplescalar import SimpleScalarConfig
from repro.campaign import ALL, CampaignSpec, execute_run, plan_campaign
from repro.workloads import get_workload

from conftest import BENCH_SCALE, record_result

FIG11_CAMPAIGN = CampaignSpec(
    name="fig11",
    processors=("strongarm",),
    workloads=(ALL,),
    scales=(BENCH_SCALE,),
    engines=("interpreted",),
    description="Figure 11: StrongARM CPI vs the SimpleScalar-style baseline",
)
FIG11_PLAN = plan_campaign(FIG11_CAMPAIGN)

#: Dual-issue extension of the figure: the same kernels on the 2-wide
#: StrongARM variant, sanity-checked against ``sim-outorder`` configured
#: with ``issue_width=2`` (the knob the RCPN layer now matches).
FIG11_DS_CAMPAIGN = CampaignSpec(
    name="fig11-dual-issue",
    processors=("strongarm-ds",),
    workloads=(ALL,),
    scales=(BENCH_SCALE,),
    engines=("interpreted",),
    description="Figure 11 (cont.): dual-issue StrongARM CPI vs dual-issue SimpleScalar",
)
FIG11_DS_PLAN = plan_campaign(FIG11_DS_CAMPAIGN)


@pytest.mark.parametrize("run", FIG11_PLAN.runs, ids=FIG11_PLAN.run_ids())
def test_fig11_cpi(benchmark, run):
    workload = get_workload(run.workload, scale=run.scale)

    def measure():
        baseline = run_simplescalar(workload)
        rcpn = execute_run(run, campaign=FIG11_CAMPAIGN.name)
        return baseline, rcpn

    baseline, rcpn = benchmark.pedantic(measure, rounds=1, iterations=1)

    benchmark.extra_info["simplescalar_cpi"] = round(baseline.cpi, 3)
    benchmark.extra_info["rcpn_strongarm_cpi"] = round(rcpn.cpi, 3)
    record_result(
        "Figure 11 - clocks per instruction (CPI)",
        {
            "benchmark": run.workload,
            "simplescalar_cpi": baseline.cpi,
            "rcpn_strongarm_cpi": rcpn.cpi,
            "ratio": rcpn.cpi / baseline.cpi,
        },
    )
    assert baseline.instructions == rcpn.instructions
    assert baseline.final_r0 == rcpn.final_r0
    assert 1.0 <= baseline.cpi <= 4.0
    assert 1.0 <= rcpn.cpi <= 4.0
    assert rcpn.cpi == pytest.approx(baseline.cpi, rel=0.5)


@pytest.mark.parametrize("run", FIG11_DS_PLAN.runs, ids=FIG11_DS_PLAN.run_ids())
def test_fig11_dual_issue_cpi(benchmark, run):
    """Dual-issue rows: strongarm-ds vs a 2-wide SimpleScalar configuration."""
    workload = get_workload(run.workload, scale=run.scale)
    dual_config = SimpleScalarConfig(issue_width=2, decode_width=2)

    def measure():
        baseline = run_simplescalar(workload, config=dual_config)
        rcpn = execute_run(run, campaign=FIG11_DS_CAMPAIGN.name)
        single = execute_run(
            FIG11_PLAN.runs[[r.workload for r in FIG11_PLAN.runs].index(run.workload)],
            campaign=FIG11_CAMPAIGN.name,
        )
        return baseline, rcpn, single

    baseline, rcpn, single = benchmark.pedantic(measure, rounds=1, iterations=1)

    benchmark.extra_info["simplescalar_w2_cpi"] = round(baseline.cpi, 3)
    benchmark.extra_info["rcpn_strongarm_ds_cpi"] = round(rcpn.cpi, 3)
    record_result(
        "Figure 11 (cont.) - dual-issue CPI",
        {
            "benchmark": run.workload,
            "simplescalar_w2_cpi": baseline.cpi,
            "rcpn_strongarm_ds_cpi": rcpn.cpi,
            "rcpn_strongarm_cpi": single.cpi,
            "dual_over_single": rcpn.cpi / single.cpi,
        },
    )
    assert baseline.instructions == rcpn.instructions
    assert baseline.final_r0 == rcpn.final_r0
    # A 2-wide in-order core: CPI may drop below 1 but never below the
    # issue-width bound, and must not exceed its single-issue parent.
    assert 0.5 <= rcpn.cpi <= 4.0
    assert rcpn.cpi <= single.cpi
    # The two dual-issue machines model different microarchitectures;
    # they should still land in the same CPI neighbourhood.
    assert rcpn.cpi == pytest.approx(baseline.cpi, rel=0.6)
