"""Figure 11 — clocks per instruction (CPI) accuracy.

The paper compares the CPI reported by SimpleScalar-ARM and by the
generated StrongARM simulator on the six benchmarks and argues the two
track each other within ~10%.  This module regenerates the figure's rows
and asserts the reproduction-level claim: both CPIs are plausible for a
single-issue five-stage core and they stay within a factor-of-1.5 band of
each other.
"""

import pytest

from repro.analysis import run_processor, run_simplescalar
from repro.processors import build_strongarm_processor
from repro.workloads import get_workload, workload_names

from conftest import BENCH_SCALE, record_result


@pytest.mark.parametrize("kernel", workload_names())
def test_fig11_cpi(benchmark, kernel):
    workload = get_workload(kernel, scale=BENCH_SCALE)

    def measure():
        baseline = run_simplescalar(workload)
        rcpn = run_processor(build_strongarm_processor, workload, label="rcpn-strongarm")
        return baseline, rcpn

    baseline, rcpn = benchmark.pedantic(measure, rounds=1, iterations=1)

    benchmark.extra_info["simplescalar_cpi"] = round(baseline.cpi, 3)
    benchmark.extra_info["rcpn_strongarm_cpi"] = round(rcpn.cpi, 3)
    record_result(
        "Figure 11 - clocks per instruction (CPI)",
        {
            "benchmark": kernel,
            "simplescalar_cpi": baseline.cpi,
            "rcpn_strongarm_cpi": rcpn.cpi,
            "ratio": rcpn.cpi / baseline.cpi,
        },
    )
    assert baseline.instructions == rcpn.instructions
    assert baseline.final_r0 == rcpn.final_r0
    assert 1.0 <= baseline.cpi <= 4.0
    assert 1.0 <= rcpn.cpi <= 4.0
    assert rcpn.cpi == pytest.approx(baseline.cpi, rel=0.5)
