"""Figure 12 — cache sensitivity of the generated simulators.

The paper's pitch for data-dependent delays (Section 3.2) is that the
memory hierarchy hands real, address-dependent latencies to the RCPN
transitions.  This benchmark sweeps that mechanism end to end now that the
hierarchy is spec-driven:

* every registered model runs the two kernels whose working sets overflow
  a small L1 (blowfish, compress) on both engine backends, and the cache
  counters — not just the cycle counts — must be bit-identical between
  interpreted and compiled execution;
* the ``strongarm-c512`` → ``strongarm-c2k`` → ``strongarm-c8k`` sweep
  family shows CPI and data-miss rate falling monotonically with L1
  capacity;
* the ``strongarm-l2``/``xscale-l2`` models, sharing the 512 B L1
  geometry with the memory-direct ``strongarm-c512`` point, pay strictly
  fewer miss cycles for the identical miss stream.

The grid is a declarative :class:`~repro.campaign.CampaignSpec`; pointing
the same campaign at a result store makes re-runs free.
"""

import pytest

from repro.campaign import ALL, CampaignSpec, cache_table, execute_run, plan_campaign

from conftest import BENCH_SCALE, record_result

#: The kernels with L1-overflowing, reused working sets at benchmark scale.
CACHE_KERNELS = ("blowfish", "compress")

FIG12_CAMPAIGN = CampaignSpec(
    name="fig12-cache-sensitivity",
    processors=(ALL,),
    workloads=CACHE_KERNELS,
    scales=(BENCH_SCALE,),
    engines=("interpreted", "compiled"),
    description="Figure 12: CPI and miss rates vs cache geometry, both backends",
)
FIG12_PLAN = plan_campaign(FIG12_CAMPAIGN)

#: L1 capacity sweep points, smallest to largest.
SWEEP_FAMILY = ("strongarm-c512", "strongarm-c2k", "strongarm-c8k")

_RESULTS = {}


def fig12_result(run):
    result = _RESULTS.get(run.run_id)
    if result is None:
        result = _RESULTS[run.run_id] = execute_run(run, campaign=FIG12_CAMPAIGN.name)
    return result


@pytest.mark.parametrize("run", FIG12_PLAN.runs, ids=FIG12_PLAN.run_ids())
def test_fig12_cache_statistics_agree_across_backends(benchmark, run):
    result = benchmark.pedantic(lambda: fig12_result(run), rounds=1, iterations=1)

    assert result.finish_reason == "halt"
    assert result.memory["dcache"]["accesses"] > 0
    if run.engine.label == "compiled":
        interpreted = fig12_result(
            next(
                r
                for r in FIG12_PLAN.runs
                if r.run_id == run.run_id.replace("/compiled", "/interpreted")
            )
        )
        assert result.cycles == interpreted.cycles
        assert result.memory == interpreted.memory


def test_fig12_miss_rate_falls_monotonically_with_l1_capacity():
    rows = {}
    for model in SWEEP_FAMILY:
        for kernel in CACHE_KERNELS:
            run = next(
                r
                for r in FIG12_PLAN.runs
                if r.processor == model
                and r.workload == kernel
                and r.engine.label == "interpreted"
            )
            result = fig12_result(run)
            rows[(model, kernel)] = result
            record_result(
                "Figure 12 - cache sensitivity (CPI and miss rate vs L1 size)",
                {
                    "model": model,
                    "benchmark": kernel,
                    "cpi": result.cpi,
                    "dcache_miss_rate": result.memory["dcache"]["miss_rate"],
                    "dcache_miss_cycles": result.memory["dcache"]["miss_cycles"],
                },
            )
    for kernel in CACHE_KERNELS:
        sweep = [rows[(model, kernel)] for model in SWEEP_FAMILY]
        rates = [r.memory["dcache"]["miss_rate"] for r in sweep]
        cpis = [r.cpi for r in sweep]
        assert rates == sorted(rates, reverse=True), kernel
        assert cpis == sorted(cpis, reverse=True), kernel
        # The smallest L1 must actually be under pressure for the sweep to
        # mean anything.
        assert sweep[0].memory["dcache"]["misses"] > sweep[-1].memory["dcache"]["misses"]


def memory_direct_twin(layered, kernel):
    """The layered model's memory-direct counterpart on ``kernel``.

    ``strongarm-l2`` has a registered twin (``strongarm-c512``); XScale's
    is built inline from the same parameterised spec so the comparison
    stays within one pipeline — the miss *stream* must be identical, and
    a different pipeline could legitimately issue a different one.
    """
    if layered == "strongarm-l2":
        run = next(
            r
            for r in FIG12_PLAN.runs
            if r.processor == "strongarm-c512"
            and r.workload == kernel
            and r.engine.label == "interpreted"
        )
        return fig12_result(run)
    from repro.campaign import run_single
    from repro.processors.variants import small_l1_memory
    from repro.processors.xscale import xscale_spec

    key = "xscale-c512/%s" % kernel
    result = _RESULTS.get(key)
    if result is None:
        result = _RESULTS[key] = run_single(
            xscale_spec(name="XScale-C512", memory=small_l1_memory(512, 1)),
            kernel,
            scale=BENCH_SCALE,
        )
    return result


@pytest.mark.parametrize("layered", ["strongarm-l2", "xscale-l2"])
def test_fig12_l2_beats_memory_direct_on_the_same_miss_stream(layered):
    for kernel in CACHE_KERNELS:
        direct = memory_direct_twin(layered, kernel)
        with_l2 = fig12_result(
            next(
                r
                for r in FIG12_PLAN.runs
                if r.processor == layered
                and r.workload == kernel
                and r.engine.label == "interpreted"
            )
        )
        record_result(
            "Figure 12 (cont.) - L2 vs memory-direct miss cost",
            {
                "model": layered,
                "benchmark": kernel,
                "direct_miss_cycles": direct.memory["dcache"]["miss_cycles"],
                "l2_miss_cycles": with_l2.memory["dcache"]["miss_cycles"],
                "l2_hit_rate": with_l2.memory["l2"]["hit_rate"],
            },
        )
        assert with_l2.memory["dcache"]["misses"] == direct.memory["dcache"]["misses"]
        assert with_l2.memory["dcache"]["miss_cycles"] < direct.memory["dcache"]["miss_cycles"]


def test_fig12_cache_table_covers_the_grid():
    # The aggregation view the CLI renders: one row per executed grid point.
    results = [fig12_result(run) for run in FIG12_PLAN.runs]
    rows = cache_table(results)
    assert len(rows) == len(FIG12_PLAN.runs)
    by_model = {row["processor"] for row in rows}
    assert set(SWEEP_FAMILY) <= by_model and {"strongarm-l2", "xscale-l2"} <= by_model
