"""Section 5 — modeling-effort inventory.

The paper reports that the ARM instruction set was captured with six
operation classes and that the StrongARM model consists of six sub-nets
(plus the instruction-independent one).  This benchmark regenerates that
inventory for each model: operation classes, sub-nets, places, transitions
and the size of the generated dispatch tables — the quantities that stand in
for the paper's "one man-day / three man-days" modeling-effort narrative.
"""

import pytest

from repro.campaign import ALL, CampaignSpec, campaign_processors
from repro.processors import build_processor

from conftest import record_result

#: The model axis of the inventory, declared the campaign way: every
#: registered model, including the spec-defined variants.
MODELS = campaign_processors(
    CampaignSpec(name="sec5", processors=(ALL,), workloads=())
)


@pytest.mark.parametrize("model", list(MODELS))
def test_sec5_model_inventory(benchmark, model):
    processor = benchmark.pedantic(lambda: build_processor(model), rounds=1, iterations=1)

    size = processor.complexity()
    report = processor.generation_report
    row = {
        "model": model,
        "operation_classes": size["operation_classes"],
        "instruction_subnets": sum(
            1 for s in processor.net.subnets.values() if not s.is_instruction_independent
        ),
        "stages": size["stages"],
        "places": size["places"],
        "transitions": size["transitions"],
        "dispatch_entries": report.dispatch_entries,
        "two_list_places": len(report.two_list_places),
    }
    benchmark.extra_info.update(row)
    record_result("Section 5 - model inventory (modeling effort)", row)

    if model in ("strongarm", "xscale"):
        assert row["operation_classes"] == 6      # paper: six operation classes
        assert row["instruction_subnets"] == 6    # paper: six sub-nets for StrongARM
    assert row["places"] == len(report.place_order)
