"""Sharded result-store scaling — append/load throughput and fault cost.

The campaign store is on every run's critical path (one locked, fsync'd
append per finished run; one full load per ``status``/``report``/warm
re-run), so its costs deserve the same regression gate as the engines:

* **Append throughput (measured).**  Locked+fsync'd appends into the
  sharded layout, per shard count.  More shards should never make
  appends meaningfully slower (the lock is per shard, the fsync cost is
  per line either way).
* **Load throughput (measured).**  Warm full loads of the same store.
* **Fault cost (deterministic).**  A store salted with torn lines loads
  the same intact results as a clean one — quarantine is a skip, not a
  scan restart — and compaction brings it back to byte-clean health.
"""

import hashlib
import time

from repro.campaign.store import ResultStore, RunResult, shard_index

from conftest import record_result

RESULTS = 512
ROUNDS = 3
SHARD_COUNTS = (1, 4, 16)


def _result(index):
    fingerprint = hashlib.sha256(b"bench-store-%d" % index).hexdigest()
    return RunResult(
        fingerprint=fingerprint,
        campaign="bench",
        run_id="run-%d" % index,
        processor="strongarm",
        workload="crc",
        scale=1,
        engine="interpreted",
        backend="interpreted",
        repeat=0,
        cycles=1000 + index,
        instructions=500 + index,
        final_r0=0,
        finish_reason="halt",
        wall_seconds=0.01,
    )


def _populate(path, shard_count):
    store = ResultStore(path, shard_count=shard_count)
    start = time.perf_counter()
    for index in range(RESULTS):
        store.append(_result(index))
    return store, time.perf_counter() - start


def test_append_and_load_scaling(tmp_path):
    for shard_count in SHARD_COUNTS:
        store, append_wall = _populate(tmp_path / ("s%d" % shard_count), shard_count)
        assert len(store) == RESULTS

        load_best = 0.0
        for _ in range(ROUNDS):
            cold = ResultStore(store.path)
            start = time.perf_counter()
            loaded = cold.results()
            wall = time.perf_counter() - start
            assert len(loaded) == RESULTS
            assert cold.shard_count == shard_count  # meta file round-trips
            if wall > 0:
                load_best = max(load_best, RESULTS / wall)

        record_result(
            "Store scaling - locked fsync append / warm load (%d results)" % RESULTS,
            {
                "shards": shard_count,
                "append_per_sec": round(RESULTS / append_wall if append_wall else 0.0, 1),
                "load_per_sec": round(load_best, 1),
                "lock_wait_ms": round(store.counters["lock_wait_seconds"] * 1e3, 3),
            },
        )


def test_quarantine_costs_only_the_torn_lines(tmp_path):
    store, _ = _populate(tmp_path / "faulty", 8)
    # Tear the final line of every shard: the classic killed-writer shape.
    torn = 0
    for shard in sorted((tmp_path / "faulty" / "shards").glob("*.jsonl")):
        text = shard.read_text()
        shard.write_text(text[:-24] + "\n")
        torn += 1
    assert torn == 8

    start = time.perf_counter()
    damaged = ResultStore(store.path)
    survivors = damaged.results()
    wall = time.perf_counter() - start
    assert len(survivors) == RESULTS - torn
    assert len(damaged.quarantined()) == torn
    # Quarantine respects shard addressing: every survivor is still in
    # the shard its fingerprint maps to.
    for result in survivors[:32]:
        expected = shard_index(result.fingerprint, damaged.shard_count)
        assert damaged.shard_path(result.fingerprint).endswith(
            "%03d.jsonl" % expected
        )

    report = damaged.compact()
    clean = ResultStore(store.path)
    assert report.quarantined_dropped == torn
    assert len(clean.quarantined()) == 0
    assert len(clean) == RESULTS - torn

    record_result(
        "Store scaling - torn-line quarantine (%d results, %d torn)" % (RESULTS, torn),
        {
            "survivors": len(survivors),
            "quarantined": torn,
            "load_per_sec": round(len(survivors) / wall if wall else 0.0, 1),
        },
    )
