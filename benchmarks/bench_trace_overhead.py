"""Tracing overhead gate — observability must be free when off.

Two claims, one deterministic and one measured:

* **Byte identity (deterministic).**  With tracing off — no config, a
  disabled config, or only non-emission categories — the generated
  backend's cache key and emitted module source are exactly what a
  trace-unaware build produces.  This is the strongest possible
  "zero overhead when off" statement for the generated/batched backends:
  the executed source cannot differ because it is the same text.
* **Throughput (measured).**  A generated engine built with a *disabled*
  ``TraceConfig`` runs within noise of one built with no config at all,
  and the generated-over-interpreted speedup stays within the ballpark
  the committed ``BENCH_fig10.json`` baseline records for this figure
  (the CI trace-smoke step runs this as a regression gate).
"""

import json
import os
import time

from repro.codegen import codegen_key
from repro.codegen.emit import emit_module_source
from repro.core.engine import EngineOptions, SimulationEngine
from repro.describe.elaborate import elaborate_net
from repro.observe.trace import TraceConfig
from repro.processors import build_processor, get_spec
from repro.workloads import get_workload

from conftest import BENCH_SCALE, record_result

MODEL = "strongarm"
KERNEL = "crc"
ROUNDS = 3

#: Tracing-off variants that must be indistinguishable from no config.
OFF_TRACES = (None, TraceConfig(enabled=False), TraceConfig(categories=("cache",)))

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_fig10.json")


def _run_once(trace):
    processor = build_processor(
        MODEL, engine_options=EngineOptions(backend="generated", trace=trace)
    )
    workload = get_workload(KERNEL, scale=BENCH_SCALE)
    processor.load_program(workload.program)
    start = time.perf_counter()
    stats = processor.run(max_cycles=2_000_000)
    wall = time.perf_counter() - start
    return stats, wall


def _best_kcycles(trace):
    best = 0.0
    cycles = None
    for _ in range(ROUNDS):
        stats, wall = _run_once(trace)
        if cycles is None:
            cycles = stats.cycles
        assert stats.cycles == cycles, "non-deterministic simulation"
        if wall > 0:
            best = max(best, stats.cycles / wall / 1e3)
    return best


def test_tracing_off_emission_is_byte_identical():
    net, _decoder, _core, _memory, _semantics = elaborate_net(get_spec(MODEL))
    schedule = SimulationEngine(net).schedule
    fingerprint = "bench-overhead"
    keys = set()
    sources = set()
    for trace in OFF_TRACES:
        options = EngineOptions(backend="generated", trace=trace)
        keys.add(codegen_key(fingerprint, options))
        sources.add(emit_module_source(net, schedule, options)[0])
    assert len(keys) == 1, "tracing-off TraceConfig changed the codegen cache key"
    assert len(sources) == 1, "tracing-off TraceConfig changed the emitted source"
    assert "TRF(" not in next(iter(sources))


def test_disabled_trace_runs_within_noise_of_no_trace():
    plain = _best_kcycles(None)
    disabled = _best_kcycles(TraceConfig(enabled=False))
    ratio = disabled / plain if plain else 0.0
    record_result(
        "Tracing overhead - disabled-trace vs no-trace (generated backend)",
        {
            "model": MODEL,
            "kernel": KERNEL,
            "no_trace_kc_per_sec": round(plain, 3),
            "disabled_trace_kc_per_sec": round(disabled, 3),
            "ratio": round(ratio, 3),
        },
    )
    # Same emitted module, same engine path: anything below this is a real
    # regression, not timer noise.
    assert ratio > 0.7, (
        "disabled tracing costs measurable throughput (ratio=%.3f)" % ratio
    )


def test_generated_speedup_stays_near_committed_baseline():
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        baseline = json.load(handle)
    geomeans = baseline["kcycles_per_sec_geomean"]
    baseline_ratio = geomeans["generated"] / geomeans["interpreted"]

    generated = _best_kcycles(None)
    interpreted_best = 0.0
    for _ in range(ROUNDS):
        processor = build_processor(
            MODEL, engine_options=EngineOptions(backend="interpreted")
        )
        workload = get_workload(KERNEL, scale=BENCH_SCALE)
        processor.load_program(workload.program)
        start = time.perf_counter()
        stats = processor.run(max_cycles=2_000_000)
        wall = time.perf_counter() - start
        if wall > 0:
            interpreted_best = max(interpreted_best, stats.cycles / wall / 1e3)

    measured_ratio = generated / interpreted_best if interpreted_best else 0.0
    record_result(
        "Tracing overhead - generated/interpreted speedup vs committed baseline",
        {
            "model": MODEL,
            "kernel": KERNEL,
            "measured_speedup": round(measured_ratio, 3),
            "baseline_speedup": round(baseline_ratio, 3),
        },
    )
    # Generous bound: hosts differ, but if tracing support halved the
    # generated backend's advantage something structural broke.
    assert measured_ratio >= 0.5 * baseline_ratio, (
        "generated/interpreted speedup %.3f fell below half the committed "
        "baseline %.3f" % (measured_ratio, baseline_ratio)
    )
