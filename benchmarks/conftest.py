"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's figures.  Results are
accumulated in a module-level registry and printed as a table at the end of
the session so the harness output reads like the paper's evaluation section.
"""

from collections import defaultdict

import pytest

#: Scale factor for the benchmark kernels (1 keeps the harness fast; raise it
#: for more stable throughput measurements).
BENCH_SCALE = 1

_RESULTS = defaultdict(list)


def record_result(figure, row):
    """Register one row of a figure's table for the end-of-session report."""
    _RESULTS[figure].append(row)


@pytest.fixture(scope="session")
def figure_results():
    return _RESULTS


def pytest_terminal_summary(terminalreporter):
    from repro.analysis import format_table

    for figure in sorted(_RESULTS):
        terminalreporter.write_line("")
        terminalreporter.write_line("=" * 78)
        terminalreporter.write_line(figure)
        terminalreporter.write_line("=" * 78)
        for line in format_table(_RESULTS[figure]).splitlines():
            terminalreporter.write_line(line)
