"""Run a declarative, parallel, resumable experiment campaign.

Declares a campaign over every registered processor model, three kernels
and both engine backends, executes it on a multiprocessing worker pool
with a persistent result store, then re-runs it to show the incremental
behaviour (the second pass simulates nothing — every run is served from
the store by content fingerprint) and renders the aggregation tables.

Run with:  python examples/campaign_sweep.py [store_dir] [max_workers]

Run it twice: the second invocation finishes in milliseconds.  The same
store also drives the CLI, e.g.::

    python -m repro.campaign report --store campaign-store
"""

import sys

from repro.campaign import (
    ALL,
    CampaignSpec,
    render,
    run_campaign,
    speedup_table,
    summarize,
)

SWEEP = CampaignSpec(
    name="sweep",
    processors=(ALL,),
    workloads=("blowfish", "compress", "crc"),
    scales=(1,),
    engines=("interpreted", "compiled"),
    description="Every registered model on three kernels, both backends",
)


def main():
    store = sys.argv[1] if len(sys.argv) > 1 else "campaign-store"
    max_workers = int(sys.argv[2]) if len(sys.argv) > 2 else None

    report = run_campaign(SWEEP, store=store, max_workers=max_workers)
    summary = report.summary()
    print(
        "campaign %(campaign)r: %(planned)d runs, %(executed)d executed, "
        "%(cached)d served from the store in %(wall_seconds).2fs" % summary
    )
    if report.skipped:
        print("skipped pairs:", ", ".join("%s/%s" % pair[:2] for pair in report.skipped))
    print()
    print(render(summarize(report)))
    print()
    print("compiled-over-interpreted speedup (paper Figure 10 claim):")
    print(render(speedup_table(report)))
    if report.executed:
        print()
        print("re-run this script: the store now holds every fingerprint,")
        print("so the whole campaign will be served without simulating.")


if __name__ == "__main__":
    main()
