"""Convert an RCPN processor model to a Colored Petri Net and analyse it.

Demonstrates the paper's claim that RCPN models can be converted to standard
CPN so existing analysis techniques apply: the Figure 4/5 example processor
is converted, its structural blow-up is reported (the Figure 2 comparison),
and the reachability graph of the paper's Figure 2 pipeline is used to check
boundedness and deadlock freedom.

Run with:  python examples/cpn_analysis.py
"""

from repro.analysis import format_table, model_complexity_table
from repro.cpn import CPN, InputPattern, OutputProduction, ReachabilityGraph, rcpn_to_cpn
from repro.processors import build_example_processor, build_strongarm_processor


def figure2_pipeline_cpn():
    """The paper's Figure 2(b): two latches, four units, complement places."""
    net = CPN("Figure2")
    net.add_place("L1_free", initial=[InputPattern.BLACK])
    net.add_place("L1_full")
    net.add_place("L2_free", initial=[InputPattern.BLACK])
    net.add_place("L2_full")
    net.add_place("done")
    net.add_transition(
        "U1",
        inputs=[InputPattern("L1_free")],
        outputs=[OutputProduction("L1_full")],
    )
    net.add_transition(
        "U2",
        inputs=[InputPattern("L1_full"), InputPattern("L2_free")],
        outputs=[OutputProduction("L1_free"), OutputProduction("L2_full")],
    )
    net.add_transition(
        "U3",
        inputs=[InputPattern("L2_full")],
        outputs=[OutputProduction("L2_free"), OutputProduction("done")],
    )
    net.add_transition(
        "U4",
        inputs=[InputPattern("L1_full")],
        outputs=[OutputProduction("L1_free"), OutputProduction("done")],
    )
    return net


def main():
    example = build_example_processor()
    strongarm = build_strongarm_processor()
    print("Structural comparison (RCPN vs converted CPN):")
    print(format_table(model_complexity_table({"Figure5Example": example, "StrongARM": strongarm})))
    print()

    cpn = rcpn_to_cpn(example.net)
    print("Converted example model:", cpn)
    print()

    figure2 = figure2_pipeline_cpn()
    graph = ReachabilityGraph(figure2, max_markings=200)
    print("Figure 2 pipeline CPN reachability analysis:")
    print("  reachable markings:", graph.marking_count())
    print("  place bounds:", graph.place_bounds())
    print("  dead transitions:", graph.dead_transitions() or "none")


if __name__ == "__main__":
    main()
