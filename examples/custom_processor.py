"""Define a brand-new pipeline as a ~40-line declarative spec.

The point of the paper is *generic* processor modeling: a designer writes a
compact pipeline description and the framework elaborates it into an RCPN
and generates the cycle-accurate simulator.  This example does exactly
that: a four-stage dual-issue-width-1 "EDU4" pipeline that exists nowhere
else in the repository, described purely as data — stages, per-class paths,
hazard configuration — with all transition behaviour coming from the shared
hook catalogue in ``repro.describe.semantics``.  No guards, no actions, no
net wiring.

Run with:  PYTHONPATH=src python examples/custom_processor.py
"""

from repro.describe import (
    FetchSpec, HazardSpec, PipelineSpec, PredictorSpec, StageSpec,
    elaborate, linear_path,
)
from repro.workloads import get_workload

STAGES = ("IF", "ID", "EX", "WB")


def edu4_spec():
    """A four-stage educational pipeline, every path in one line each."""
    # Hooks attach to the transition *entering* the named stage.
    return PipelineSpec(
        name="EDU4",
        stages=tuple(StageSpec(s) for s in STAGES),
        paths=(
            linear_path("alu", STAGES, hooks={"EX": "alu.issue", "WB": "alu.execute", "end": "alu.writeback"}),
            linear_path("mul", STAGES, hooks={"EX": ("mul.issue", "mul.execute"), "WB": "mul.buffer", "end": "mul.writeback"}),
            linear_path("mem", STAGES, hooks={"EX": ("mem.issue", "mem.agen"), "WB": "mem.access", "end": "mem.writeback"}),
            linear_path("memm", STAGES, hooks={"EX": ("memm.issue", "memm.agen"), "WB": "memm.access", "end": "memm.writeback"}),
            linear_path("branch", ("IF", "ID", "EX"), hooks={"EX": "branch.resolve", "end": "branch.link_writeback"}),
            linear_path("system", ("IF", "ID", "EX"), hooks={"EX": "system.issue", "end": "system.retire"}),
        ),
        # Every class issues/resolves entering EX.  Keeping one issue depth
        # matters: a class issuing earlier than its elders could read
        # registers/flags before a stalled older writer has reserved them.
        hazards=HazardSpec(
            forward_states=("EX", "WB"),       # bypass network sources
            front_flush_stages=("IF", "ID"),   # squashed on mispredict/halt
            redirect_flush_stages=("IF", "ID", "EX"),  # squashed on PC writes
        ),
        fetch=FetchSpec(style="btb", capacity_stage="IF"),
        predictor=PredictorSpec(kind="btb", btb_entries=64),
        description="four-stage BTB-predicted pipeline defined entirely as a spec",
    )


def main():
    processor = elaborate(edu4_spec(), backend="compiled")
    print("model:", processor.net)
    print("generated:", processor.generation_report.summary())

    workload = get_workload("crc", scale=1)
    processor.load_program(workload.program)
    stats = processor.run()
    print("cycles:", stats.cycles, " instructions:", stats.instructions,
          " CPI: %.3f" % stats.cpi)
    print("r0 checksum:", processor.register(0))
    assert stats.finish_reason == "halt"


if __name__ == "__main__":
    main()
