"""Model a brand-new (non-ARM) accumulator machine with the RCPN core API.

The point of the paper is *generic* processor modeling: the same formalism
describes any pipelined machine.  This example builds, from scratch, a tiny
three-stage accumulator processor with its own two operation classes and a
data-dependent multiply latency, generates its simulator and runs a small
hand-assembled program — without touching the ARM substrate at all.

Run with:  python examples/custom_processor.py
"""

from repro.core import (
    Const,
    EngineOptions,
    InstructionToken,
    RCPN,
    RegRef,
    generate_simulator,
)

# A tiny accumulator ISA: (opcode, operand) pairs.
#   ("li", n)    load immediate into the accumulator
#   ("add", r)   acc += reg[r]
#   ("mul", r)   acc *= reg[r]          (takes extra cycles for big values)
#   ("st", r)    reg[r] = acc
#   ("halt", 0)
PROGRAM = [
    ("li", 3),
    ("st", 1),
    ("li", 5),
    ("add", 1),      # acc = 8
    ("st", 2),
    ("mul", 2),      # acc = 64
    ("st", 3),
    ("halt", 0),
]


def build_accumulator_machine(program):
    net = RCPN("Accumulator3Stage")
    regfile = net.add_register_file("regs", 8)
    acc_file = net.add_register_file("acc", 1)
    registers = regfile.registers()
    acc = acc_file.register(0, name="acc")

    net.add_stage("DECODE", capacity=1, delay=1)
    net.add_stage("EXEC", capacity=1, delay=1)

    # One operation class for ALU-style ops, one for stores.
    from repro.core import OperationClass, SymbolKind

    net.add_operation_class(OperationClass("compute", symbols={"src": SymbolKind.REGISTER}))
    net.add_operation_class(OperationClass("store", symbols={"dst": SymbolKind.REGISTER}))

    state = {"pc": 0, "halted": False}

    fetch_net = net.add_subnet("fetch")
    compute_net = net.add_subnet("compute", opclasses=("compute",))
    store_net = net.add_subnet("store", opclasses=("store",))

    c_decode = net.add_place("DECODE", compute_net, entry=True)
    c_exec = net.add_place("EXEC", compute_net)
    c_end = net.add_place("end", compute_net)
    s_decode = net.add_place("DECODE", store_net, entry=True)
    s_exec = net.add_place("EXEC", store_net)
    s_end = net.add_place("end", store_net)

    def fetch_guard(_t, _ctx):
        return not state["halted"] and state["pc"] < len(program)

    def fetch_action(_t, ctx):
        opcode, operand = program[state["pc"]]
        state["pc"] += 1
        if opcode == "halt":
            state["halted"] = True
            return
        if opcode == "st":
            token = InstructionToken(
                instr=(opcode, operand), opclass="store",
                operands={"dst": RegRef(registers[operand]), "acc": RegRef(acc), "op": opcode},
            )
        else:
            source = Const(operand) if opcode == "li" else RegRef(registers[operand])
            token = InstructionToken(
                instr=(opcode, operand), opclass="compute",
                operands={"src": source, "acc": RegRef(acc), "op": opcode},
            )
        for operand_ref in token.register_operands():
            operand_ref.token = token
        ctx.emit(token)

    net.add_transition("fetch", fetch_net, guard=fetch_guard, action=fetch_action,
                       capacity_stages=["DECODE"])

    def compute_guard(t, _ctx):
        return t.src.can_read() and t.acc.can_write()

    def compute_action(t, _ctx):
        t.src.read()
        t.acc.read()
        t.acc.reserve_write()

    def compute_execute(t, _ctx):
        value = t.src.value
        if t.op == "li":
            result = value
        elif t.op == "add":
            result = t.acc.value + value
        else:  # mul, with a data-dependent latency
            result = t.acc.value * value
            t.delay = 1 + max(1, value.bit_length() // 4)
        t.acc.value = result

    def compute_writeback(t, _ctx):
        t.acc.writeback()

    net.add_transition("issue", compute_net, source=c_decode, target=c_exec,
                       guard=compute_guard, action=compute_action)
    net.add_transition("execute", compute_net, source=c_exec, target=c_end,
                       action=lambda t, ctx: (compute_execute(t, ctx), compute_writeback(t, ctx)))

    def store_guard(t, _ctx):
        return t.acc.can_read() and t.dst.can_write()

    def store_action(t, _ctx):
        t.acc.read()
        t.dst.reserve_write()

    def store_execute(t, _ctx):
        t.dst.value = t.acc.value
        t.dst.writeback()

    net.add_transition("st.issue", store_net, source=s_decode, target=s_exec,
                       guard=store_guard, action=store_action)
    net.add_transition("st.exec", store_net, source=s_exec, target=s_end,
                       action=store_execute)

    return net, regfile, state


def main():
    net, regfile, state = build_accumulator_machine(PROGRAM)
    engine, report = generate_simulator(net, EngineOptions(max_cycles=200))
    print("generated:", report.summary())

    while not (state["halted"] and engine.pipeline_empty()) and engine.cycle < 200:
        engine.step()

    print("cycles:", engine.cycle)
    print("instructions retired:", engine.stats.instructions)
    print("registers:", regfile.data)
    assert regfile.data[3] == 64, "acc pipeline produced the wrong result"
    print("r3 == 64 as expected")


if __name__ == "__main__":
    main()
