"""Quickstart: model, generate and run a cycle-accurate simulator.

Builds the paper's Figure 4/5 example processor, assembles a small program,
runs the generated simulator and prints the statistics a cycle-accurate
simulator is used for (cycles, CPI, per-class retirement counts).

Run with:  python examples/quickstart.py
"""

from repro.isa import assemble
from repro.processors import build_example_processor

PROGRAM = """
; sum the numbers 1..10, then store the result
main:
    mov r0, #0          ; accumulator
    mov r1, #10         ; loop counter
    mov r2, #0x8000     ; output buffer
loop:
    add r0, r0, r1
    subs r1, r1, #1
    bgt loop
    str r0, [r2, #0]
    ldr r3, [r2, #0]
    swi #1
    halt
"""


def main():
    program = assemble(PROGRAM)
    processor = build_example_processor()

    print("model:", processor.net.name)
    print("structure:", processor.complexity())
    print("generated simulator:", processor.generation_report.summary())
    print()

    processor.load_program(program)
    stats = processor.run()

    print("finished:", stats.finish_reason)
    print("cycles:", stats.cycles)
    print("instructions:", stats.instructions)
    print("CPI: %.2f" % stats.cpi)
    print("retired by class:", dict(stats.retired_by_class))
    print("r0 (sum of 1..10):", processor.register(0))
    print("r3 (loaded back):", processor.register(3))
    print("data cache:", processor.cache_statistics()["dcache"])

    # The same model can run on the compiled (generated) engine: the model
    # is partially evaluated into flat closures once, and the statistics
    # are bit-identical to the interpreted run above.
    compiled = build_example_processor(backend="compiled")
    compiled.load_program(program)
    compiled_stats = compiled.run()
    print()
    print("compiled backend:", compiled.backend)
    print("compilation:", compiled.generation_report.compilation)
    print("cycles match interpreted run:", compiled_stats.cycles == stats.cycles)


if __name__ == "__main__":
    main()
