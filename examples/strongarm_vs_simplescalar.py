"""Reproduce the paper's headline comparison on one benchmark.

Runs the crc kernel on the functional reference, the SimpleScalar-style
fixed baseline, and the generated StrongARM and XScale RCPN simulators, then
prints the Figure 10/11 quantities: simulation throughput (simulated cycles
per host second) and CPI.

Run with:  python examples/strongarm_vs_simplescalar.py [kernel] [scale]
"""

import sys

from repro.analysis import format_table, run_functional, run_processor, run_simplescalar
from repro.processors import build_strongarm_processor, build_xscale_processor
from repro.workloads import get_workload


def main():
    kernel = sys.argv[1] if len(sys.argv) > 1 else "crc"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    workload = get_workload(kernel, scale=scale)

    functional = run_functional(workload)
    baseline = run_simplescalar(workload)
    strongarm = run_processor(build_strongarm_processor, workload, label="rcpn-strongarm")
    xscale = run_processor(build_xscale_processor, workload, label="rcpn-xscale")

    rows = []
    for result in (baseline, xscale, strongarm):
        rows.append(
            {
                "simulator": result.simulator,
                "cycles": result.cycles,
                "cpi": result.cpi,
                "kcycles_per_sec": result.cycles_per_second / 1e3,
                "r0_matches_functional": result.final_r0 == functional.final_r0,
            }
        )
    print("workload: %s (scale %d, %d instructions)" % (kernel, scale, functional.instructions))
    print(format_table(rows))


if __name__ == "__main__":
    main()
