"""Developer smoke check: run every kernel on the StrongARM RCPN model and
compare the architectural result and instruction count against the
functional simulator and the fixed baseline."""

from repro.baseline import FunctionalSimulator, SimpleScalarLikeSimulator
from repro.processors.strongarm import build_strongarm_processor
from repro.workloads import all_workloads


def main():
    for workload in all_workloads(scale=1):
        functional = FunctionalSimulator()
        functional.load_program(workload.program)
        fstats = functional.run()

        baseline = SimpleScalarLikeSimulator()
        baseline.load_program(workload.program)
        bstats = baseline.run()

        rcpn = build_strongarm_processor()
        rcpn.load_program(workload.program)
        rstats = rcpn.run()

        print(
            "%-10s func: n=%-7d r0=%08x | base: n=%-7d cyc=%-8d cpi=%.2f r0=%08x | "
            "rcpn: n=%-7d cyc=%-8d cpi=%.2f r0=%08x %s"
            % (
                workload.name,
                fstats.instructions,
                functional.register(0),
                bstats.instructions,
                bstats.cycles,
                bstats.cpi,
                baseline.register(0),
                rstats.instructions,
                rstats.cycles,
                rstats.cpi,
                rcpn.register(0),
                rstats.finish_reason,
            )
        )


if __name__ == "__main__":
    main()
