"""Packaging configuration.

The package is pure Python with no runtime dependencies; ``pip install -e .``
installs the ``repro`` package from ``src/``.  On machines without the
``wheel`` package or network access, use the legacy path instead:
``python setup.py develop --user``.  Test/benchmark extras
(``pytest``, ``pytest-benchmark``, ``hypothesis``) are declared under the
``test`` extra but the suites can equally be run straight from a checkout
with ``PYTHONPATH=src`` (see README.md).
"""

import os
import re

from setuptools import find_packages, setup

HERE = os.path.dirname(os.path.abspath(__file__))


def _long_description():
    readme = os.path.join(HERE, "README.md")
    try:
        with open(readme, encoding="utf-8") as handle:
            return handle.read()
    except OSError:
        return ""


def _version():
    """The single source of the version: ``repro.__version__``."""
    init = os.path.join(HERE, "src", "repro", "__init__.py")
    with open(init, encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"$', handle.read(), re.MULTILINE)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=_version(),
    description=(
        "Reproduction of 'Generic Pipelined Processor Modeling and High "
        "Performance Cycle-Accurate Simulator Generation' (Reshadi & Dutt, "
        "DATE 2005): RCPN processor models and generated cycle-accurate "
        "simulators"
    ),
    long_description=_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: System :: Emulators",
        "Topic :: Scientific/Engineering",
    ],
    keywords="petri-net processor-modeling cycle-accurate-simulation simulator-generation",
)
