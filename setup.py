"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that legacy editable installs (``pip install -e . --no-use-pep517``
or ``python setup.py develop``) work on machines without the ``wheel``
package or network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
