"""repro: Reduced Colored Petri Net processor modeling and cycle-accurate
simulator generation.

Reproduction of "Generic Pipelined Processor Modeling and High Performance
Cycle-Accurate Simulator Generation" (Reshadi & Dutt, DATE 2005).

Sub-packages
------------

``repro.core``
    The RCPN formalism (places, transitions, tokens, operation classes, the
    register hazard model), the static schedule derivation and the
    interpreted reference engine.  :func:`repro.core.generate_simulator`
    is the entry point that turns a validated model into a runnable
    simulator for either backend.
``repro.compiled``
    The paper's simulator *generation* fast path: partial evaluation of a
    model + schedule into flat per-place step closures (inlined dispatch,
    specialized guard/capacity checks, active-place worklist, reservation
    token pooling), selected with ``EngineOptions(backend="compiled")``.
    Bit-identical statistics to the interpreted engine, higher throughput.
``repro.codegen``
    Source-level simulator generation, selected with
    ``EngineOptions(backend="generated")``: the model is emitted as real
    Python source — one straight-line per-cycle ``step()`` with dispatch
    tables, capacity literals and issue gating baked into the text —
    ``exec``'d into a module and disk-cached under the spec fingerprint.
    Same bit-identical statistics contract, highest throughput.
``repro.describe``
    The declarative pipeline-description layer: ``PipelineSpec`` and
    friends (pure data, validated, content-hashed), the shared ARM
    transition semantics and the elaborator that turns a spec into an
    RCPN.  Every shipped processor model is a spec; the spec fingerprint
    keys the simulator-generation caches so rebuilding a model reuses the
    static analysis.
``repro.cpn``
    A Colored Petri Net substrate with analysis tools and the RCPN -> CPN
    conversion.
``repro.isa``
    The ARM7-inspired instruction set: encoding, assembler, disassembler and
    functional semantics.
``repro.memory``
    Main memory, chainable write-back caches (L1 -> optional shared L2 ->
    memory) and branch predictors; hierarchies are declared per model with
    ``repro.describe.MemorySpec``.
``repro.processors``
    The registered pipeline models (``processor_names()`` /
    ``build_processor()``): the paper's example processor, StrongARM,
    XScale, and the spec-defined ``arm7-mini``, ``xscale-deep``,
    dual-issue (``strongarm-ds``/``xscale-ds``) and memory-hierarchy
    (``strongarm-l2``/``xscale-l2``, ``strongarm-c*`` sweep) variants.
``repro.baseline``
    The fixed-architecture (SimpleScalar-style) cycle-accurate baseline and
    a functional instruction-set simulator.
``repro.workloads``
    Benchmark kernels standing in for the MiBench/MediaBench/SPEC95
    programs used in the paper.
``repro.analysis``
    Metrics, model-complexity counters and report helpers for the
    experiments.
``repro.campaign``
    Declarative experiment campaigns: ``CampaignSpec`` grids expanded into
    content-fingerprinted runs, executed on a ``multiprocessing`` worker
    pool, persisted in a JSON-lines ``ResultStore`` keyed by fingerprint
    (re-runs skip everything already stored), aggregated into the paper's
    tables, and driven from the ``python -m repro.campaign`` CLI.
"""

__version__ = "1.10.0"

__all__ = [
    "core",
    "compiled",
    "codegen",
    "describe",
    "cpn",
    "isa",
    "memory",
    "processors",
    "baseline",
    "workloads",
    "analysis",
    "campaign",
]
