"""Metrics, model-complexity counters and report helpers for the experiments."""

from repro.analysis.metrics import (
    BenchmarkResult,
    average,
    geometric_mean,
    run_functional,
    run_processor,
    run_simplescalar,
    speedup,
)
from repro.analysis.model_complexity import model_complexity_table
from repro.analysis.report import format_table

__all__ = [
    "BenchmarkResult",
    "run_functional",
    "run_processor",
    "run_simplescalar",
    "speedup",
    "average",
    "geometric_mean",
    "model_complexity_table",
    "format_table",
]
