"""Measurement helpers shared by the benchmark harness and the tests.

Each ``run_*`` function loads one workload into one simulator, runs it to
completion and returns a :class:`BenchmarkResult` with the two quantities
the paper's figures report: simulation throughput in simulated cycles per
host second (Figure 10) and CPI (Figure 11).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baseline.functional import FunctionalSimulator
from repro.baseline.inorder import InOrderPipelineSimulator
from repro.baseline.simplescalar import SimpleScalarLikeSimulator


@dataclass
class BenchmarkResult:
    """One (simulator, workload) measurement."""

    simulator: str
    workload: str
    cycles: int
    instructions: int
    wall_seconds: float
    final_r0: int
    finish_reason: str = ""

    @property
    def cpi(self):
        if self.instructions == 0:
            return float("inf")
        return self.cycles / self.instructions

    @property
    def cycles_per_second(self):
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def mcycles_per_second(self):
        return self.cycles_per_second / 1e6


def _timed_run(simulator, workload, label, max_cycles=None):
    simulator.load_program(workload.program)
    start = time.perf_counter()
    stats = simulator.run(max_cycles=max_cycles) if max_cycles else simulator.run()
    wall = time.perf_counter() - start
    return BenchmarkResult(
        simulator=label,
        workload=workload.name,
        cycles=stats.cycles,
        instructions=stats.instructions,
        wall_seconds=wall,
        final_r0=simulator.register(0),
        finish_reason=getattr(stats, "finish_reason", ""),
    )


def run_functional(workload, max_instructions=50_000_000):
    """Run a workload on the functional instruction-set simulator."""
    simulator = FunctionalSimulator()
    simulator.load_program(workload.program)
    start = time.perf_counter()
    stats = simulator.run(max_instructions=max_instructions)
    wall = time.perf_counter() - start
    return BenchmarkResult(
        simulator="functional",
        workload=workload.name,
        cycles=stats.instructions,  # one "cycle" per instruction
        instructions=stats.instructions,
        wall_seconds=wall,
        final_r0=simulator.register(0),
        finish_reason="halt" if stats.halted else "limit",
    )


def run_simplescalar(workload, config=None, max_cycles=None):
    """Run a workload on the SimpleScalar-style fixed baseline."""
    simulator = SimpleScalarLikeSimulator(config)
    return _timed_run(simulator, workload, "simplescalar-arm", max_cycles)


def run_inorder(workload, config=None, max_cycles=None):
    """Run a workload on the hand-written in-order five-stage baseline."""
    simulator = InOrderPipelineSimulator(config)
    return _timed_run(simulator, workload, "inorder-baseline", max_cycles)


def run_processor(builder, workload, label=None, max_cycles=None, backend=None, **builder_kwargs):
    """Run a workload on an RCPN model built by ``builder``.

    ``backend`` selects the engine backend (``"interpreted"`` or
    ``"compiled"``) and is forwarded to the builder; the benchmark harness
    uses it to measure the interpreted-vs-generated gap of the paper's
    Figure 10 without duplicating builder plumbing.
    """
    if backend is not None:
        builder_kwargs["backend"] = backend
    processor = builder(**builder_kwargs)
    processor.load_program(workload.program)
    start = time.perf_counter()
    stats = processor.run(max_cycles=max_cycles)
    wall = time.perf_counter() - start
    return BenchmarkResult(
        simulator=label or processor.net.name,
        workload=workload.name,
        cycles=stats.cycles,
        instructions=stats.instructions,
        wall_seconds=wall,
        final_r0=processor.register(0),
        finish_reason=stats.finish_reason,
    )


def speedup(result, baseline):
    """Throughput ratio (cycles per host second) of ``result`` over ``baseline``.

    A baseline with no measurable throughput (zero or sub-tick wall time)
    yields 0.0, not inf: downstream tables and JSON exports stay finite.
    """
    if baseline.cycles_per_second == 0:
        return 0.0
    return result.cycles_per_second / baseline.cycles_per_second


def average(values):
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values):
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
