"""Model-complexity accounting (the Figure 1 / Figure 2 experiment).

The paper's qualitative claim is that an RCPN model stays close to the
pipeline block diagram while the equivalent CPN blows up with complement
places and circular arcs.  These helpers make that claim quantitative for
any model in the repository.
"""

from __future__ import annotations

from repro.cpn.convert import rcpn_to_cpn


def model_complexity_table(models):
    """Structural sizes of RCPN models and of their CPN conversions.

    ``models`` maps a display name to an :class:`repro.core.RCPN` (or to a
    :class:`repro.describe.substrate.Processor`, whose net is used).  Returns
    a list of row dictionaries ready for printing.
    """
    rows = []
    for name, model in models.items():
        net = getattr(model, "net", model)
        rcpn_size = net.complexity()
        cpn = rcpn_to_cpn(net)
        cpn_size = cpn.complexity()
        rows.append(
            {
                "model": name,
                "rcpn_places": rcpn_size["places"],
                "rcpn_transitions": rcpn_size["transitions"],
                "rcpn_arcs": rcpn_size["arcs"],
                "subnets": rcpn_size["subnets"],
                "operation_classes": rcpn_size["operation_classes"],
                "cpn_places": cpn_size["places"],
                "cpn_transitions": cpn_size["transitions"],
                "cpn_arcs": cpn_size["arcs"],
                "arc_blowup": (
                    cpn_size["arcs"] / rcpn_size["arcs"] if rcpn_size["arcs"] else float("inf")
                ),
            }
        )
    return rows
