"""Plain-text table formatting for benchmark output."""

from __future__ import annotations


def format_table(rows, columns=None, floatfmt="%.2f"):
    """Format a list of dictionaries as an aligned plain-text table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value):
        if isinstance(value, float):
            return floatfmt % value
        return str(value)

    table = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in table)
    return "\n".join([header, separator, body])
