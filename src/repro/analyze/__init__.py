"""Static model verification and emitted-source lint.

Two analysis families over registered processor models, both producing
the same :class:`~repro.analyze.findings.Finding` objects:

* **lint** — rule-based structural checks on the declarative
  :class:`~repro.describe.spec.PipelineSpec` (dead transitions,
  unreachable places, siphon-style deadlocks, issue-width and cache
  geometry smells; rules ``AN0xx``) and on the elaborated RCPN
  (``AN1xx``).  Pure inspection: nothing is simulated.
* **verify** — emitted-source verification: the generated/batched
  backends' emitted Python modules are parsed with :mod:`ast` and proven
  to match the compiled plan (rules ``SV0xx``), and the interpreted and
  compiled backends' cached schedule/plan are checked against fresh
  derivations (``SV1xx``).

Run from the command line::

    python -m repro.analyze lint --all --fail-on warning
    python -m repro.analyze verify --all --backends generated,batched
"""

from repro.analyze.findings import (
    RULES,
    SEVERITIES,
    Finding,
    Rule,
    exceeds,
    finding,
    max_severity,
    record_rule_hits,
    severity_rank,
)
from repro.analyze.rules import lint_model, lint_net, lint_registered, lint_spec
from repro.analyze.sourcecheck import verify_backend, verify_engine, verify_model

__all__ = [
    "RULES",
    "SEVERITIES",
    "Finding",
    "Rule",
    "exceeds",
    "finding",
    "lint_model",
    "lint_net",
    "lint_registered",
    "lint_spec",
    "max_severity",
    "record_rule_hits",
    "severity_rank",
    "verify_backend",
    "verify_engine",
    "verify_model",
]
