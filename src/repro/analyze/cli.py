"""Command-line interface: ``python -m repro.analyze lint|verify|rules``.

``lint`` runs the spec/net structural rules over registered models,
``verify`` proves each backend's executable artefact (emitted source,
compiled plan, cached schedule) matches an independent re-derivation, and
``rules`` prints the rule catalogue.  Both analysis commands render text
(one finding per line) or a JSON document suitable for a CI artifact, and
exit non-zero when findings reach the ``--fail-on`` threshold.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analyze.findings import RULES, SEVERITIES, exceeds, record_rule_hits
from repro.analyze.rules import lint_registered
from repro.analyze.sourcecheck import verify_backend, verify_model

#: Backends ``verify`` accepts; codegen backends get the AST treatment.
VERIFY_BACKENDS = ("interpreted", "compiled", "generated", "batched")


def _split(value):
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _resolve_models(args):
    from repro.processors.registry import get_entry, processor_names

    if args.models:
        for name in args.models:
            get_entry(name)  # raises with a did-you-mean on typos
        return tuple(args.models)
    if not args.all:
        raise ValueError("name at least one model, or pass --all")
    if getattr(args, "command", None) == "lint":
        return tuple(
            name
            for name in processor_names()
            if getattr(get_entry(name), "lint", True)
        )
    return tuple(processor_names())


def _render(out, per_model, args, extra=None):
    """Render findings as text or JSON; return the exit code."""
    findings = [entry for model in per_model.values() for entry in model]
    if args.format == "json":
        document = {
            "command": args.command,
            "fail_on": args.fail_on,
            "counts": {
                severity: sum(1 for f in findings if f.severity == severity)
                for severity in SEVERITIES
            },
            "clean": sorted(name for name, fs in per_model.items() if not fs),
            "dirty": sorted(name for name, fs in per_model.items() if fs),
            "findings": [entry.to_dict() for entry in findings],
        }
        if extra:
            document.update(extra)
        out.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    else:
        for name in sorted(per_model):
            model_findings = per_model[name]
            if model_findings:
                out.write("%s: %d finding(s)\n" % (name, len(model_findings)))
                for entry in model_findings:
                    out.write("  %s\n" % entry)
            else:
                out.write("%s: CLEAN\n" % name)
        out.write(
            "%d model(s), %d finding(s)\n" % (len(per_model), len(findings))
        )
    return 1 if exceeds(findings, args.fail_on) else 0


def _maybe_write_metrics(args, findings, per_model):
    if not getattr(args, "metrics_json", None):
        return
    from repro.observe.metrics import MetricsRegistry, write_metrics_json

    metrics = MetricsRegistry()
    record_rule_hits(metrics, findings)
    metrics.gauge("analyze.models_clean", "models with no findings").set(
        sum(1 for fs in per_model.values() if not fs)
    )
    metrics.gauge("analyze.models_dirty", "models with findings").set(
        sum(1 for fs in per_model.values() if fs)
    )
    write_metrics_json(args.metrics_json, metrics.snapshot())


def _command_lint(args, out):
    names = _resolve_models(args)
    per_model = lint_registered(names=names, elaborated=not args.spec_only)
    _maybe_write_metrics(
        args, [f for fs in per_model.values() for f in fs], per_model
    )
    return _render(out, per_model, args)


def _command_verify(args, out):
    backends = _split(args.backends)
    unknown = [b for b in backends if b not in VERIFY_BACKENDS]
    if unknown:
        raise ValueError(
            "unknown backend(s) %s; expected a subset of %s"
            % (", ".join(unknown), ", ".join(VERIFY_BACKENDS))
        )
    names = _resolve_models(args)
    per_model = {}
    combos = 0
    for name in names:
        findings = []
        for backend in backends:
            findings.extend(verify_backend(name, backend))
            combos += 1
            if args.trace and backend in ("generated", "batched"):
                findings.extend(verify_model(name, backend=backend, trace=True))
                combos += 1
        per_model[name] = findings
    _maybe_write_metrics(
        args, [f for fs in per_model.values() for f in fs], per_model
    )
    return _render(
        out, per_model, args,
        extra={"backends": list(backends), "combinations": combos},
    )


def _command_rules(args, out):
    if args.format == "json":
        out.write(json.dumps(
            [
                {
                    "id": rule.id,
                    "slug": rule.slug,
                    "severity": rule.severity,
                    "summary": rule.summary,
                }
                for rule in RULES.values()
            ],
            indent=2,
        ) + "\n")
    else:
        for rule in RULES.values():
            out.write(
                "%s  %-8s %-24s %s\n"
                % (rule.id, rule.severity, rule.slug, rule.summary)
            )
    return 0


def _analysis_arguments(parser):
    parser.add_argument("models", nargs="*", help="registry model names")
    parser.add_argument(
        "--all", action="store_true", help="analyze every registered model"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default="error",
        help="exit 1 when any finding is at least this severe (default: error)",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        help="write rule-hit counters to this metrics JSON file",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="static model verification and emitted-source lint",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser(
        "lint", help="structural lint of registered specs and elaborated nets"
    )
    _analysis_arguments(lint)
    lint.add_argument(
        "--spec-only",
        action="store_true",
        help="skip elaboration; run only the spec-level rules",
    )
    lint.set_defaults(handler=_command_lint)

    verify = commands.add_parser(
        "verify",
        help="prove backend artefacts (emitted source, plan, schedule) "
        "match a fresh derivation",
    )
    _analysis_arguments(verify)
    verify.add_argument(
        "--backends",
        default=",".join(VERIFY_BACKENDS),
        help="comma-separated backends to verify (default: all four)",
    )
    verify.add_argument(
        "--trace",
        action="store_true",
        help="also verify traced emission (TRF/TRS sites) for codegen backends",
    )
    verify.set_defaults(handler=_command_verify)

    rules = commands.add_parser("rules", help="print the rule catalogue")
    rules.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    rules.set_defaults(handler=_command_rules)
    return parser


def main(argv=None, out=None):
    from repro.core.exceptions import UnknownNameError

    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except (ValueError, UnknownNameError) as error:
        out.write("error: %s\n" % error)
        return 1
