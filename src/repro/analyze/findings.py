"""Finding and rule vocabulary of the static analyzer.

A :class:`Finding` is one diagnostic: the rule that fired, its severity,
the model (or spec) it was found in and a location string precise enough
to act on (``spec:paths[branch]``, ``net:place 'alu.issue'``,
``source:make_step``).  Findings are plain data — ``to_dict`` round-trips
through JSON — so the CLI, the CI artifact and the campaign report all
render the same objects.

The rule catalogue (:data:`RULES`) is the single source of truth for rule
ids, default severities and the README rule table; rules are grouped by id
prefix:

* ``AN0xx`` — spec-level structural lint (:func:`repro.analyze.rules.lint_spec`);
* ``AN1xx`` — elaborated-net lint (:func:`repro.analyze.rules.lint_net`);
* ``SV0xx`` — emitted-source verification (:mod:`repro.analyze.sourcecheck`);
* ``SV1xx`` — interpreted/compiled backend coherence checks.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity order, least to most severe; ``--fail-on`` thresholds compare
#: against this ranking.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Rule:
    """One analyzer rule: id, short slug, default severity, summary."""

    id: str
    slug: str
    severity: str
    summary: str


_RULE_TABLE = (
    # -- spec-level structural lint (repro.analyze.rules.lint_spec) --------
    Rule("AN001", "spec-invalid", "error",
         "PipelineSpec.validate() rejects the spec (one finding per problem)"),
    Rule("AN002", "dead-transition", "error",
         "a path transition can never fire (unreachable source or unsatisfiable consumes)"),
    Rule("AN003", "unreachable-place", "warning",
         "a declared path stage or extra place can never receive a token"),
    Rule("AN004", "path-cannot-retire", "error",
         "no live transition sequence carries an instruction from the path entry to 'end'"),
    Rule("AN005", "reservation-leak", "warning",
         "a reservation place is produced into but never consumed (token-conservation leak)"),
    Rule("AN006", "issue-width-mismatch", "warning",
         "a front-end stage is narrower than the declared issue width"),
    Rule("AN007", "forwarding-gap", "warning",
         "no forward states on a deep pipeline: every producer-consumer pair stalls to writeback"),
    Rule("AN008", "cache-geometry-smell", "warning",
         "suspicious cache hierarchy (L2 smaller/narrower than L1, few sets, latency inversions)"),
    Rule("AN009", "deadlock-siphon", "error",
         "an initially-empty siphon starves every exit of a reachable place (guaranteed jam)"),
    Rule("AN010", "fetch-stall-unwired", "warning",
         "fetch declares a stall stage no transition ever parks a reservation in"),
    # -- elaborated-net lint (repro.analyze.rules.lint_net) ----------------
    Rule("AN101", "net-invalid", "error",
         "elaboration fails or RCPN.validate() rejects the elaborated net"),
    Rule("AN102", "net-dead-dispatch", "error",
         "an instruction place has no dispatch candidates for a sub-net operation class"),
    Rule("AN103", "net-unreachable-place", "warning",
         "an elaborated place is neither an entry nor any transition's output"),
    # -- emitted-source verification (repro.analyze.sourcecheck) -----------
    Rule("SV001", "module-constants", "error",
         "emitted module header disagrees with the net (fingerprint, digest, places, transitions)"),
    Rule("SV002", "dispatch-branches", "error",
         "emitted opclass dispatch branches disagree with the static schedule"),
    Rule("SV003", "place-order", "error",
         "emitted place segments are not in static-schedule order"),
    Rule("SV004", "firing-sites", "error",
         "emitted firing-counter sites disagree with the dispatch chains and generators"),
    Rule("SV005", "gate-sites", "error",
         "emitted issue/advance gate call sites disagree with the compiled guard plan"),
    Rule("SV006", "trace-sites", "error",
         "TRF/TRS trace call sites do not match the requested trace categories"),
    Rule("SV007", "emit-report", "error",
         "embedded EMIT_REPORT disagrees with counts recovered from the source"),
    Rule("SV008", "batched-shape", "error",
         "batched module shape (make_step_batched, EMISSION_MODE, LANES) is wrong"),
    Rule("SV101", "schedule-coherent", "error",
         "interpreted backend: cached static schedule disagrees with a fresh derivation"),
    Rule("SV102", "plan-coherent", "error",
         "compiled backend: plan summary disagrees with independent reclassification"),
)

#: Rule id -> :class:`Rule`.
RULES = {rule.id: rule for rule in _RULE_TABLE}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by the analyzer."""

    rule: str
    severity: str
    model: str
    location: str
    message: str

    def to_dict(self):
        return {
            "rule": self.rule,
            "slug": RULES[self.rule].slug if self.rule in RULES else None,
            "severity": self.severity,
            "model": self.model,
            "location": self.location,
            "message": self.message,
        }

    def __str__(self):
        return "%s %s [%s] %s: %s" % (
            self.severity.upper(), self.rule, self.model, self.location, self.message
        )


def finding(rule_id, model, location, message, severity=None):
    """Build a :class:`Finding` for a catalogued rule (default severity)."""
    rule = RULES[rule_id]
    return Finding(
        rule=rule_id,
        severity=severity or rule.severity,
        model=model,
        location=location,
        message=message,
    )


def severity_rank(severity):
    """Position of ``severity`` in :data:`SEVERITIES` (unknown -> most severe)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES)


def max_severity(findings):
    """The most severe severity present, or ``None`` for no findings."""
    worst = None
    for entry in findings:
        if worst is None or severity_rank(entry.severity) > severity_rank(worst):
            worst = entry.severity
    return worst


def exceeds(findings, fail_on):
    """True when any finding is at least as severe as ``fail_on``."""
    threshold = severity_rank(fail_on)
    return any(severity_rank(entry.severity) >= threshold for entry in findings)


def record_rule_hits(metrics, findings):
    """Fold findings into rule-hit counters of a metrics registry.

    Increments ``analyze.rule.<id>`` per finding plus the per-severity
    ``analyze.findings.<severity>`` totals, so lint sweeps surface in the
    same :class:`repro.observe.MetricsRegistry` snapshots campaigns use.
    """
    for entry in findings:
        metrics.counter(
            "analyze.rule.%s" % entry.rule,
            RULES[entry.rule].summary if entry.rule in RULES else "",
        ).inc()
        metrics.counter(
            "analyze.findings.%s" % entry.severity, "findings at this severity"
        ).inc()
    return metrics
