"""Structural lint rules over PipelineSpecs and elaborated RCPNs.

The spec-level pass (:func:`lint_spec`) works on the pure-data description
alone — it is what ``register_processor(..., lint=True)`` opts a model
into and what the campaign ``report`` command surfaces.  Its centrepiece
is a per-path *fireability fixpoint* in the siphon/trap tradition: every
place starts empty, a transition is fireable once its source can be
occupied and every reservation it consumes can be produced by an already
fireable producer, and the fixpoint iterates until nothing changes.  What
remains unfireable is dead (AN002); an initially-empty siphon that starves
every exit of an occupied place is a guaranteed jam (AN009); a path whose
``end`` never becomes occupied cannot retire instructions (AN004).  The
check is bounded and exact for the spec vocabulary: no reachability graph
is expanded, only a linear fixpoint over the path's transitions.

The net-level pass (:func:`lint_net`) re-checks the *elaborated* RCPN —
including hand-built nets that never had a spec — for dead dispatch
entries and orphaned places, and adopts
:meth:`~repro.core.net.RCPN.validate` failures as findings instead of
exceptions.  :func:`lint_model` runs both passes for one registry entry;
:func:`lint_registered` sweeps every lint-enabled entry and can fold rule
hit counts into a :class:`repro.observe.MetricsRegistry`.
"""

from __future__ import annotations

from repro.analyze.findings import finding, record_rule_hits
from repro.core.exceptions import ModelError
from repro.describe.spec import (
    CacheLevelSpec,
    MemorySpec,
    PipelineSpec,
    SpecError,
)


def _problem_lines(message):
    """The per-problem bullet lines of a validate() message (or the whole)."""
    _header, sep, body = str(message).partition(":\n  - ")
    if not sep:
        return [str(message)]
    return body.split("\n  - ")


# ---------------------------------------------------------------------------
# Spec-level lint (AN0xx)
# ---------------------------------------------------------------------------


def _path_fireability(path):
    """The bounded siphon/trap fixpoint of one operation-class path.

    Returns ``(occupied, filled, fireable)``: the nodes an instruction
    token can occupy, the extra-place keys a reservation can reach, and the
    indices of fireable transitions.  Everything starts empty (the initial
    marking of every model), so a key only counts as producible once a
    fireable transition produces it — exactly the empty-siphon argument.
    """
    occupied = {path.stages[0]} if path.stages else set()
    filled = set()
    fireable = set()
    changed = True
    while changed:
        changed = False
        for index, transition in enumerate(path.transitions):
            if index in fireable:
                continue
            if transition.source not in occupied:
                continue
            if any(key not in filled for key in transition.consumes):
                continue
            fireable.add(index)
            occupied.add(transition.target)
            filled.update(transition.produces)
            changed = True
    return occupied, filled, fireable


def _lint_paths(spec, model):
    findings = []
    for path in spec.paths:
        if not path.stages:
            continue  # validate() already rejected this path
        where = "spec:paths[%s]" % path.opclass
        occupied, filled, fireable = _path_fireability(path)
        dead = [
            (index, transition)
            for index, transition in enumerate(path.transitions)
            if index not in fireable
        ]
        for _index, transition in dead:
            blocked = [key for key in transition.consumes if key not in filled]
            if transition.source not in occupied:
                why = "its source %r can never be occupied" % transition.source
            else:
                why = "it consumes %s which no fireable transition produces" % (
                    ", ".join(repr(key) for key in blocked)
                )
            findings.append(finding(
                "AN002", model, where,
                "transition %r can never fire: %s" % (transition.name, why),
            ))
        dead_names = {transition.name for _index, transition in dead}
        for node in sorted(occupied - {"end"}):
            outgoing = [t for t in path.transitions if t.source == node]
            if not outgoing or all(t.name in dead_names for t in outgoing):
                detail = (
                    "has no outgoing transition" if not outgoing
                    else "has only dead exits (%s)"
                    % ", ".join(repr(t.name) for t in outgoing)
                )
                findings.append(finding(
                    "AN009", model, where,
                    "a token reaching %r jams the pipeline: the place %s "
                    "(initially-empty siphon)" % (node, detail),
                ))
        if "end" not in occupied:
            findings.append(finding(
                "AN004", model, where,
                "no fireable transition sequence reaches 'end' from entry "
                "stage %r — instructions of class %r can never retire"
                % (path.stages[0], path.opclass),
            ))
        declared = set(path.stages[1:]) | {extra.key for extra in path.extra_places}
        for node in sorted(declared - occupied - filled):
            findings.append(finding(
                "AN003", model, where,
                "place %r can never receive a token (not the entry, not any "
                "transition's target, never produced into)" % node,
            ))
        consumers = {key for t in path.transitions for key in t.consumes}
        extra_stage = {extra.key: extra.stage for extra in path.extra_places}
        for key in sorted(filled - consumers):
            stage_name = extra_stage.get(key)
            stage = next((s for s in spec.stages if s.name == stage_name), None)
            capacity = stage.capacity if stage is not None else None
            tail = (
                " — stage %r (capacity %d) fills up and blocks"
                % (stage_name, capacity)
                if capacity is not None
                else ""
            )
            findings.append(finding(
                "AN005", model, where,
                "reservation place %r is produced into but never consumed%s"
                % (key, tail),
            ))
    return findings


def _lint_issue_width(spec, model):
    issue = spec.issue
    if not getattr(issue, "multi", False) or issue.stage is None:
        return []
    findings = []
    capacities = {stage.name: stage.capacity for stage in spec.stages}
    narrow = {}
    for path in spec.paths:
        if issue.stage not in path.stages:
            continue
        cut = path.stages.index(issue.stage) + 1
        for stage_name in path.stages[:cut]:
            capacity = capacities.get(stage_name)
            if capacity is not None and capacity < issue.width:
                narrow.setdefault(stage_name, capacity)
    if spec.fetch.capacity_stage:
        capacity = capacities.get(spec.fetch.capacity_stage)
        if capacity is not None and capacity < issue.width:
            narrow.setdefault(spec.fetch.capacity_stage, capacity)
    for stage_name in sorted(narrow):
        findings.append(finding(
            "AN006", model, "spec:stages[%s]" % stage_name,
            "stage %r (capacity %d) sits at or before issue stage %r but is "
            "narrower than the issue width %d — the declared width can never "
            "be sustained" % (stage_name, narrow[stage_name], issue.stage, issue.width),
        ))
    return findings


def _lint_forwarding(spec, model):
    if spec.hazards.forward_states or spec.hazards.s1_forward_state is not None:
        return []
    deepest = max(spec.paths, key=lambda path: len(path.stages), default=None)
    if deepest is None or len(deepest.stages) < 3:
        return []
    return [finding(
        "AN007", model, "spec:hazards.forward_states",
        "no forward states on a %d-stage path (%r): every producer-consumer "
        "register dependence stalls until writeback"
        % (len(deepest.stages), deepest.opclass),
    )]


def _lint_memory(spec, model):
    memory = spec.memory
    if not isinstance(memory, MemorySpec):
        return []
    findings = []
    l1_levels = [
        (field, level)
        for field, level in (
            ("l1_instruction", memory.l1_instruction),
            ("l1_data", memory.l1_data),
            ("l1_unified", memory.l1_unified),
        )
        if isinstance(level, CacheLevelSpec)
    ]
    l2 = memory.l2 if isinstance(memory.l2, CacheLevelSpec) else None
    levels = list(l1_levels) + ([("l2", l2)] if l2 is not None else [])
    for field, level in levels:
        where = "spec:memory.%s" % field
        if (
            isinstance(level.size_bytes, int)
            and isinstance(level.line_bytes, int)
            and isinstance(level.associativity, int)
            and level.line_bytes > 0
            and level.associativity > 0
        ):
            sets = level.size_bytes // (level.line_bytes * level.associativity)
            if sets >= 1 and level.associativity > sets:
                findings.append(finding(
                    "AN008", model, where,
                    "cache %r: associativity %d exceeds its %d set(s) — more "
                    "ways than indexable lines" % (level.name, level.associativity, sets),
                ))
    if l2 is not None:
        for field, l1 in l1_levels:
            if l2.size_bytes < l1.size_bytes:
                findings.append(finding(
                    "AN008", model, "spec:memory.l2",
                    "L2 %r (%d B) is smaller than L1 %s %r (%d B)"
                    % (l2.name, l2.size_bytes, field, l1.name, l1.size_bytes),
                ))
            if l2.line_bytes < l1.line_bytes:
                findings.append(finding(
                    "AN008", model, "spec:memory.l2",
                    "L2 %r line size %d B is smaller than L1 %s %r line size %d B"
                    % (l2.name, l2.line_bytes, field, l1.name, l1.line_bytes),
                ))
        if (
            isinstance(memory.memory_latency, int)
            and l2.hit_latency >= memory.memory_latency
        ):
            findings.append(finding(
                "AN008", model, "spec:memory.l2",
                "L2 %r hit latency %d is no better than the memory latency %d "
                "— the second level never pays off"
                % (l2.name, l2.hit_latency, memory.memory_latency),
            ))
    return findings


def _lint_fetch_stall(spec, model):
    stall_stage = spec.fetch.stall_stage
    if not stall_stage:
        return []
    for path in spec.paths:
        produced = {key for t in path.transitions for key in t.produces}
        for extra in path.extra_places:
            if extra.stage == stall_stage and extra.key in produced:
                return []
        if stall_stage in path.stages:
            return []  # instruction flow itself occupies the stall stage
    return [finding(
        "AN010", model, "spec:fetch.stall_stage",
        "fetch stalls on stage %r but no transition ever parks a reservation "
        "there — the stall latch can never engage" % stall_stage,
    )]


def lint_spec(spec, model=None):
    """Spec-level findings for one :class:`PipelineSpec` (rules AN0xx)."""
    model = model or getattr(spec, "name", "<spec>")
    if not isinstance(spec, PipelineSpec):
        return [finding(
            "AN001", str(model), "spec",
            "expected a PipelineSpec, got %r" % (spec,),
        )]
    try:
        spec.validate()
    except SpecError as error:
        return [
            finding("AN001", model, "spec:validate", line)
            for line in _problem_lines(error)
        ]
    findings = []
    findings.extend(_lint_paths(spec, model))
    findings.extend(_lint_issue_width(spec, model))
    findings.extend(_lint_forwarding(spec, model))
    findings.extend(_lint_memory(spec, model))
    findings.extend(_lint_fetch_stall(spec, model))
    return findings


# ---------------------------------------------------------------------------
# Elaborated-net lint (AN1xx)
# ---------------------------------------------------------------------------


def lint_net(net, model=None):
    """Findings over an elaborated (or hand-built) RCPN (rules AN1xx)."""
    model = model or net.name
    findings = []
    try:
        net.validate()
    except ModelError as error:
        findings.extend(
            finding("AN101", model, "net:validate", line)
            for line in _problem_lines(error)
        )
    instruction_places = {
        id(subnet.entry_place): subnet.entry_place
        for subnet in net.subnets.values()
        if subnet.entry_place is not None
    }
    reachable = set(instruction_places)
    for transition in net.transitions:
        target = transition.target_place
        if target is not None:
            reachable.add(id(target))
            if not target.is_end:
                instruction_places.setdefault(id(target), target)
        for arc in transition.reservation_outputs:
            if arc.place is not None:
                reachable.add(id(arc.place))
    for place in instruction_places.values():
        if place.is_end:
            continue
        subnet = place.subnet
        if subnet is None or not subnet.opclasses:
            continue
        outgoing = [
            t for t in net.transitions
            if t.source is place and t.subnet is subnet
        ]
        if not outgoing:
            findings.append(finding(
                "AN102", model, "net:place %r" % place.name,
                "instruction place of sub-net %r has no dispatch candidates "
                "for %s — a token arriving here can never leave"
                % (subnet.name, ", ".join(repr(c) for c in subnet.opclasses)),
            ))
    for place in net.places.values():
        if place.is_end or id(place) in reachable:
            continue
        findings.append(finding(
            "AN103", model, "net:place %r" % place.name,
            "place is neither a sub-net entry nor any transition's output — "
            "no token can ever arrive",
        ))
    return findings


# ---------------------------------------------------------------------------
# Registry sweeps
# ---------------------------------------------------------------------------


def lint_model(name, elaborated=True):
    """All lint findings for one registered model.

    Runs the spec pass, then (``elaborated=True`` and no spec-level errors)
    elaborates the model and runs the net pass.  Elaboration failures are
    reported as AN101 findings rather than raised, so one broken model
    never aborts a sweep.
    """
    from repro.processors.registry import get_spec

    spec = get_spec(name)
    findings = []
    if spec is not None:
        findings.extend(lint_spec(spec, model=name))
        if any(entry.severity == "error" for entry in findings):
            return findings
    if not elaborated:
        return findings
    try:
        from repro.describe.elaborate import elaborate_net
        from repro.processors.registry import build_processor

        if spec is not None:
            net, _decoder, _core, _memory, _semantics = elaborate_net(spec)
        else:
            net = build_processor(name).net
    except Exception as error:  # noqa: BLE001 - any elaboration failure is a finding
        findings.append(finding(
            "AN101", name, "net:elaborate",
            "elaboration failed: %s: %s" % (type(error).__name__, error),
        ))
        return findings
    findings.extend(lint_net(net, model=name))
    return findings


def lint_registered(names=None, elaborated=True, metrics=None):
    """Lint every (or the named) lint-enabled registered models.

    Returns ``{model: [Finding, ...]}`` in registry order.  With
    ``metrics`` (a :class:`repro.observe.MetricsRegistry`), rule hit counts
    and per-model clean/dirty gauges are recorded.
    """
    from repro.processors.registry import get_entry, processor_names

    if names is None:
        names = [
            name for name in processor_names()
            if getattr(get_entry(name), "lint", True)
        ]
    results = {}
    for name in names:
        results[name] = lint_model(name, elaborated=elaborated)
    if metrics is not None:
        clean = sum(1 for findings in results.values() if not findings)
        metrics.gauge("analyze.models_clean", "models with no findings").set(clean)
        metrics.gauge(
            "analyze.models_dirty", "models with at least one finding"
        ).set(len(results) - clean)
        for findings in results.values():
            record_rule_hits(metrics, findings)
    return results
