"""Emitted-source verification: prove the generated module matches its plan.

The generated/batched backends ``exec`` emitted Python and trust it to
implement the compiled plan.  This pass removes the trust: it parses the
emitted module with :mod:`ast` and re-derives, from the *text*, the plan
the module actually implements — the place-segment order, the per-place
operation-class dispatch branches, every firing-counter site, every
issue/advance gate call, every ``TRF``/``TRS`` trace site — and compares
each against an independent recomputation from the net and its static
schedule (:func:`repro.codegen.runtime.guard_plan` /
:func:`~repro.codegen.runtime.action_plan` and
:meth:`~repro.core.scheduler.StaticSchedule.transitions_for`).

``verify_backend`` extends the idea to the other backends: the interpreted
engine's (possibly cache-hydrated) schedule is checked against a fresh
derivation, and the compiled engine's plan summary against an independent
reclassification of every dispatched transition.
"""

from __future__ import annotations

import ast
from collections import Counter

from repro.analyze.findings import finding


def _module_constants(tree):
    """Top-level literal ``NAME = <literal>`` assignments of the module."""
    constants = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            try:
                constants[node.targets[0].id] = ast.literal_eval(node.value)
            except ValueError:
                continue
    return constants


def _find_function(tree, name):
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


class _StepFacts:
    """Everything the verifier reads out of one emitted step function."""

    def __init__(self, function, generator_names=()):
        #: Place indices in segment order (one per ``_t = pN.tokens``).
        self.segment_order = []
        #: Per segment: list of (opclass, [fired transition names]) chains.
        self.segments = []
        #: Firing sites of generator transitions, in source order.
        self.generator_fires = []
        #: True when a place segment starts *after* a generator fire — the
        #: generator section must trail every dispatch segment.
        self.misplaced_generators = False
        self.fire_counts = Counter()
        self.stall_sites = 0
        self.trf_calls = 0
        self.trs_calls = 0
        self.gate_calls = Counter()  # (var, attr or "") -> count
        self._generator_names = frozenset(generator_names)

        events = []
        for node in ast.walk(function):
            event = self._classify(node)
            if event is not None:
                events.append((node.lineno, node.col_offset, event))
        events.sort(key=lambda item: (item[0], item[1]))
        self._fold(event for _line, _col, event in events)

    @staticmethod
    def _classify(node):
        if isinstance(node, ast.Assign):
            # `_t = pN.tokens` marks the start of one place segment.
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "_t"
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "tokens"
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id.startswith("p")
            ):
                return ("place", int(node.value.value.id[1:]))
        elif isinstance(node, ast.Compare):
            # `_oc == 'opclass'` opens one dispatch branch.
            if (
                isinstance(node.left, ast.Name)
                and node.left.id == "_oc"
                and len(node.ops) == 1
                and isinstance(node.ops[0], ast.Eq)
                and isinstance(node.comparators[0], ast.Constant)
            ):
                return ("oc", node.comparators[0].value)
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            target = node.target
            # `tf['name'] += 1` is the firing counter of one attempt.
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == "tf"
                and isinstance(target.slice, ast.Constant)
            ):
                return ("fire", target.slice.value)
            # `stats.stalls += 1` is one stall site.
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "stalls"
                and isinstance(target.value, ast.Name)
                and target.value.id == "stats"
            ):
                return ("stall",)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("TRF", "TRS"):
                    return ("trace", func.id)
                if func.id[:1] in ("g", "a") and func.id[1:].isdigit():
                    return ("gate", func.id, "")
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id[:1] == "c"
                and func.value.id[1:].isdigit()
                and func.attr in ("may_issue", "may_advance", "note_issue")
            ):
                return ("gate", func.value.id, func.attr)
        return None

    def _fold(self, events):
        for event in events:
            kind = event[0]
            if kind == "place":
                self.segment_order.append(event[1])
                self.segments.append([])
                if self.generator_fires:
                    self.misplaced_generators = True
            elif kind == "oc":
                if self.segments:
                    self.segments[-1].append((event[1], []))
            elif kind == "fire":
                self.fire_counts[event[1]] += 1
                if event[1] in self._generator_names:
                    self.generator_fires.append(event[1])
                elif self.segments and self.segments[-1]:
                    self.segments[-1][-1][1].append(event[1])
            elif kind == "stall":
                self.stall_sites += 1
            elif kind == "trace":
                if event[1] == "TRF":
                    self.trf_calls += 1
                else:
                    self.trs_calls += 1
            elif kind == "gate":
                self.gate_calls[(event[1], event[2])] += 1


def _expected_plan(net, schedule):
    """Recompute what the emitted module must contain, from net + schedule.

    Returns ``(dispatch, generators, occurrences)``: the nonempty dispatch
    table in schedule order, the generator transition names, and how often
    each transition name must appear as a firing site.
    """
    occurrences = Counter()
    dispatch = []
    for place in schedule.order:
        entries = []
        for opclass in net.operation_classes:
            candidates = schedule.transitions_for(place, opclass)
            if candidates:
                entries.append((opclass, tuple(t.name for t in candidates)))
                for transition in candidates:
                    occurrences[transition.name] += 1
        dispatch.append((place.name, tuple(entries)))
    generators = tuple(t.name for t in schedule.generator_transitions)
    for name in generators:
        occurrences[name] += 1
    return tuple(dispatch), generators, occurrences


def _expected_gates(net, occurrences):
    """Per-variable expected gate/guard/action call-site counts."""
    from repro.codegen.runtime import action_plan, guard_plan

    expected = Counter()
    for index, transition in enumerate(net.transitions):
        occ = occurrences.get(transition.name, 0)
        if not occ:
            continue
        gkind, gbase, _gcontrol, _gport, _gstage = guard_plan(transition)
        if gkind == "issue":
            expected[("c%d" % index, "may_issue")] += occ
        elif gkind == "advance":
            expected[("c%d" % index, "may_advance")] += occ
        if gkind == "plain" or (gkind in ("issue", "advance") and gbase is not None):
            expected[("g%d" % index, "")] += occ
        akind, abase, _acontrol, _aport = action_plan(transition)
        if akind == "issue":
            expected[("c%d" % index, "note_issue")] += occ
        if akind == "plain" or (akind == "issue" and abase is not None):
            expected[("a%d" % index, "")] += occ
    return expected


def _expected_stall_sites(dispatch):
    """One stall per dispatch chain, plus the per-segment else branch."""
    total = 0
    for _place, entries in dispatch:
        total += len(entries) + 1 if entries else 1
    return total


def verify_engine(engine, model=None):
    """AST-verify one generated/batched engine's emitted module.

    Returns a list of findings (empty when the source provably matches the
    compiled plan).  ``engine`` must be a
    :class:`repro.codegen.GeneratedEngine` (or its batched subclass).
    """
    from repro.codegen.cache import codegen_key, emit_trace_categories
    from repro.codegen.runtime import structure_digest

    net = engine.net
    model = model or net.name
    options = engine.options
    batched = options.backend == "batched"
    source = engine.source
    module = engine.module
    findings = []

    def err(rule, location, message):
        findings.append(finding(rule, model, location, message))

    tree = ast.parse(source)
    constants = _module_constants(tree)

    # -- SV001: header constants vs the live net ---------------------------
    schedule = engine.schedule
    expected_constants = {
        "MODEL": net.name,
        "SPEC_FINGERPRINT": getattr(net, "spec_fingerprint", None),
        "STRUCTURE_DIGEST": structure_digest(net),
        "PLACES": tuple(place.name for place in schedule.order),
        "STAGES": tuple(net.stages),
        "TRANSITIONS": tuple(t.name for t in net.transitions),
        "CODEGEN_KEY": codegen_key(getattr(net, "spec_fingerprint", None), options),
    }
    for name, expected in expected_constants.items():
        if name not in constants:
            err("SV001", "source:%s" % name, "module constant missing from source")
            continue
        if constants[name] != expected:
            err("SV001", "source:%s" % name,
                "source declares %r but the net derives %r" % (constants[name], expected))
        if getattr(module, name, None) != expected:
            err("SV001", "module:%s" % name,
                "executed module attribute %r disagrees with the net's %r"
                % (getattr(module, name, None), expected))

    expected_dispatch, expected_generators, occurrences = _expected_plan(net, schedule)
    declared_dispatch = constants.get("DISPATCH")
    if declared_dispatch != expected_dispatch:
        err("SV001", "source:DISPATCH",
            "declared dispatch table disagrees with the static schedule")
    if constants.get("GENERATORS") != expected_generators:
        err("SV001", "source:GENERATORS",
            "declared generators %r disagree with the schedule's %r"
            % (constants.get("GENERATORS"), expected_generators))

    # -- locate the step body ----------------------------------------------
    maker_name = "make_step_batched" if batched else "make_step"
    maker = _find_function(tree, maker_name)
    if maker is None:
        err("SV008" if batched else "SV001", "source:%s" % maker_name,
            "emitted module does not define %s" % maker_name)
        return findings
    step = _find_function(maker, "step")
    if step is None:
        err("SV008" if batched else "SV001", "source:%s" % maker_name,
            "emitted %s does not define the inner step function" % maker_name)
        return findings

    if batched:
        arg_names = [arg.arg for arg in step.args.args]
        if arg_names != ["start", "stride", "active", "done"]:
            err("SV008", "source:step",
                "batched step signature is %r, expected (start, stride, active, done)"
                % (arg_names,))
        if constants.get("EMISSION_MODE") != "batched":
            err("SV008", "source:EMISSION_MODE",
                "batched module does not declare EMISSION_MODE = 'batched'")
        if constants.get("LANES") != options.lanes:
            err("SV008", "source:LANES",
                "module declares %r lanes, engine options say %r"
                % (constants.get("LANES"), options.lanes))

    facts = _StepFacts(step, generator_names=expected_generators)

    # -- SV003: place segments appear in schedule order --------------------
    if facts.segment_order != list(range(len(schedule.order))):
        err("SV003", "source:step",
            "place segments occur as %r, expected the schedule order 0..%d"
            % (facts.segment_order, len(schedule.order) - 1))

    # -- SV002: dispatch branches match the schedule -----------------------
    recovered = []
    for index, chains in enumerate(facts.segments):
        place_name = (
            expected_dispatch[index][0] if index < len(expected_dispatch) else "?"
        )
        recovered.append((
            place_name,
            tuple((opclass, tuple(fires)) for opclass, fires in chains),
        ))
    if tuple(recovered) != expected_dispatch:
        for index, expected_entry in enumerate(expected_dispatch):
            got = recovered[index] if index < len(recovered) else None
            if got != expected_entry:
                err("SV002", "source:place %r" % (expected_entry[0],),
                    "emitted dispatch %r disagrees with the schedule's %r"
                    % (got, expected_entry))

    # -- SV004: firing-counter sites ---------------------------------------
    if facts.fire_counts != occurrences:
        for name in sorted(set(facts.fire_counts) | set(occurrences)):
            got, want = facts.fire_counts.get(name, 0), occurrences.get(name, 0)
            if got != want:
                err("SV004", "source:transition %r" % name,
                    "%d firing site(s) emitted, %d expected" % (got, want))
    if facts.generator_fires != list(expected_generators):
        err("SV004", "source:generators",
            "generator firing sites %r disagree with the generator order %r"
            % (facts.generator_fires, list(expected_generators)))
    if facts.misplaced_generators:
        err("SV004", "source:generators",
            "a generator firing site precedes a place segment; the generator "
            "section must trail every dispatch segment")

    # -- SV005: gate call sites vs the guard/action plan -------------------
    expected_gates = _expected_gates(net, occurrences)
    if facts.gate_calls != expected_gates:
        for key in sorted(set(facts.gate_calls) | set(expected_gates)):
            got, want = facts.gate_calls.get(key, 0), expected_gates.get(key, 0)
            if got != want:
                var, attr = key
                label = "%s.%s" % (var, attr) if attr else var
                err("SV005", "source:%s" % label,
                    "%d call site(s) emitted, %d required by the plan" % (got, want))

    # -- SV006: trace sites iff tracing was requested ----------------------
    categories = emit_trace_categories(options)
    traced_firing = "firing" in categories
    traced_stall = "stall" in categories
    total_fire_sites = sum(occurrences.values())
    expected_stalls = _expected_stall_sites(expected_dispatch)
    if facts.stall_sites != expected_stalls:
        err("SV004", "source:stalls",
            "%d stall sites emitted, %d expected" % (facts.stall_sites, expected_stalls))
    if traced_firing and facts.trf_calls != total_fire_sites:
        err("SV006", "source:TRF",
            "%d TRF call(s) for %d firing sites" % (facts.trf_calls, total_fire_sites))
    if traced_stall and facts.trs_calls != facts.stall_sites:
        err("SV006", "source:TRS",
            "%d TRS call(s) for %d stall sites" % (facts.trs_calls, facts.stall_sites))
    if not traced_firing and facts.trf_calls:
        err("SV006", "source:TRF",
            "tracing off but %d TRF call(s) emitted" % facts.trf_calls)
    if not traced_stall and facts.trs_calls:
        err("SV006", "source:TRS",
            "tracing off but %d TRS call(s) emitted" % facts.trs_calls)
    if categories and tuple(constants.get("TRACE_CATEGORIES", ())) != categories:
        err("SV006", "source:TRACE_CATEGORIES",
            "module declares %r, options request %r"
            % (constants.get("TRACE_CATEGORIES"), categories))
    if not categories and "TRACE_CATEGORIES" in constants:
        err("SV006", "source:TRACE_CATEGORIES",
            "tracing off but the module declares TRACE_CATEGORIES")

    # -- SV007: the embedded EMIT_REPORT matches the recovered counts ------
    report = constants.get("EMIT_REPORT")
    if not isinstance(report, dict):
        err("SV007", "source:EMIT_REPORT", "missing or non-dict EMIT_REPORT")
    else:
        from repro.codegen.runtime import guard_plan
        from repro.compiled.plan import transition_capacity_shape

        emitted = {
            name: transition
            for transition in net.transitions
            for name in (transition.name,)
            if occurrences.get(name)
        }
        kinds = Counter(guard_plan(t)[0] for t in emitted.values())
        shapes = Counter(transition_capacity_shape(t)[0] for t in emitted.values())
        recomputed = {
            "transitions_compiled": len(set(facts.fire_counts)),
            "places_compiled": len(facts.segments),
            "nonempty_dispatch_entries": sum(
                len(entries) for _place, entries in expected_dispatch
            ),
            "dispatch_entries": len(schedule.order) * len(net.operation_classes),
            "guard_free_transitions": kinds.get("none", 0),
            "issue_gated_transitions": kinds.get("issue", 0),
            "advance_gated_transitions": kinds.get("advance", 0),
            "capacity_free_transitions": shapes.get("free", 0),
            "single_stage_capacity_transitions": shapes.get("single", 0),
        }
        for key, want in recomputed.items():
            if report.get(key) != want:
                err("SV007", "source:EMIT_REPORT[%s]" % key,
                    "report says %r, source recovers %r" % (report.get(key), want))

    return findings


def verify_model(name, backend="generated", trace=False, lanes=None):
    """Build one registered model on a codegen backend and verify its source.

    ``trace=True`` requests firing+stall tracing, so the verifier proves
    the TRF/TRS sites appear; otherwise it proves they are absent.
    """
    from repro.core.engine import EngineOptions
    from repro.processors.registry import build_processor

    option_kwargs = {"backend": backend}
    if trace:
        option_kwargs["trace"] = {"categories": ("firing", "stall"), "capacity": 64}
    if lanes is not None:
        option_kwargs["lanes"] = lanes
    processor = build_processor(name, engine_options=EngineOptions(**option_kwargs))
    return verify_engine(processor.engine, model=name)


def verify_backend(name, backend):
    """Coherence checks for the interpreted/compiled backends (SV1xx)."""
    from repro.processors.registry import build_processor

    processor = build_processor(name, backend=backend)
    engine = processor.engine
    net = engine.net
    findings = []
    if backend == "interpreted":
        from repro.core.scheduler import place_evaluation_order

        fresh = [place.name for place in place_evaluation_order(net)]
        cached = [place.name for place in engine.schedule.order]
        if cached != fresh:
            findings.append(finding(
                "SV101", name, "schedule:order",
                "cached schedule order %r disagrees with a fresh derivation %r"
                % (cached, fresh),
            ))
        for place in engine.schedule.order:
            for opclass in net.operation_classes:
                cached_names = [
                    t.name for t in engine.schedule.transitions_for(place, opclass)
                ]
                subnet = net.subnet_for(opclass)
                manual = sorted(
                    (
                        t for t in net.transitions
                        if t.source is place and t.subnet is subnet
                    ),
                    key=lambda t: t.priority,
                )
                if cached_names != [t.name for t in manual]:
                    findings.append(finding(
                        "SV101", name,
                        "schedule:place %r/%s" % (place.name, opclass),
                        "dispatch %r disagrees with a fresh search %r"
                        % (cached_names, [t.name for t in manual]),
                    ))
    elif backend == "compiled":
        _dispatch, _generators, occurrences = _expected_plan(net, engine.schedule)
        from repro.codegen.runtime import guard_plan
        from repro.compiled.plan import transition_capacity_shape

        emitted = [t for t in net.transitions if occurrences.get(t.name)]
        kinds = Counter(guard_plan(t)[0] for t in emitted)
        shapes = Counter(transition_capacity_shape(t)[0] for t in emitted)
        expected = {
            "transitions_compiled": len(emitted),
            "guard_free_transitions": kinds.get("none", 0),
            "issue_gated_transitions": kinds.get("issue", 0),
            "capacity_free_transitions": shapes.get("free", 0),
            "single_stage_capacity_transitions": shapes.get("single", 0),
            "places_compiled": len(engine.schedule.order),
            "dispatch_entries": len(engine.schedule.order) * len(net.operation_classes),
            "nonempty_dispatch_entries": sum(
                1
                for place in engine.schedule.order
                for opclass in net.operation_classes
                if engine.schedule.transitions_for(place, opclass)
            ),
        }
        summary = engine.compilation_summary()
        for key, want in expected.items():
            if summary.get(key) != want:
                findings.append(finding(
                    "SV102", name, "plan:%s" % key,
                    "plan summary says %r, reclassification derives %r"
                    % (summary.get(key), want),
                ))
    else:
        findings.extend(verify_model(name, backend=backend))
    return findings
