"""Baseline simulators the RCPN-generated simulators are compared against.

* :class:`FunctionalSimulator` — an instruction-set (functional) simulator;
  the correctness reference every cycle-accurate model is validated against.
* :class:`SimpleScalarLikeSimulator` — a faithful stand-in for
  SimpleScalar-ARM (``sim-outorder``): a generic windowed simulator with a
  fetch queue, register update unit, dependence vectors and an event queue,
  paying its full generic cost every cycle.  This is the comparator of the
  paper's Figures 10 and 11.
* :class:`InOrderPipelineSimulator` — an additional, stronger baseline: a
  hand-written simulator specialised for exactly one five-stage in-order
  core.
"""

from repro.baseline.functional import FunctionalSimulator, FunctionalStatistics
from repro.baseline.inorder import InOrderConfig, InOrderPipelineSimulator
from repro.baseline.simplescalar import SimpleScalarConfig, SimpleScalarLikeSimulator

__all__ = [
    "FunctionalSimulator",
    "FunctionalStatistics",
    "SimpleScalarConfig",
    "SimpleScalarLikeSimulator",
    "InOrderConfig",
    "InOrderPipelineSimulator",
]
