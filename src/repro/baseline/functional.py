"""Functional (instruction-set) simulator.

Executes instructions one at a time with no timing model.  The paper uses
instruction-set simulation as the "easy" end of the spectrum; here it serves
two purposes: it is the architectural-state reference the cycle-accurate
simulators are validated against, and it provides the instruction counts
used to compute CPI.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.encoding import decode
from repro.isa.semantics import CPUState, execute
from repro.memory.main_memory import MainMemory


@dataclass
class FunctionalStatistics:
    """Counters of a functional simulation run."""

    instructions: int = 0
    executed_by_class: Counter = field(default_factory=Counter)
    branches: int = 0
    taken_branches: int = 0
    memory_reads: int = 0
    memory_writes: int = 0
    condition_failures: int = 0
    syscalls: int = 0
    halted: bool = False


class FunctionalSimulator:
    """A straightforward fetch-decode-execute interpreter.

    The decode cache (keyed on the instruction word) mirrors what any
    production ISS does and keeps long kernel runs fast enough for tests.
    """

    def __init__(self, memory=None, use_decode_cache=True):
        self.memory = memory if memory is not None else MainMemory()
        self.state = CPUState()
        self.stats = FunctionalStatistics()
        self.use_decode_cache = use_decode_cache
        self._decode_cache = {}
        self.output = []

    def load_program(self, program):
        self.memory.load_program(program)
        self.state.pc = program.entry

    def _decode(self, word):
        if not self.use_decode_cache:
            return decode(word)
        instr = self._decode_cache.get(word)
        if instr is None:
            instr = decode(word)
            self._decode_cache[word] = instr
        return instr

    def _handle_syscall(self, number):
        """Tiny syscall layer: the benchmark kernels only need output hooks.

        ``swi #1`` records the value of ``r0`` (an integer "write"),
        ``swi #2`` records ``r0`` as a character code.  Anything else is
        counted but ignored, which matches the paper's note that the chosen
        benchmarks use "very few simple system calls (mainly for IO)".
        """
        self.stats.syscalls += 1
        if number == 1:
            self.output.append(self.state.regs[0])
        elif number == 2:
            self.output.append(chr(self.state.regs[0] & 0xFF))

    def step(self):
        """Execute a single instruction; returns the ExecutionResult."""
        address = self.state.pc
        word = self.memory.read_word(address)
        instr = self._decode(word)
        result = execute(instr, self.state, self.memory, address=address)

        self.stats.instructions += 1
        self.stats.executed_by_class[instr.operation_class] += 1
        if not result.executed:
            self.stats.condition_failures += 1
        if instr.is_branch() or result.branch_taken:
            self.stats.branches += 1
            if result.branch_taken:
                self.stats.taken_branches += 1
        self.stats.memory_reads += len(result.memory_reads)
        self.stats.memory_writes += len(result.memory_writes)
        if result.syscall is not None:
            self._handle_syscall(result.syscall)
        if result.halted:
            self.stats.halted = True
        return result

    def run(self, max_instructions=10_000_000):
        """Run until a HALT instruction or the instruction limit."""
        while not self.state.halted and self.stats.instructions < max_instructions:
            self.step()
        return self.stats

    def register(self, index):
        return self.state.regs[index]
