"""A hand-written, tightly coded in-order five-stage cycle-accurate simulator.

This is *not* the SimpleScalar stand-in (see
:mod:`repro.baseline.simplescalar` for that); it is an additional, stronger
baseline: the kind of special-purpose, hand-optimised simulator one would
write for exactly one five-stage core.  It is used for cross-validation and
as the upper bound of what a fixed hand-written simulator can achieve, while
still paying two characteristic fixed-simulator costs:

* the instruction word is re-decoded at every stage that needs instruction
  fields (no decoded-instruction cache) — exactly the repeated work the
  paper's decode-once instruction tokens avoid,
* every pipeline latch is double-buffered (master/slave) and copied at each
  cycle boundary, the cost the RCPN engine avoids for non-feedback places.

Timing rules (shared with the RCPN StrongARM model, see
``repro/processors/strongarm.py``):

* ALU/multiply results are available for forwarding once the instruction
  has completed execute; load results once it has completed memory access;
* multiplies occupy execute for 1-4 cycles (early termination);
* branches are predicted not-taken and resolved at issue/execute; taken
  branches squash the younger instructions in the fetch and decode latches;
* instruction and data caches add their miss latencies to fetch and memory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.isa.alu import multiply_early_termination_cycles
from repro.isa.encoding import decode
from repro.isa.instructions import (
    DataProcessing,
    DataOpcode,
    LoadStoreMultiple,
    Multiply,
)
from repro.isa.registers import PC
from repro.isa.semantics import CPUState, execute
from repro.memory.memory_system import MemorySystem, MemorySystemConfig
from repro.core.statistics import SimulationStatistics


@dataclass
class InOrderConfig:
    """Configuration of the fixed baseline simulator."""

    memory: MemorySystemConfig = field(default_factory=MemorySystemConfig)
    branch_flush_depth: int = 2  # fetch + decode latches squashed on taken branches
    max_cycles: int = 10_000_000


class _Latch(dict):
    """A pipeline latch: a dictionary with attribute-style access.

    Latches deliberately store the *raw instruction word*; downstream stages
    re-decode it, as fixed simulators that keep their pipeline registers
    close to the hardware encoding do.
    """

    __getattr__ = dict.__getitem__

    def copy(self):
        return _Latch(self)


class InOrderPipelineSimulator:
    """Hand-written cycle-accurate simulator of a five-stage StrongARM core."""

    #: Operation classes whose results only become available after the
    #: memory stage (loads and block loads).
    _MEMORY_CLASSES = ("mem", "memm")

    def __init__(self, config=None):
        self.config = config or InOrderConfig()
        self.memory = MemorySystem(self.config.memory)
        self.state = CPUState()
        self.stats = SimulationStatistics()
        self.reset()

    def reset(self):
        self.state = CPUState()
        self.stats = SimulationStatistics()
        self.fetch_pc = 0
        self.fetch_enabled = True
        self.halt_seen = False
        self.cycle = 0
        # Master latches (read side) and slave latches (write side); the
        # slave is copied into the master at every cycle boundary.
        self.latches = {"fd": None, "de": None, "em": None, "mw": None}
        self.next_latches = dict(self.latches)
        self.icache_busy = 0
        self.pending_fetch = None
        # Scoreboard: register index -> {"available": bool, "kind": opclass}
        self.scoreboard = {}
        self.flags_pending = None

    # -- program loading -----------------------------------------------------
    def load_program(self, program):
        self.memory.load_program(program)
        self.state.pc = program.entry
        self.fetch_pc = program.entry

    # -- hazard checks ---------------------------------------------------------
    def _sources_ready(self, instr):
        for reg in instr.source_registers():
            if reg == PC:
                continue
            entry = self.scoreboard.get(reg)
            if entry is not None and not entry["available"]:
                return False
        if (
            self._reads_flags(instr)
            and self.flags_pending is not None
            and not self.flags_pending["available"]
        ):
            return False
        return True

    def _destinations_free(self, instr):
        for reg in instr.destination_registers():
            if reg == PC:
                continue
            if reg in self.scoreboard:
                return False
        if self._writes_flags(instr) and self.flags_pending is not None:
            return False
        return True

    @staticmethod
    def _reads_flags(instr):
        from repro.isa.conditions import Condition

        if instr.cond != Condition.AL:
            return True
        if isinstance(instr, DataProcessing):
            return instr.opcode in (DataOpcode.ADC, DataOpcode.SBC, DataOpcode.RSC)
        return False

    @staticmethod
    def _writes_flags(instr):
        if isinstance(instr, DataProcessing):
            return instr.set_flags or not instr.opcode.writes_rd
        if isinstance(instr, Multiply):
            return instr.set_flags
        return False

    def _reserve_destinations(self, instr):
        for reg in instr.destination_registers():
            if reg == PC:
                continue
            self.scoreboard[reg] = {"available": False, "kind": instr.operation_class}
        if self._writes_flags(instr):
            self.flags_pending = {"available": False}

    def _mark_available(self, instr):
        for reg in instr.destination_registers():
            entry = self.scoreboard.get(reg)
            if entry is not None:
                entry["available"] = True
        if self._writes_flags(instr) and self.flags_pending is not None:
            self.flags_pending["available"] = True

    def _clear_destinations(self, instr):
        for reg in instr.destination_registers():
            self.scoreboard.pop(reg, None)
        if self._writes_flags(instr):
            self.flags_pending = None

    # -- per-stage behaviour -------------------------------------------------
    def _stage_writeback(self):
        latch = self.latches["mw"]
        if latch is None:
            return
        if latch["mem_remaining"] > 0:
            latch = latch.copy()
            latch["mem_remaining"] -= 1
            self.next_latches["mw"] = latch
            return
        instr = decode(latch["word"])  # fixed-simulator overhead: decode again
        self._mark_available(instr)
        self._clear_destinations(instr)
        self.stats.instructions += 1
        self.stats.retired_by_class[instr.operation_class] += 1
        if latch["is_halt"]:
            self.halt_seen = True
        self.next_latches["mw"] = None

    def _stage_memory(self):
        latch = self.latches["em"]
        if latch is None:
            return
        if latch["ex_remaining"] > 0:
            latch = latch.copy()
            latch["ex_remaining"] -= 1
            self.next_latches["em"] = latch
            return
        if self.next_latches["mw"] is not None:
            # Structural stall: the memory stage is still busy.
            self.next_latches["em"] = latch
            self.stats.stalls += 1
            return
        instr = decode(latch["word"])  # decoded yet again at this stage
        mem_remaining = 0
        if instr.is_memory_access():
            addresses = latch["mem_addresses"]
            is_write = bool(latch["mem_is_write"])
            latency = 0
            for address in addresses or (0,):
                latency += self.memory.data_delay(address, is_write=is_write)
            mem_remaining = max(0, latency - 1)
        else:
            # Non-memory results become visible to dependents after execute.
            self._mark_available(instr)
        latch = latch.copy()
        latch["mem_remaining"] = mem_remaining
        self.next_latches["mw"] = latch
        self.next_latches["em"] = None

    def _stage_execute(self):
        latch = self.latches["de"]
        if latch is None:
            return
        if self.next_latches["em"] is not None:
            self.next_latches["de"] = latch
            self.stats.stalls += 1
            return
        word, pc = latch["word"], latch["pc"]
        instr = decode(word)  # the issue stage decodes the latch contents
        if not self._sources_ready(instr) or not self._destinations_free(instr):
            self.next_latches["de"] = latch
            self.stats.stalls += 1
            return

        self._reserve_destinations(instr)
        result = execute(instr, self.state, self.memory, address=pc)

        ex_remaining = 0
        if isinstance(instr, Multiply):
            ex_remaining = multiply_early_termination_cycles(self.state.regs[instr.rs])
        if isinstance(instr, LoadStoreMultiple):
            ex_remaining = max(0, len(instr.register_list) - 1)

        execute_latch = _Latch(
            word=word,
            pc=pc,
            ex_remaining=ex_remaining,
            mem_remaining=0,
            mem_addresses=tuple(result.memory_reads) + tuple(result.memory_writes),
            mem_is_write=bool(result.memory_writes),
            is_halt=bool(result.halted),
        )
        self.next_latches["em"] = execute_latch
        self.next_latches["de"] = None

        if result.halted:
            self.fetch_enabled = False

        if result.branch_taken:
            # Not-taken prediction: squash the younger instruction sitting in
            # the fetch latch (handled by the decode stage seeing the
            # redirect flag), cancel any fetch in flight and restart fetching
            # from the branch target.
            self.pending_fetch = None
            self.icache_busy = 0
            self.fetch_pc = result.next_pc
            self._branch_redirect = True
        else:
            self._branch_redirect = False

    def _stage_decode(self):
        latch = self.latches["fd"]
        if latch is None:
            return
        if getattr(self, "_branch_redirect", False):
            # Squashed by a taken branch resolved this cycle.
            self.stats.squashed += 1
            self.next_latches["fd"] = None
            return
        if self.next_latches["de"] is not None:
            self.next_latches["fd"] = latch
            self.stats.stalls += 1
            return
        self.next_latches["de"] = latch
        self.next_latches["fd"] = None

    def _stage_fetch(self):
        if not self.fetch_enabled:
            return
        if self.icache_busy > 0:
            self.icache_busy -= 1
            if self.icache_busy > 0:
                return
        if self.pending_fetch is not None:
            # A previously started (multi-cycle) fetch completed: deliver it
            # as soon as the fetch latch is free.
            if self.next_latches["fd"] is None:
                self.next_latches["fd"] = self.pending_fetch
                self.pending_fetch = None
            return
        if self.next_latches["fd"] is not None or self._branch_redirect:
            return
        pc = self.fetch_pc
        word = self.memory.read_word(pc)
        latency = self.memory.instruction_delay(pc)
        latch = _Latch(word=word, pc=pc)
        self.fetch_pc = (pc + 4) & 0xFFFFFFFF
        if latency <= 1:
            self.next_latches["fd"] = latch
        else:
            self.icache_busy = latency - 1
            self.pending_fetch = latch

    # -- main loop -----------------------------------------------------------
    def step(self):
        self._branch_redirect = False
        self.next_latches = dict(self.latches)
        self._stage_writeback()
        self._stage_memory()
        self._stage_execute()
        self._stage_decode()
        self._stage_fetch()
        # Master/slave commit: copy every slave latch into its master.
        self.latches = dict(self.next_latches)
        self.cycle += 1
        self.stats.cycles = self.cycle

    def pipeline_empty(self):
        return all(latch is None for latch in self.latches.values()) and self.pending_fetch is None

    def run(self, max_cycles=None):
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        start = time.perf_counter()
        while self.cycle < limit:
            if self.halt_seen and self.pipeline_empty():
                self.stats.finished = True
                self.stats.finish_reason = "halt"
                break
            self.step()
        else:
            self.stats.finish_reason = "max_cycles"
        self.stats.wall_time_seconds += time.perf_counter() - start
        return self.stats

    # -- reporting -----------------------------------------------------------
    def register(self, index):
        return self.state.regs[index]

    def cache_statistics(self):
        return self.memory.statistics()
