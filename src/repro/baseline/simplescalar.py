"""A SimpleScalar-style fixed-architecture cycle-accurate simulator.

The paper's Figures 10 and 11 compare the generated RCPN simulators against
"SimpleScalarArm" — SimpleScalar's ``sim-outorder`` retargeted to ARM and
configured for the StrongARM.  ``sim-outorder`` is a *generic* simulator: it
models every processor through the same machinery — an instruction fetch
queue, a register update unit (RUU, the instruction window), a load/store
queue, creator/consumer dependence vectors and a writeback event queue —
and walks those fixed-size structures every cycle no matter how simple the
modeled core is.  That per-cycle generic overhead (plus re-decoding the
instruction at dispatch) is exactly what the paper's generated simulators
avoid, and it is why the paper observes an order-of-magnitude speed gap.

This module reproduces that structure faithfully (at reduced scale):

* ``ruu_commit``   — scan the window head and retire completed entries,
* ``ruu_writeback`` — drain the event queue, wake up dependents through the
  output-dependence lists,
* ``ruu_issue``    — scan the whole window, oldest first, for ready entries
  (in-order issue: the scan stops at the first not-ready entry),
* ``ruu_dispatch`` — pop the fetch queue, decode the raw word, execute
  functionally, build dependence vectors, allocate an RUU entry,
* ``ruu_fetch``    — fetch through the instruction cache into the fetch
  queue with a (static not-taken) branch predictor lookup.

Timing rules match the StrongARM model used elsewhere in this repository:
single issue, 1-cycle ALU, early-termination multiplier, data-cache latency
charged at issue of memory operations, taken branches squash the fetch
queue and restart fetching (about a two-cycle penalty).
"""

from __future__ import annotations

import time
from bisect import insort
from dataclasses import dataclass, field

from repro.core.statistics import SimulationStatistics
from repro.isa.alu import multiply_early_termination_cycles
from repro.isa.conditions import Condition
from repro.isa.encoding import decode
from repro.isa.instructions import (
    DataOpcode,
    DataProcessing,
    LoadStoreMultiple,
    Multiply,
)
from repro.isa.registers import NUM_REGISTERS, PC
from repro.isa.semantics import CPUState, execute
from repro.memory.branch_predictor import StaticNotTakenPredictor
from repro.memory.memory_system import MemorySystem, MemorySystemConfig

#: Pseudo register index used for the condition flags in dependence vectors.
FLAGS_REG = NUM_REGISTERS


@dataclass
class SimpleScalarConfig:
    """Fixed micro-architecture parameters (sim-outorder style).

    The defaults mirror the paper's setup: "we disabled all checkings and
    used simplest parameter values" — single issue, a small window, a small
    fetch queue.
    """

    memory: MemorySystemConfig = field(default_factory=MemorySystemConfig)
    ruu_size: int = 16
    ifq_size: int = 4
    issue_width: int = 1
    decode_width: int = 1
    commit_width: int = 2
    max_cycles: int = 10_000_000


class _RUUEntry:
    """One instruction window entry (SimpleScalar's ``struct RUU_station``)."""

    __slots__ = (
        "seq",
        "pc",
        "word",
        "opclass",
        "dispatched_cycle",
        "issued",
        "completed",
        "pending_inputs",
        "output_deps",
        "dest_regs",
        "exec_latency",
        "mem_addresses",
        "mem_is_write",
        "is_halt",
        "squashed",
    )

    def __init__(self, seq, pc, word, opclass, dest_regs, exec_latency, mem_addresses,
                 mem_is_write, is_halt):
        self.seq = seq
        self.pc = pc
        self.word = word
        self.opclass = opclass
        self.dispatched_cycle = 0
        self.issued = False
        self.completed = False
        self.pending_inputs = 0
        self.output_deps = []
        self.dest_regs = dest_regs
        self.exec_latency = exec_latency
        self.mem_addresses = mem_addresses
        self.mem_is_write = mem_is_write
        self.is_halt = is_halt
        self.squashed = False


class SimpleScalarLikeSimulator:
    """The generic windowed simulator playing SimpleScalar-ARM's role."""

    def __init__(self, config=None):
        self.config = config or SimpleScalarConfig()
        self.memory = MemorySystem(self.config.memory)
        self.predictor = StaticNotTakenPredictor()
        self.stats = SimulationStatistics()
        self.state = CPUState()
        self.reset()

    def reset(self):
        self.state = CPUState()
        self.stats = SimulationStatistics()
        self.cycle = 0
        self.seq = 0
        self.fetch_pc = 0
        self.fetch_enabled = True
        self.halt_committed = False
        self.icache_busy = 0
        self.fetch_stall = 0
        self.pending_fetch = None
        # Fixed-size structures walked every cycle.
        self.ifq = []
        self.ruu = [None] * self.config.ruu_size
        self.ruu_head = 0
        self.ruu_tail = 0
        self.ruu_count = 0
        self.event_queue = []  # sorted list of (complete_cycle, seq, entry)
        # Creator vector: architectural register -> producing RUU entry.
        self.create_vector = {}

    # -- program loading -----------------------------------------------------
    def load_program(self, program):
        self.memory.load_program(program)
        self.state.pc = program.entry
        self.fetch_pc = program.entry

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _reads_flags(instr):
        if instr.cond != Condition.AL:
            return True
        if isinstance(instr, DataProcessing):
            return instr.opcode in (DataOpcode.ADC, DataOpcode.SBC, DataOpcode.RSC)
        return False

    @staticmethod
    def _writes_flags(instr):
        if isinstance(instr, DataProcessing):
            return instr.set_flags or not instr.opcode.writes_rd
        if isinstance(instr, Multiply):
            return instr.set_flags
        return False

    def _source_regs(self, instr):
        regs = [r for r in instr.source_registers() if r != PC]
        if self._reads_flags(instr):
            regs.append(FLAGS_REG)
        return regs

    def _dest_regs(self, instr):
        regs = [r for r in instr.destination_registers() if r != PC]
        if self._writes_flags(instr):
            regs.append(FLAGS_REG)
        return regs

    # -- pipeline stages (sim-outorder main-loop order) ------------------------
    def _ruu_commit(self):
        committed = 0
        while committed < self.config.commit_width and self.ruu_count > 0:
            entry = self.ruu[self.ruu_head]
            if entry is None or not entry.completed:
                break
            self.ruu[self.ruu_head] = None
            self.ruu_head = (self.ruu_head + 1) % self.config.ruu_size
            self.ruu_count -= 1
            committed += 1
            if not entry.squashed:
                self.stats.instructions += 1
                self.stats.retired_by_class[entry.opclass] += 1
            for reg in entry.dest_regs:
                if self.create_vector.get(reg) is entry:
                    del self.create_vector[reg]
            if entry.is_halt:
                self.halt_committed = True

    def _ruu_writeback(self):
        while self.event_queue and self.event_queue[0][0] <= self.cycle:
            _, _, entry = self.event_queue.pop(0)
            entry.completed = True
            for dependent in entry.output_deps:
                dependent.pending_inputs -= 1

    def _ruu_issue(self):
        issued = 0
        index = self.ruu_head
        # Walk the whole window oldest-first, exactly like ruu_issue walks
        # the ready queue; the in-order-issue configuration stops the scan at
        # the first entry that cannot issue yet.
        for _ in range(self.ruu_count):
            entry = self.ruu[index]
            index = (index + 1) % self.config.ruu_size
            if entry is None:
                continue
            if entry.issued:
                continue
            if entry.pending_inputs > 0 or entry.dispatched_cycle >= self.cycle:
                break  # in-order issue: younger entries must wait
            entry.issued = True
            latency = entry.exec_latency
            if entry.mem_addresses:
                for address in entry.mem_addresses:
                    latency += self.memory.data_delay(address, is_write=entry.mem_is_write)
            insort(self.event_queue, (self.cycle + max(1, latency), entry.seq, entry))
            issued += 1
            if issued >= self.config.issue_width:
                break

    def _squash_ifq(self):
        self.stats.squashed += len(self.ifq)
        self.ifq = []
        self.pending_fetch = None
        self.icache_busy = 0

    def _ruu_dispatch(self):
        dispatched = 0
        while (
            dispatched < self.config.decode_width
            and self.ifq
            and self.ruu_count < self.config.ruu_size
            and not self.halt_committed
        ):
            pc, word = self.ifq.pop(0)
            instr = decode(word)  # the fixed simulator decodes at dispatch
            result = execute(instr, self.state, self.memory, address=pc)

            exec_latency = 1
            if isinstance(instr, Multiply):
                exec_latency = multiply_early_termination_cycles(self.state.regs[instr.rs])
            if isinstance(instr, LoadStoreMultiple):
                exec_latency = max(1, len(instr.register_list)) + 1
            elif instr.is_memory_access():
                # Address generation plus the separate memory pipeline stage;
                # the cache latency itself is added at issue time.
                exec_latency = 2

            entry = _RUUEntry(
                seq=self.seq,
                pc=pc,
                word=word,
                opclass=instr.operation_class,
                dest_regs=self._dest_regs(instr),
                exec_latency=exec_latency,
                mem_addresses=tuple(result.memory_reads) + tuple(result.memory_writes),
                mem_is_write=bool(result.memory_writes),
                is_halt=bool(result.halted),
            )
            entry.dispatched_cycle = self.cycle
            self.seq += 1

            # Input dependences through the creator vector.
            for reg in self._source_regs(instr):
                producer = self.create_vector.get(reg)
                if producer is not None and not producer.completed:
                    producer.output_deps.append(entry)
                    entry.pending_inputs += 1
            for reg in entry.dest_regs:
                self.create_vector[reg] = entry

            # Allocate in the window.
            self.ruu[self.ruu_tail] = entry
            self.ruu_tail = (self.ruu_tail + 1) % self.config.ruu_size
            self.ruu_count += 1
            dispatched += 1

            if result.halted:
                self.fetch_enabled = False
                self._squash_ifq()
            elif result.branch_taken:
                # Static not-taken prediction: the fetch queue holds wrong-path
                # instructions; squash and redirect.
                if instr.is_branch():
                    self.predictor.record(pc, True)
                self._squash_ifq()
                self.fetch_pc = result.next_pc
                # Redirect bubbles: the front end restarts two cycles later
                # (fetch and decode of the wrong path are lost).
                self.fetch_stall = 2
                break
            elif instr.is_branch():
                self.predictor.record(pc, False)

    def _ruu_fetch(self):
        if not self.fetch_enabled:
            return
        if self.fetch_stall > 0:
            self.fetch_stall -= 1
            return
        if self.icache_busy > 0:
            self.icache_busy -= 1
            if self.icache_busy > 0:
                return
        if self.pending_fetch is not None:
            if len(self.ifq) < self.config.ifq_size:
                self.ifq.append(self.pending_fetch)
                self.pending_fetch = None
            return
        if len(self.ifq) >= self.config.ifq_size:
            return
        pc = self.fetch_pc
        word = self.memory.read_word(pc)
        latency = self.memory.instruction_delay(pc)
        self.fetch_pc = (pc + 4) & 0xFFFFFFFF
        if latency <= 1:
            self.ifq.append((pc, word))
        else:
            self.icache_busy = latency - 1
            self.pending_fetch = (pc, word)

    # -- main loop -----------------------------------------------------------
    def step(self):
        self._ruu_commit()
        self._ruu_writeback()
        self._ruu_issue()
        self._ruu_dispatch()
        self._ruu_fetch()
        self.cycle += 1
        self.stats.cycles = self.cycle

    def machine_empty(self):
        return self.ruu_count == 0 and not self.ifq and self.pending_fetch is None

    def run(self, max_cycles=None):
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        start = time.perf_counter()
        while self.cycle < limit:
            if self.halt_committed and self.machine_empty():
                self.stats.finished = True
                self.stats.finish_reason = "halt"
                break
            self.step()
        else:
            self.stats.finish_reason = "max_cycles"
        self.stats.wall_time_seconds += time.perf_counter() - start
        return self.stats

    # -- reporting -----------------------------------------------------------
    def register(self, index):
        return self.state.regs[index]

    def cache_statistics(self):
        return self.memory.statistics()
