"""Lane-batched multi-simulation (``EngineOptions(backend="batched")``).

Campaigns run thousands of cells that share a spec fingerprint — their
per-cycle steppers are literally the same emitted code.  This package
steps up to ``lanes`` such simulations in *lockstep*: the codegen emitter
(:mod:`repro.codegen.emit`) wraps its straight-line step body in a lane
loop (``make_step_batched``), every lane keeps private places, statistics
and workload, and lanes that halt early are masked out of the active set
until the batch drains.  Per-lane statistics are bit-identical to the
scalar backends; only host throughput changes (dispatch amortisation, not
SIMD — see README "Batched execution").
"""

from repro.batched.engine import LaneBatch, LaneEngine

__all__ = ["LaneBatch", "LaneEngine"]
