"""The lane-batched cycle-accurate engine: N same-spec runs in lockstep.

A :class:`LaneEngine` is one *lane*: structurally a
:class:`~repro.codegen.GeneratedEngine` (same module cache, same runtime
binding, same reservation pooling) except that its emitted module defines
``make_step_batched(rts)`` — the straight-line step body inside a lane
loop — instead of a scalar ``step`` function, so a lane cannot step
itself.  A :class:`LaneBatch` collects lanes that share one emitted
module, binds all their runtimes at once and drives the lockstep loop:

* one host dispatch of ``step(start, stride, active, done)`` advances
  every active lane by up to :attr:`LaneBatch.MAX_STRIDE` cycles (the
  per-cycle Python call frames and counter write-backs the scalar run
  loop pays — ``engine.step()``, ``engine.finished()``, the cycle/idle
  attribute stores — are amortised over the stride, which is where the
  batched-over-generated throughput win comes from in pure Python);
* per-lane cycle/idle bookkeeping and halt-drain detection are inlined in
  the emitted lane loop; a drained lane lands in ``done`` and is masked
  out of ``active``;
* run budgets (``max_cycles`` / ``max_instructions``) and the stall
  limit are enforced by the driver with hoisted checks — the cycle limit
  only when the batch clock reaches the nearest limit, the stall check on
  a coarse period — preserving the scalar run loop's precedence order
  (halt before max_cycles before max_instructions before deadlock).

Statistics are bit-identical per lane to the interpreted backend — the
backend-equivalence matrix and the lane-mechanics tests enforce this —
except ``wall_time_seconds``, which is the batch wall time attributed to
lanes proportionally to the cycles each lane was stepped.
"""

from __future__ import annotations

import time

from repro.codegen.engine import GeneratedEngine
from repro.core.exceptions import SimulationError


class LaneEngine(GeneratedEngine):
    """One lane of a batched simulation (``backend="batched"``).

    Construction obtains the *batched* emitted module for this net (the
    codegen cache key folds in the emission mode and ``options.lanes``)
    and keeps the runtime binding dict; stepping happens through a
    :class:`LaneBatch`.  ``run()`` drives a single-lane batch, which keeps
    the engine drop-in compatible with the :class:`~repro.describe.
    substrate.Processor` facade and the campaign's ``execute_run`` path.
    """

    backend = "batched"

    def _bind_module(self, module, runtime):
        self._runtime = runtime
        self._solo_batch = None

    def step(self):
        raise SimulationError(
            "batched lanes are stepped by their LaneBatch, not individually; "
            "use LaneEngine.run() or LaneBatch.run()"
        )

    def run(self, max_cycles=None, max_instructions=None):
        """Run this lane alone (a batch of one), returning its statistics."""
        if self._solo_batch is None:
            self._solo_batch = LaneBatch([self])
        self._solo_batch.run(
            max_cycles=[max_cycles], max_instructions=[max_instructions]
        )
        return self.stats


def _per_lane(value, count):
    """Normalise a budget argument to one value per lane."""
    if value is None or isinstance(value, int):
        return [value] * count
    values = list(value)
    if len(values) != count:
        raise ValueError(
            "budget list has %d entries for %d lanes" % (len(values), count)
        )
    return values


class LaneBatch:
    """A set of :class:`LaneEngine` lanes advancing in lockstep.

    All lanes must run the same emitted module (same structure digest and
    codegen key — i.e. the same spec fingerprint and emit-relevant engine
    options) and stand at the same cycle; the batch width is capped by the
    module's ``LANES`` constant (= ``EngineOptions.lanes`` at emission).
    """

    def __init__(self, engines):
        engines = list(engines)
        if not engines:
            raise ValueError("a LaneBatch needs at least one lane")
        for engine in engines:
            if not isinstance(engine, LaneEngine):
                raise TypeError(
                    "LaneBatch lanes must be LaneEngine instances "
                    "(backend='batched'), got %r" % type(engine).__name__
                )
        module = engines[0].module
        for engine in engines[1:]:
            if (
                engine.module.STRUCTURE_DIGEST != module.STRUCTURE_DIGEST
                or engine.module.CODEGEN_KEY != module.CODEGEN_KEY
            ):
                raise ValueError(
                    "lanes of one batch must share an emitted module "
                    "(same spec fingerprint and emit-relevant options); "
                    "got %r vs %r" % (module.MODEL, engine.module.MODEL)
                )
        if len(engines) > module.LANES:
            raise ValueError(
                "batch of %d lanes exceeds the module's lane budget of %d "
                "(EngineOptions.lanes at emission time)"
                % (len(engines), module.LANES)
            )
        self.engines = engines
        self.module = module
        self._step = module.make_step_batched(
            [engine._runtime for engine in engines]
        )

    #: Upper bound on how many cycles one dispatch advances each lane.
    #: Large enough to amortise the per-lane binding unpack, small enough
    #: that limit/stall checks stay timely (they run between strides).
    MAX_STRIDE = 64

    def __len__(self):
        return len(self.engines)

    def run(self, max_cycles=None, max_instructions=None):
        """Run every lane to its own end; returns the per-lane statistics.

        ``max_cycles``/``max_instructions`` are a single value applied to
        every lane or one value per lane.  Each check mirrors the scalar
        run loop exactly, per lane: a lane leaves the active set when it
        halts and drains, hits its cycle or instruction budget, and a lane
        idle for ``stall_limit`` consecutive cycles raises
        :class:`~repro.core.exceptions.SimulationError` for the whole
        batch (a deadlocked model is a modeling bug, not a result).
        """
        engines = self.engines
        count = len(engines)
        max_cycles = _per_lane(max_cycles, count)
        max_instructions = _per_lane(max_instructions, count)
        limits = [
            budget if budget is not None else engines[index].options.max_cycles
            for index, budget in enumerate(max_cycles)
        ]

        start = time.perf_counter()
        initial_cycles = [engine.cycle for engine in engines]
        active = []
        done = []
        for index, engine in enumerate(engines):
            # Entry checks in the scalar run loop's precedence order.
            if engine.finished():
                engine.stats.finished = True
                engine.stats.finish_reason = engine.halt_reason or "halt"
            elif engine.cycle >= limits[index]:
                engine.stats.finish_reason = "max_cycles"
            elif (
                max_instructions[index] is not None
                and engine.stats.instructions >= max_instructions[index]
            ):
                engine.stats.finish_reason = "max_instructions"
            else:
                active.append(index)

        start_cycles = {engines[index].cycle for index in active}
        if len(start_cycles) > 1:
            raise SimulationError(
                "lanes of one batch must stand at the same cycle to run in "
                "lockstep (got cycles %s); reset the lanes before re-running"
                % sorted(start_cycles)
            )
        start_cycle = start_cycles.pop() if start_cycles else engines[0].cycle

        # An instruction budget must be enforced at cycle granularity (the
        # scalar loop checks it between cycles), so such batches advance
        # one cycle per dispatch; everything else amortises the per-lane
        # dispatch over a stride of cycles.
        stride_cap = (
            1
            if any(budget is not None for budget in max_instructions)
            else self.MAX_STRIDE
        )
        stall_limits = [engine.options.stall_limit for engine in engines]
        # The emitted lane loop maintains per-lane idle counters; polling
        # them every cycle would re-introduce per-lane-cycle driver work,
        # so deadlocks are detected on a coarse period instead (within
        # [stall_limit, stall_limit + period + stride) idle cycles).
        stall_period = max(1, min(min(stall_limits), 1024))
        next_stall_check = start_cycle
        step = self._step
        cycle = start_cycle
        next_limit = min((limits[index] for index in active), default=0)

        while active:
            if done:
                # Lanes whose pipeline drained after a halt request during
                # the previous cycle (checked first, like the scalar loop).
                retired = set(done)
                for index in done:
                    engine = engines[index]
                    engine.stats.finished = True
                    engine.stats.finish_reason = engine.halt_reason or "halt"
                del done[:]
                active = [index for index in active if index not in retired]
                if not active:
                    break
                next_limit = min(limits[index] for index in active)
            if cycle >= next_limit:
                survivors = []
                for index in active:
                    if cycle >= limits[index]:
                        engines[index].stats.finish_reason = "max_cycles"
                    else:
                        survivors.append(index)
                active = survivors
                if not active:
                    break
                next_limit = min(limits[index] for index in active)
            if stride_cap == 1:
                survivors = []
                for index in active:
                    budget = max_instructions[index]
                    if (
                        budget is not None
                        and engines[index].stats.instructions >= budget
                    ):
                        engines[index].stats.finish_reason = "max_instructions"
                    else:
                        survivors.append(index)
                if len(survivors) != len(active):
                    active = survivors
                    if not active:
                        break
                    next_limit = min(limits[index] for index in active)
            if cycle >= next_stall_check:
                for index in active:
                    engine = engines[index]
                    if engine._idle_cycles >= stall_limits[index]:
                        raise SimulationError(
                            "lane %d (%s): no transition fired for %d "
                            "consecutive cycles at cycle %d; the model is "
                            "deadlocked"
                            % (
                                index,
                                engine.net.name,
                                engine._idle_cycles,
                                engine.cycle,
                            )
                        )
                next_stall_check = cycle + stall_period
            stride = min(stride_cap, next_limit - cycle)
            step(cycle, stride, active, done)
            cycle += stride

        wall = time.perf_counter() - start
        stepped = [
            engine.cycle - before
            for engine, before in zip(engines, initial_cycles)
        ]
        total_stepped = sum(stepped)
        for engine, lane_cycles in zip(engines, stepped):
            if total_stepped:
                engine.stats.wall_time_seconds += wall * lane_cycles / total_stepped
            else:
                engine.stats.wall_time_seconds += wall / count
            if engine.options.collect_utilization:
                engine.stats.stage_occupancy = {
                    name: (
                        stage.occupancy_accumulator / engine.cycle
                        if engine.cycle
                        else 0.0
                    )
                    for name, stage in engine.net.stages.items()
                }
        return [engine.stats for engine in engines]
