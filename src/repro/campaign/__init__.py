"""Parallel, content-addressed simulation campaigns.

Where :mod:`repro.describe` makes processor *models* declarative,
this package makes *experiments* declarative: a
:class:`CampaignSpec` describes a grid of runs — processors × workloads ×
scales × engine variants × repeats — which the planner expands into
content-fingerprinted :class:`RunSpec`s, the runner executes on a
``multiprocessing`` worker pool, and the :class:`ResultStore` persists as
sharded JSON lines keyed by fingerprint.  Re-running a campaign skips
every run the store already holds, so campaigns are incremental and
resumable, and an aggregation API (:mod:`repro.campaign.aggregate`) turns
stored results into the paper's tables (CPI, per-level cache miss rates,
throughput, compiled-over-interpreted speedup) plus CSV/JSON exports.

The layer is fault-tolerant end to end: store appends are locked and
fsync'd, corrupt lines are quarantined instead of raised, failing runs
are retried with backoff and persist as ``"failed"`` records when their
budget runs out, and ``compact``/``fsck`` keep long-lived stores healthy.

The CLI mirrors the API::

    python -m repro.campaign run --processors all --workloads crc,compress \\
        --engines interpreted,compiled --store campaign-store --max-workers 4
    python -m repro.campaign status --store campaign-store
    python -m repro.campaign report --store campaign-store --csv results.csv
    python -m repro.campaign compact --store campaign-store
    python -m repro.campaign fsck --store campaign-store
"""

from repro.campaign.aggregate import (
    cache_table,
    cpi_table,
    failure_rows,
    group_results,
    render,
    result_rows,
    speedup_table,
    summarize,
    throughput_table,
    to_csv,
    to_json,
)
from repro.campaign.planner import (
    CampaignPlan,
    campaign_processors,
    plan_campaign,
)
from repro.campaign.runner import (
    CampaignReport,
    build_run_processor,
    execute_batch,
    execute_run,
    run_campaign,
    run_single,
)
from repro.campaign.spec import (
    ALL,
    CampaignError,
    CampaignSpec,
    EngineVariant,
    RunSpec,
    engine_variant,
)
from repro.campaign.store import (
    CompactionReport,
    QuarantinedLine,
    ResultStore,
    RunResult,
    shard_index,
)

__all__ = [
    "ALL",
    "CampaignError",
    "CampaignPlan",
    "CampaignReport",
    "CampaignSpec",
    "CompactionReport",
    "EngineVariant",
    "QuarantinedLine",
    "ResultStore",
    "RunResult",
    "RunSpec",
    "build_run_processor",
    "cache_table",
    "campaign_processors",
    "cpi_table",
    "engine_variant",
    "execute_batch",
    "execute_run",
    "failure_rows",
    "group_results",
    "plan_campaign",
    "render",
    "result_rows",
    "run_campaign",
    "run_single",
    "shard_index",
    "speedup_table",
    "summarize",
    "throughput_table",
    "to_csv",
    "to_json",
]
