"""Parallel, content-addressed simulation campaigns.

Where :mod:`repro.describe` makes processor *models* declarative,
this package makes *experiments* declarative: a
:class:`CampaignSpec` describes a grid of runs — processors × workloads ×
scales × engine variants × repeats — which the planner expands into
content-fingerprinted :class:`RunSpec`s, the runner executes on a
``multiprocessing`` worker pool, and the :class:`ResultStore` persists as
JSON lines keyed by fingerprint.  Re-running a campaign skips every run
the store already holds, so campaigns are incremental and resumable, and
an aggregation API (:mod:`repro.campaign.aggregate`) turns stored results
into the paper's tables (CPI, per-level cache miss rates, throughput,
compiled-over-interpreted speedup) plus CSV/JSON exports.

The CLI mirrors the API::

    python -m repro.campaign run --processors all --workloads crc,compress \\
        --engines interpreted,compiled --store campaign-store --max-workers 4
    python -m repro.campaign status --store campaign-store
    python -m repro.campaign report --store campaign-store --csv results.csv
"""

from repro.campaign.aggregate import (
    cache_table,
    cpi_table,
    group_results,
    render,
    result_rows,
    speedup_table,
    summarize,
    throughput_table,
    to_csv,
    to_json,
)
from repro.campaign.planner import (
    CampaignPlan,
    campaign_processors,
    plan_campaign,
)
from repro.campaign.runner import (
    CampaignReport,
    build_run_processor,
    execute_batch,
    execute_run,
    run_campaign,
    run_single,
)
from repro.campaign.spec import (
    ALL,
    CampaignError,
    CampaignSpec,
    EngineVariant,
    RunSpec,
    engine_variant,
)
from repro.campaign.store import ResultStore, RunResult

__all__ = [
    "ALL",
    "CampaignError",
    "CampaignPlan",
    "CampaignReport",
    "CampaignSpec",
    "EngineVariant",
    "ResultStore",
    "RunResult",
    "RunSpec",
    "build_run_processor",
    "cache_table",
    "campaign_processors",
    "cpi_table",
    "engine_variant",
    "execute_batch",
    "execute_run",
    "group_results",
    "plan_campaign",
    "render",
    "result_rows",
    "run_campaign",
    "run_single",
    "speedup_table",
    "summarize",
    "throughput_table",
    "to_csv",
    "to_json",
]
