"""Aggregation over campaign results: grouping, tables and export.

Results come in as :class:`~repro.campaign.store.RunResult`s (from a
:class:`~repro.campaign.runner.CampaignReport` or straight from a
:class:`~repro.campaign.store.ResultStore`); this module turns them into
the shapes the paper's figures need — flat rows, CPI tables, per-level
cache/miss-rate tables (:func:`cache_table`, the Figure 12 shape), speedup
and rows-per-host-second throughput tables comparing engine variants —
and exports them as CSV or JSON.
Rendering goes through :func:`repro.analysis.report.format_table` so
campaign reports look like the rest of the benchmark output.
"""

from __future__ import annotations

import csv
import json

from repro.analysis.report import format_table


def _as_results(results, ok_only=False):
    """Accept a result iterable, a CampaignReport or a ResultStore.

    With ``ok_only`` the ``"failed"`` store records are dropped — the
    simulated-quantity tables must never mix failure rows (zero cycles,
    zero instructions) into real groups.
    """
    if hasattr(results, "results"):
        results = results.results
    if callable(results):  # ResultStore.results is a method
        results = results()
    results = list(results)
    if ok_only:
        results = [result for result in results if result.ok]
    return results


def result_rows(results):
    """One flat dictionary per result — the canonical tabular form.

    Failure records are included (``kind`` column ``"failed"``, with the
    error summary) so CSV exports carry the full store contents; the
    aggregation tables below filter them out.
    """
    rows = []
    for result in _as_results(results):
        rows.append(
            {
                "processor": result.processor,
                "workload": result.workload,
                "scale": result.scale,
                "engine": result.engine,
                "backend": result.backend,
                "repeat": result.repeat,
                "kind": result.kind,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "cpi": result.cpi,
                "kcycles_per_sec": result.cycles_per_second / 1e3,
                "wall_seconds": result.wall_seconds,
                "final_r0": result.final_r0,
                "finish_reason": result.finish_reason,
                "error": result.error,
                "cached": result.cached,
                "fingerprint": result.fingerprint,
            }
        )
    return rows


def failure_rows(results):
    """One row per ``"failed"`` record: what failed, how often, and why."""
    rows = []
    for result in _as_results(results):
        if result.ok:
            continue
        rows.append(
            {
                "run_id": result.run_id,
                "processor": result.processor,
                "workload": result.workload,
                "scale": result.scale,
                "engine": result.engine,
                "attempts": result.attempts,
                "error": result.error,
            }
        )
    return rows


def group_results(results, by=("processor", "workload", "scale", "engine")):
    """Group successful results by the named attributes; ``{key_tuple: [results]}``."""
    groups = {}
    for result in _as_results(results, ok_only=True):
        key = tuple(getattr(result, attribute) for attribute in by)
        groups.setdefault(key, []).append(result)
    return groups


def summarize(results, by=("processor", "workload", "scale", "engine")):
    """Aggregate repeats: one row per group with best throughput and mean wall.

    With the default grouping, members of one group differ only in their
    repeat index, so simulated quantities (cycles, instructions, CPI) are
    identical across the group by construction — the summary asserts that —
    while wall-clock quantities are reduced (best throughput, mean wall
    time).  A custom ``by`` that merges distinct simulations (e.g. dropping
    ``"scale"``) trips the same assertion.
    """
    rows = []
    for key, members in group_results(results, by=by).items():
        cycles = {member.cycles for member in members}
        instructions = {member.instructions for member in members}
        if len(cycles) != 1 or len(instructions) != 1:
            raise ValueError(
                "non-deterministic group %r: cycles=%s instructions=%s"
                % (key, sorted(cycles), sorted(instructions))
            )
        best = max(members, key=lambda member: member.cycles_per_second)
        row = dict(zip(by, key))
        row.update(
            {
                "runs": len(members),
                "cycles": best.cycles,
                "instructions": best.instructions,
                "cpi": best.cpi,
                "best_kcycles_per_sec": best.cycles_per_second / 1e3,
                "mean_wall_seconds": sum(m.wall_seconds for m in members) / len(members),
            }
        )
        rows.append(row)
    return rows


def cpi_table(results):
    """CPI per (processor, workload, scale, engine) — the Figure 11 shape."""
    return [
        {
            "processor": row["processor"],
            "workload": row["workload"],
            "scale": row["scale"],
            "engine": row["engine"],
            "cycles": row["cycles"],
            "instructions": row["instructions"],
            "cpi": row["cpi"],
        }
        for row in summarize(results)
    ]


def cache_table(results, by=("processor", "workload", "scale", "engine")):
    """Per-level cache behaviour per group — the Figure 12 shape.

    One row per group with CPI, instruction/data miss rates, data-side
    miss-penalty cycles and (when the model has one) the L2 hit rate.
    Results recorded before the ``memory`` field existed carry no cache
    statistics and are skipped.  Like :func:`summarize`, simulated
    quantities must agree across a group's repeats — cache counters are
    part of the simulation, not of the host — and disagreement raises.
    """
    rows = []
    for key, members in group_results(results, by=by).items():
        members = [member for member in members if member.memory]
        if not members:
            continue
        memories = [member.memory for member in members]
        if any(memory != memories[0] for memory in memories[1:]):
            raise ValueError("non-deterministic cache statistics in group %r" % (key,))
        memory = memories[0]
        member = members[0]
        row = dict(zip(by, key))
        row.update(
            {
                "cpi": member.cpi,
                "icache_miss_rate": memory["icache"]["miss_rate"],
                "dcache_miss_rate": memory["dcache"]["miss_rate"],
                "dcache_misses": memory["dcache"]["misses"],
                "dcache_miss_cycles": memory["dcache"]["miss_cycles"],
                "l2_hit_rate": memory["l2"]["hit_rate"] if memory.get("l2") else None,
            }
        )
        rows.append(row)
    return rows


def speedup_table(results, baseline="interpreted", against="compiled"):
    """Throughput of one engine variant over another, per (processor, workload).

    The two variants must have simulated bit-identical cycles — that is the
    compiled-backend contract — and the table enforces it.
    """
    groups = group_results(results, by=("processor", "workload", "scale"))
    rows = []
    for (processor, workload, scale), members in groups.items():
        by_engine = {}
        for member in members:
            best = by_engine.get(member.engine)
            if best is None or member.cycles_per_second > best.cycles_per_second:
                by_engine[member.engine] = member
        if baseline not in by_engine or against not in by_engine:
            continue
        base, fast = by_engine[baseline], by_engine[against]
        if base.cycles != fast.cycles:
            raise ValueError(
                "engine variants %r and %r disagree on simulated cycles for "
                "%s/%s@%d (%d vs %d)"
                % (baseline, against, processor, workload, scale, base.cycles, fast.cycles)
            )
        rows.append(
            {
                "processor": processor,
                "workload": workload,
                "scale": scale,
                "%s_kc_per_sec" % baseline: base.cycles_per_second / 1e3,
                "%s_kc_per_sec" % against: fast.cycles_per_second / 1e3,
                "speedup": (
                    fast.cycles_per_second / base.cycles_per_second
                    if base.cycles_per_second
                    else 0.0
                ),
            }
        )
    return rows


def throughput_table(results, baseline="generated", against="batched"):
    """Rows per host second of one engine variant over another.

    A *row* is one completed simulation run; this is the campaign-level
    throughput measure the batched backend exists to improve (many lockstep
    lanes per host dispatch), as opposed to :func:`speedup_table`'s
    per-simulation cycles-per-second.  Per (processor, workload, scale) the
    wall seconds of each variant's runs are summed over repeats, and the
    two variants must have simulated bit-identical cycles — batching never
    changes results, only host throughput.
    """
    groups = group_results(results, by=("processor", "workload", "scale"))
    rows = []
    for (processor, workload, scale), members in sorted(groups.items()):
        walls, counts, cycles = {}, {}, {}
        for member in members:
            if member.engine not in (baseline, against):
                continue
            walls[member.engine] = walls.get(member.engine, 0.0) + member.wall_seconds
            counts[member.engine] = counts.get(member.engine, 0) + 1
            cycles.setdefault(member.engine, set()).add(member.cycles)
        if baseline not in walls or against not in walls:
            continue
        if cycles[baseline] != cycles[against]:
            raise ValueError(
                "engine variants %r and %r disagree on simulated cycles for "
                "%s/%s@%d (%s vs %s)"
                % (
                    baseline,
                    against,
                    processor,
                    workload,
                    scale,
                    sorted(cycles[baseline]),
                    sorted(cycles[against]),
                )
            )
        # Sub-tick wall times (coarse clocks, mocked results) degrade to a
        # throughput of 0.0 rather than inf so reports and JSON exports
        # stay finite.
        base_rps = counts[baseline] / walls[baseline] if walls[baseline] > 0 else 0.0
        fast_rps = counts[against] / walls[against] if walls[against] > 0 else 0.0
        rows.append(
            {
                "processor": processor,
                "workload": workload,
                "scale": scale,
                "%s_rows_per_sec" % baseline: base_rps,
                "%s_rows_per_sec" % against: fast_rps,
                "throughput_ratio": (
                    fast_rps / base_rps if base_rps else 0.0
                ),
            }
        )
    return rows


def render(rows, columns=None):
    """Rows as an aligned plain-text table (the benchmark-harness look)."""
    return format_table(rows, columns=columns)


def to_csv(results, path, columns=None):
    """Write the flat result rows as CSV; returns the row count."""
    rows = _as_results(results)
    if not rows:
        raise ValueError("no results to export")
    if not isinstance(rows[0], dict):
        rows = result_rows(rows)
    columns = columns or list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def to_json(results, path=None):
    """Results as a JSON document (full per-run records); optionally written."""
    payload = [result.to_json_dict() for result in _as_results(results)]
    text = json.dumps(payload, sort_keys=True, indent=2)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text
