"""Command-line interface: ``python -m repro.campaign run|status|report|compact|fsck``.

``run`` executes a campaign (grid flags or a ``--spec`` JSON file) against
a result store, ``status`` reports how much of a campaign the store
already holds, and ``report`` renders the aggregation tables (and exports
CSV/JSON) from a store.  Every command is incremental by construction:
pointing ``run`` at yesterday's store re-executes only the fingerprints
that are missing or previously failed.

``compact`` rewrites a store into the clean sharded layout (migrating the
legacy single-file layout, dropping duplicate-fingerprint lines and
quarantined garbage atomically), and ``fsck`` reports store health —
layout, record counts, failure rows, and any corrupt lines the tolerant
loader quarantined (exit 0 when clean, 2 when quarantined lines exist).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.campaign import aggregate
from repro.campaign.planner import plan_campaign
from repro.campaign.runner import metrics_path, run_campaign
from repro.campaign.spec import ALL, CampaignError, CampaignSpec
from repro.campaign.store import ResultStore
from repro.observe.metrics import read_metrics_json, render_metrics, snapshot_value, write_metrics_json


def _split(value):
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _grid_arguments(parser):
    parser.add_argument("--name", default="campaign", help="campaign name")
    parser.add_argument(
        "--spec",
        help="JSON campaign file (CampaignSpec.to_dict shape); overrides the grid flags",
    )
    parser.add_argument(
        "--processors",
        default=ALL,
        help='comma-separated registry names, or "all" (default)',
    )
    parser.add_argument(
        "--workloads",
        default=ALL,
        help='comma-separated kernel names, or "all" (default)',
    )
    parser.add_argument("--scales", default="1", help="comma-separated scale factors")
    parser.add_argument(
        "--engines",
        default="interpreted,compiled",
        help="comma-separated engine backends "
        "(interpreted, compiled, generated, batched)",
    )
    parser.add_argument("--repeats", type=int, default=1, help="runs per grid point")
    parser.add_argument("--max-cycles", type=int, default=None, help="per-run cycle budget")
    parser.add_argument(
        "--max-instructions", type=int, default=None, help="per-run instruction budget"
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        help="per-run retry budget before a run is recorded as failed",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        help="base seconds between retry rounds (doubles each round)",
    )


def _scales(value):
    scales = []
    for part in _split(value):
        try:
            scales.append(int(part))
        except ValueError:
            raise CampaignError(
                "bad --scales entry %r (need a comma-separated list of "
                "positive integers, e.g. --scales 1,4)" % part
            ) from None
    return tuple(scales)


def _spec_from_args(args):
    if args.spec:
        try:
            with open(args.spec, encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise CampaignError("cannot read --spec file: %s" % error) from None
        except json.JSONDecodeError as error:
            raise CampaignError(
                "--spec file %s is not valid JSON: %s" % (args.spec, error)
            ) from None
        spec = CampaignSpec.from_dict(data)
    else:
        spec = CampaignSpec(
            name=args.name,
            processors=_split(args.processors),
            workloads=_split(args.workloads),
            scales=_scales(args.scales),
            engines=_split(args.engines),
            repeats=args.repeats,
            max_cycles=args.max_cycles,
            max_instructions=args.max_instructions,
            max_retries=args.max_retries,
            retry_backoff_seconds=args.retry_backoff,
        )
        spec.validate()
    # Resolve registry names now, while we are still parsing arguments:
    # a typo in --processors/--workloads (or in a spec file) dies here
    # with the registry's did-you-mean suggestions instead of surfacing
    # later from a planner or worker stack.
    from repro.campaign.planner import resolve_processors, resolve_workloads

    resolve_processors(spec)
    resolve_workloads(spec)
    return spec


def _print_summary(out, report):
    summary = report.summary()
    out.write(
        "campaign %(campaign)r: %(planned)d planned, %(executed)d executed, "
        "%(cached)d from store, %(skipped_pairs)d pairs skipped "
        "(%(wall_seconds).2fs)\n" % summary
    )
    if report.store_path:
        out.write("store: %s\n" % report.store_path)
    out.write(
        "store cache: %d hit(s), %d miss(es), %.2fs of simulation wall time "
        "served from the store\n"
        % (report.cached, report.executed, report.saved_wall_seconds)
    )


def _command_run(args, out):
    spec = _spec_from_args(args)

    def progress(result):
        if not result.ok:
            out.write(
                "  [FAILED after %d attempt(s)] %s: %s\n"
                % (result.attempts, result.run_id, result.error)
            )
            out.flush()
            return
        origin = "store" if result.cached else "pid %d" % result.worker_pid
        out.write(
            "  [%s] %s: %d cycles, CPI %.3f\n"
            % (origin, result.run_id, result.cycles, result.cpi)
        )
        out.flush()

    report = run_campaign(
        spec,
        store=args.store,
        max_workers=args.max_workers,
        progress=progress if args.verbose else None,
        keep_going=args.keep_going,
    )
    _print_summary(out, report)
    out.write("\n" + aggregate.render(aggregate.summarize(report)) + "\n")
    if args.expect_all_cached and report.executed:
        out.write(
            "ERROR: --expect-all-cached, but %d run(s) executed\n" % report.executed
        )
        return 1
    return 0


def _command_status(args, out):
    spec = _spec_from_args(args)
    plan = plan_campaign(spec)
    store = ResultStore(args.store)
    stored = store.load()
    done, failed, pending = [], [], []
    for run in plan.runs:
        hit = stored.get(run.fingerprint())
        if hit is None:
            pending.append(run)
        elif hit.ok:
            done.append(run)
        else:  # a stored failure row: a re-run will retry it
            failed.append((run, hit))
            pending.append(run)
    out.write(
        "campaign %r: %d planned, %d stored, %d failed, %d pending, %d pairs skipped\n"
        % (
            spec.name,
            len(plan.runs),
            len(done),
            len(failed),
            len(pending),
            len(plan.skipped),
        )
    )
    for run, hit in failed:
        out.write("  failed %s (%d attempt(s)): %s\n" % (run.run_id, hit.attempts, hit.error))
    for run in pending:
        out.write("  pending %s\n" % run.run_id)
    quarantined = store.quarantined()
    if quarantined:
        out.write(
            "warning: %d corrupt line(s) quarantined; run fsck/compact\n"
            % len(quarantined)
        )
    return 0 if not pending else 2


def _lint_status(results):
    """One lint-status line per campaigned model, or ``()`` when unavailable.

    Spec-level only (no elaboration) so ``report`` stays cheap, and fully
    guarded: a store may reference models the current registry no longer
    ships, and the report must still render.
    """
    try:
        from repro.analyze import lint_registered, max_severity
        from repro.processors.registry import get_entry
    except ImportError:
        return ()
    names = sorted({result.processor for result in results})
    lines = []
    for name in names:
        try:
            get_entry(name)
            findings = lint_registered(names=(name,), elaborated=False)[name]
        except Exception as error:
            lines.append("%s: lint unavailable (%s)" % (name, error))
            continue
        if findings:
            lines.append(
                "%s: %d finding(s), worst %s (run `python -m repro.analyze "
                "lint %s` for detail)"
                % (name, len(findings), max_severity(findings), name)
            )
        else:
            lines.append("%s: CLEAN" % name)
    return tuple(lines)


def _command_report(args, out):
    store = ResultStore(args.store)
    results = store.results()
    if not results:
        out.write("store %s holds no results\n" % store.path)
        return 1
    by = tuple(_split(args.group_by))
    quarantined = store.quarantined()
    if quarantined:
        out.write(
            "warning: %d corrupt line(s) quarantined by the loader; "
            "run `compact` to shed them\n\n" % len(quarantined)
        )
    summary = aggregate.summarize(results, by=by)
    if summary:
        out.write(aggregate.render(summary) + "\n")
    failures = aggregate.failure_rows(results)
    if failures:
        out.write("\nfailed runs (retried on the next `run` against this store):\n")
        out.write(aggregate.render(failures) + "\n")
    caches = aggregate.cache_table(results, by=by)
    if caches:
        out.write("\ncache behaviour (per-level miss rates):\n")
        out.write(aggregate.render(caches) + "\n")
    for against in ("compiled", "generated"):
        speedups = aggregate.speedup_table(results, against=against)
        if speedups:
            out.write("\nspeedup (%s over interpreted):\n" % against)
            out.write(aggregate.render(speedups) + "\n")
    throughput = aggregate.throughput_table(results)
    if throughput:
        out.write("\nthroughput (batched over generated, rows per host second):\n")
        out.write(aggregate.render(throughput) + "\n")
    lint_lines = _lint_status(results)
    if lint_lines:
        out.write("\nstatic analysis (spec-level lint of the campaigned models):\n")
        for line in lint_lines:
            out.write("  %s\n" % line)
    metrics = read_metrics_json(metrics_path(store))
    if metrics:
        hits = int(snapshot_value(metrics, "campaign.store.hits", 0))
        misses = int(snapshot_value(metrics, "campaign.store.misses", 0))
        saved = snapshot_value(metrics, "campaign.store.saved_wall_seconds", 0.0)
        out.write(
            "\nstore cache (cumulative): %d hit(s), %d miss(es), "
            "%.2fs of simulation wall time served from the store\n" % (hits, misses, saved)
        )
    if args.metrics:
        if metrics:
            out.write("\ncampaign metrics (last run; store counters cumulative):\n")
            out.write(render_metrics(metrics) + "\n")
        else:
            out.write("\nstore %s holds no metrics.json yet (run a campaign first)\n" % store.path)
    if args.metrics_json:
        write_metrics_json(args.metrics_json, metrics or {})
        out.write("\nwrote %d metric(s) to %s\n" % (len(metrics or {}), args.metrics_json))
    if args.csv:
        count = aggregate.to_csv(results, args.csv)
        out.write("\nwrote %d rows to %s\n" % (count, args.csv))
    if args.json:
        aggregate.to_json(results, args.json)
        out.write("wrote %d records to %s\n" % (len(results), args.json))
    return 0


def _command_compact(args, out):
    store = ResultStore(args.store)
    report = store.compact(shard_count=args.shards)
    out.write(
        "compacted %s: %d result(s) in %d shard(s); dropped %d duplicate "
        "line(s) and %d quarantined line(s)%s\n"
        % (
            store.path,
            report.results,
            report.shards,
            report.duplicates_dropped,
            report.quarantined_dropped,
            "; migrated legacy results.jsonl" if report.migrated_legacy else "",
        )
    )
    return 0


def _command_fsck(args, out):
    store = ResultStore(args.store)
    if not os.path.isdir(store.path):
        out.write("store %s does not exist\n" % store.path)
        return 1
    health = store.health()
    out.write(
        "store %(path)s: layout %(layout)s, %(shard_files)d shard file(s) "
        "(of %(shard_count)d), %(results)d record(s) "
        "(%(ok)d ok, %(failed)d failed), %(quarantined)d quarantined line(s)\n"
        % health
    )
    for line in health["quarantined_lines"]:
        out.write(
            "  quarantined %(file)s:%(line)d (%(reason)s): %(sample)s\n" % line
        )
    if health["quarantined"]:
        out.write("run `compact` to shed the quarantined lines\n")
        return 2
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel, content-addressed simulation campaigns.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="plan and execute a campaign")
    _grid_arguments(run)
    run.add_argument(
        "--store",
        required=True,
        help="result-store directory (conventionally campaign-store/, which "
        "is gitignored: stores are host-local caches, not sources)",
    )
    run.add_argument(
        "--max-workers", type=int, default=None, help="worker processes (1 = in-process)"
    )
    run.add_argument(
        "--verbose", action="store_true", help="print each run as it completes"
    )
    run.add_argument(
        "--expect-all-cached",
        action="store_true",
        help="fail if any run actually executed (CI incrementality check)",
    )
    run.add_argument(
        "--keep-going",
        action="store_true",
        help="finish the whole grid (and every retry) before reporting "
        "collected failures, instead of stopping at the first one",
    )
    run.set_defaults(handler=_command_run)

    status = commands.add_parser("status", help="compare a campaign against a store")
    _grid_arguments(status)
    status.add_argument(
        "--store",
        required=True,
        help="result-store directory (conventionally campaign-store/, which "
        "is gitignored: stores are host-local caches, not sources)",
    )
    status.set_defaults(handler=_command_status)

    report = commands.add_parser("report", help="render aggregation tables from a store")
    report.add_argument(
        "--store",
        required=True,
        help="result-store directory (conventionally campaign-store/, which "
        "is gitignored: stores are host-local caches, not sources)",
    )
    report.add_argument(
        "--group-by",
        default="processor,workload,scale,engine",
        help="comma-separated grouping attributes",
    )
    report.add_argument("--csv", default=None, help="export flat rows as CSV")
    report.add_argument("--json", default=None, help="export full records as JSON")
    report.add_argument(
        "--metrics",
        action="store_true",
        help="render the campaign metrics table (phase timings, cache "
        "counters, worker utilisation) from the store's metrics.json",
    )
    report.add_argument(
        "--metrics-json",
        default=None,
        help="export the store's metrics snapshot as JSON",
    )
    report.set_defaults(handler=_command_report)

    compact = commands.add_parser(
        "compact",
        help="rewrite a store as clean shards (migrate legacy layout, drop "
        "duplicate and quarantined lines)",
    )
    compact.add_argument("--store", required=True, help="result-store directory")
    compact.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for the rewritten store (default: keep the store's)",
    )
    compact.set_defaults(handler=_command_compact)

    fsck = commands.add_parser(
        "fsck",
        help="report store health: layout, record counts, failure rows and "
        "quarantined corrupt lines (exit 2 when any are present)",
    )
    fsck.add_argument("--store", required=True, help="result-store directory")
    fsck.set_defaults(handler=_command_fsck)
    return parser


def main(argv=None, out=None):
    from repro.core.exceptions import UnknownNameError

    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except (CampaignError, ValueError, UnknownNameError) as error:
        # UnknownNameError overrides __str__, so the did-you-mean message
        # survives the KeyError ancestry.
        out.write("error: %s\n" % error)
        return 1
