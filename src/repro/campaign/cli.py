"""Command-line interface: ``python -m repro.campaign run|status|report``.

``run`` executes a campaign (grid flags or a ``--spec`` JSON file) against
a result store, ``status`` reports how much of a campaign the store
already holds, and ``report`` renders the aggregation tables (and exports
CSV/JSON) from a store.  Every command is incremental by construction:
pointing ``run`` at yesterday's store re-executes only the fingerprints
that are missing.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.campaign import aggregate
from repro.campaign.planner import plan_campaign
from repro.campaign.runner import metrics_path, run_campaign
from repro.campaign.spec import ALL, CampaignError, CampaignSpec
from repro.campaign.store import ResultStore
from repro.observe.metrics import read_metrics_json, render_metrics, snapshot_value, write_metrics_json


def _split(value):
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _grid_arguments(parser):
    parser.add_argument("--name", default="campaign", help="campaign name")
    parser.add_argument(
        "--spec",
        help="JSON campaign file (CampaignSpec.to_dict shape); overrides the grid flags",
    )
    parser.add_argument(
        "--processors",
        default=ALL,
        help='comma-separated registry names, or "all" (default)',
    )
    parser.add_argument(
        "--workloads",
        default=ALL,
        help='comma-separated kernel names, or "all" (default)',
    )
    parser.add_argument("--scales", default="1", help="comma-separated scale factors")
    parser.add_argument(
        "--engines",
        default="interpreted,compiled",
        help="comma-separated engine backends "
        "(interpreted, compiled, generated, batched)",
    )
    parser.add_argument("--repeats", type=int, default=1, help="runs per grid point")
    parser.add_argument("--max-cycles", type=int, default=None, help="per-run cycle budget")
    parser.add_argument(
        "--max-instructions", type=int, default=None, help="per-run instruction budget"
    )


def _scales(value):
    scales = []
    for part in _split(value):
        try:
            scales.append(int(part))
        except ValueError:
            raise CampaignError(
                "bad --scales entry %r (need a comma-separated list of "
                "positive integers, e.g. --scales 1,4)" % part
            ) from None
    return tuple(scales)


def _spec_from_args(args):
    if args.spec:
        try:
            with open(args.spec, encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise CampaignError("cannot read --spec file: %s" % error) from None
        except json.JSONDecodeError as error:
            raise CampaignError(
                "--spec file %s is not valid JSON: %s" % (args.spec, error)
            ) from None
        spec = CampaignSpec.from_dict(data)
    else:
        spec = CampaignSpec(
            name=args.name,
            processors=_split(args.processors),
            workloads=_split(args.workloads),
            scales=_scales(args.scales),
            engines=_split(args.engines),
            repeats=args.repeats,
            max_cycles=args.max_cycles,
            max_instructions=args.max_instructions,
        )
        spec.validate()
    # Resolve registry names now, while we are still parsing arguments:
    # a typo in --processors/--workloads (or in a spec file) dies here
    # with the registry's did-you-mean suggestions instead of surfacing
    # later from a planner or worker stack.
    from repro.campaign.planner import resolve_processors, resolve_workloads

    resolve_processors(spec)
    resolve_workloads(spec)
    return spec


def _print_summary(out, report):
    summary = report.summary()
    out.write(
        "campaign %(campaign)r: %(planned)d planned, %(executed)d executed, "
        "%(cached)d from store, %(skipped_pairs)d pairs skipped "
        "(%(wall_seconds).2fs)\n" % summary
    )
    if report.store_path:
        out.write("store: %s\n" % report.store_path)
    out.write(
        "store cache: %d hit(s), %d miss(es), %.2fs of simulation wall time "
        "served from the store\n"
        % (report.cached, report.executed, report.saved_wall_seconds)
    )


def _command_run(args, out):
    spec = _spec_from_args(args)

    def progress(result):
        origin = "store" if result.cached else "pid %d" % result.worker_pid
        out.write(
            "  [%s] %s: %d cycles, CPI %.3f\n"
            % (origin, result.run_id, result.cycles, result.cpi)
        )
        out.flush()

    report = run_campaign(
        spec,
        store=args.store,
        max_workers=args.max_workers,
        progress=progress if args.verbose else None,
    )
    _print_summary(out, report)
    out.write("\n" + aggregate.render(aggregate.summarize(report)) + "\n")
    if args.expect_all_cached and report.executed:
        out.write(
            "ERROR: --expect-all-cached, but %d run(s) executed\n" % report.executed
        )
        return 1
    return 0


def _command_status(args, out):
    spec = _spec_from_args(args)
    plan = plan_campaign(spec)
    store = ResultStore(args.store)
    stored = store.load()
    done = [run for run in plan.runs if run.fingerprint() in stored]
    pending = [run for run in plan.runs if run.fingerprint() not in stored]
    out.write(
        "campaign %r: %d planned, %d stored, %d pending, %d pairs skipped\n"
        % (spec.name, len(plan.runs), len(done), len(pending), len(plan.skipped))
    )
    for run in pending:
        out.write("  pending %s\n" % run.run_id)
    return 0 if not pending else 2


def _command_report(args, out):
    store = ResultStore(args.store)
    results = store.results()
    if not results:
        out.write("store %s holds no results\n" % store.path)
        return 1
    by = tuple(_split(args.group_by))
    out.write(aggregate.render(aggregate.summarize(results, by=by)) + "\n")
    caches = aggregate.cache_table(results, by=by)
    if caches:
        out.write("\ncache behaviour (per-level miss rates):\n")
        out.write(aggregate.render(caches) + "\n")
    for against in ("compiled", "generated"):
        speedups = aggregate.speedup_table(results, against=against)
        if speedups:
            out.write("\nspeedup (%s over interpreted):\n" % against)
            out.write(aggregate.render(speedups) + "\n")
    throughput = aggregate.throughput_table(results)
    if throughput:
        out.write("\nthroughput (batched over generated, rows per host second):\n")
        out.write(aggregate.render(throughput) + "\n")
    metrics = read_metrics_json(metrics_path(store))
    if metrics:
        hits = int(snapshot_value(metrics, "campaign.store.hits", 0))
        misses = int(snapshot_value(metrics, "campaign.store.misses", 0))
        saved = snapshot_value(metrics, "campaign.store.saved_wall_seconds", 0.0)
        out.write(
            "\nstore cache (cumulative): %d hit(s), %d miss(es), "
            "%.2fs of simulation wall time served from the store\n" % (hits, misses, saved)
        )
    if args.metrics:
        if metrics:
            out.write("\ncampaign metrics (last run; store counters cumulative):\n")
            out.write(render_metrics(metrics) + "\n")
        else:
            out.write("\nstore %s holds no metrics.json yet (run a campaign first)\n" % store.path)
    if args.metrics_json:
        write_metrics_json(args.metrics_json, metrics or {})
        out.write("\nwrote %d metric(s) to %s\n" % (len(metrics or {}), args.metrics_json))
    if args.csv:
        count = aggregate.to_csv(results, args.csv)
        out.write("\nwrote %d rows to %s\n" % (count, args.csv))
    if args.json:
        aggregate.to_json(results, args.json)
        out.write("wrote %d records to %s\n" % (len(results), args.json))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel, content-addressed simulation campaigns.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="plan and execute a campaign")
    _grid_arguments(run)
    run.add_argument(
        "--store",
        required=True,
        help="result-store directory (conventionally campaign-store/, which "
        "is gitignored: stores are host-local caches, not sources)",
    )
    run.add_argument(
        "--max-workers", type=int, default=None, help="worker processes (1 = in-process)"
    )
    run.add_argument(
        "--verbose", action="store_true", help="print each run as it completes"
    )
    run.add_argument(
        "--expect-all-cached",
        action="store_true",
        help="fail if any run actually executed (CI incrementality check)",
    )
    run.set_defaults(handler=_command_run)

    status = commands.add_parser("status", help="compare a campaign against a store")
    _grid_arguments(status)
    status.add_argument(
        "--store",
        required=True,
        help="result-store directory (conventionally campaign-store/, which "
        "is gitignored: stores are host-local caches, not sources)",
    )
    status.set_defaults(handler=_command_status)

    report = commands.add_parser("report", help="render aggregation tables from a store")
    report.add_argument(
        "--store",
        required=True,
        help="result-store directory (conventionally campaign-store/, which "
        "is gitignored: stores are host-local caches, not sources)",
    )
    report.add_argument(
        "--group-by",
        default="processor,workload,scale,engine",
        help="comma-separated grouping attributes",
    )
    report.add_argument("--csv", default=None, help="export flat rows as CSV")
    report.add_argument("--json", default=None, help="export full records as JSON")
    report.add_argument(
        "--metrics",
        action="store_true",
        help="render the campaign metrics table (phase timings, cache "
        "counters, worker utilisation) from the store's metrics.json",
    )
    report.add_argument(
        "--metrics-json",
        default=None,
        help="export the store's metrics snapshot as JSON",
    )
    report.set_defaults(handler=_command_report)
    return parser


def main(argv=None, out=None):
    from repro.core.exceptions import UnknownNameError

    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except (CampaignError, ValueError, UnknownNameError) as error:
        # UnknownNameError overrides __str__, so the did-you-mean message
        # survives the KeyError ancestry.
        out.write("error: %s\n" % error)
        return 1
