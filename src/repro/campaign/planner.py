"""Campaign planning: expand a :class:`CampaignSpec` into concrete runs.

The planner resolves the symbolic axes against the processor and workload
registries (``"all"`` → every registered name, with
:class:`~repro.core.exceptions.UnknownNameError` and its did-you-mean
suggestions for typos), crosses them deterministically, drops pairings a
model's ISA subset cannot execute, and appends the campaign's explicit
runs.  The result is a :class:`CampaignPlan`: a flat, ordered tuple of
:class:`~repro.campaign.spec.RunSpec`s that the runner (or a benchmark
module parameterising over them) can execute in any order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.spec import ALL, CampaignError, CampaignSpec, RunSpec
from repro.describe.spec import PipelineSpec
from repro.processors.registry import get_entry, processor_names, supported_kernels
from repro.workloads.kernels import kernel_source
from repro.workloads.registry import workload_names


@dataclass(frozen=True)
class CampaignPlan:
    """The expanded campaign: every run to perform, plus what was dropped."""

    spec: CampaignSpec
    runs: tuple
    #: ``(processor, workload, reason)`` triples the grid skipped.
    skipped: tuple

    @property
    def fingerprints(self):
        return tuple(run.fingerprint() for run in self.runs)

    def run_ids(self):
        return tuple(run.run_id for run in self.runs)


def resolve_processors(spec):
    """The processor axis as ``(name, inline_spec_or_None)`` pairs."""
    resolved = []
    for entry in spec.processors:
        if isinstance(entry, PipelineSpec):
            resolved.append((entry.name, entry))
        elif entry == ALL:
            resolved.extend((name, None) for name in processor_names())
        else:
            get_entry(entry)  # raises UnknownNameError (with suggestions) on typos
            resolved.append((entry, None))
    return tuple(resolved)


def campaign_processors(spec):
    """Just the resolved processor names (for model-only parameter grids)."""
    return tuple(name for name, _ in resolve_processors(spec))


def resolve_workloads(spec):
    """The workload axis as a tuple of validated kernel names."""
    resolved = []
    for entry in spec.workloads:
        if entry == ALL:
            resolved.extend(workload_names())
        else:
            kernel_source(entry, 1)  # raises UnknownNameError on typos
            resolved.append(entry)
    return tuple(resolved)


def plan_campaign(spec):
    """Validate ``spec`` and expand it into a :class:`CampaignPlan`.

    Grid order is deterministic: processors (axis order) × workloads ×
    scales × engine variants × repeats, then the explicit runs.  A model
    declaring an ISA subset (e.g. the Figure 4/5 ``example``) is paired
    only with the kernels it supports; the dropped pairs are recorded in
    :attr:`CampaignPlan.skipped` rather than silently vanishing.
    """
    if not isinstance(spec, CampaignSpec):
        raise CampaignError("plan_campaign expects a CampaignSpec, got %r" % (spec,))
    spec.validate()

    processors = resolve_processors(spec)
    workloads = resolve_workloads(spec)
    variants = spec.engine_variants()

    runs = []
    skipped = []
    for processor, inline_spec in processors:
        if inline_spec is None:
            usable = set(supported_kernels(processor, workloads))
        else:
            # Inline specs carry no kernel metadata; the author vouches for
            # ISA coverage (elaboration rejects unknown operation classes).
            usable = set(workloads)
        for workload in workloads:
            if workload not in usable:
                skipped.append(
                    (processor, workload, "model does not support this kernel")
                )
                continue
            for scale in spec.scales:
                for variant in variants:
                    for repeat in range(spec.repeats):
                        runs.append(
                            RunSpec(
                                processor=processor,
                                workload=workload,
                                scale=scale,
                                engine=variant,
                                max_cycles=spec.max_cycles,
                                max_instructions=spec.max_instructions,
                                repeat=repeat,
                                processor_spec=inline_spec,
                            )
                        )
    for run in spec.runs:
        # Fail explicit runs at planning time, not on a worker: resolve
        # registry names (UnknownNameError carries suggestions) up front.
        if run.processor_spec is None:
            get_entry(run.processor)
        kernel_source(run.workload, 1)
        runs.append(run)

    if not runs:
        raise CampaignError(
            "campaign %r plans zero runs (empty axis, or every "
            "processor/workload pairing skipped: %s)"
            % (spec.name, ", ".join("%s/%s" % pair[:2] for pair in skipped) or "<none>")
        )
    seen = set()
    for run in runs:
        if run.run_id in seen:
            raise CampaignError(
                "campaign %r plans duplicate run %r" % (spec.name, run.run_id)
            )
        seen.add(run.run_id)
    return CampaignPlan(spec=spec, runs=tuple(runs), skipped=tuple(skipped))
