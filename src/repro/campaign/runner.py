"""Campaign execution: worker-pool orchestration with incremental skip.

:func:`execute_run` performs exactly the steps of a direct
:func:`repro.analysis.metrics.run_processor` call — build the model from
its description, load the workload, run to completion — so per-run
statistics are bit-identical whether a run executes inline, on a worker,
or was stored by an earlier campaign.  :func:`run_campaign` plans a
:class:`~repro.campaign.spec.CampaignSpec`, serves every already-stored
fingerprint from the :class:`~repro.campaign.store.ResultStore`, and fans
the remainder out over a ``multiprocessing`` pool (``max_workers=1`` runs
in-process, for determinism hunting and debuggers).

Workers receive only plain-data :class:`~repro.campaign.spec.RunSpec`s and
rebuild processors from their specs, so nothing unpicklable ever crosses
the process boundary and any start method works.  The platform default is
used unless ``mp_context`` overrides it; under a "spawn" start method the
orchestrating ``__main__`` must be importable (the standard
multiprocessing guard), which the CLI and pytest entry points are.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass

from repro.campaign.planner import plan_campaign
from repro.campaign.spec import CampaignError, RunSpec
from repro.campaign.store import ResultStore, RunResult


def build_run_processor(run):
    """Build the processor a :class:`RunSpec` describes, ready to load a program."""
    options = run.engine.resolved_options()
    if run.processor_spec is not None:
        from repro.describe.elaborate import elaborate

        return elaborate(
            run.processor_spec,
            engine_options=options,
            use_decode_cache=run.engine.use_decode_cache,
        )
    from repro.processors.registry import build_processor

    return build_processor(
        run.processor,
        engine_options=options,
        use_decode_cache=run.engine.use_decode_cache,
    )


def execute_run(run, campaign=""):
    """Execute one run and return its structured :class:`RunResult`.

    This is the single execution path of the subsystem: the worker pool,
    the in-process fallback and the benchmark harness all call it, which
    is what keeps campaign statistics bit-identical to direct
    ``run_processor`` calls.
    """
    from repro.workloads.registry import get_workload

    processor = build_run_processor(run)
    workload = get_workload(run.workload, scale=run.scale)
    processor.load_program(workload.program)
    start = time.perf_counter()
    stats = processor.run(
        max_cycles=run.max_cycles, max_instructions=run.max_instructions
    )
    wall = time.perf_counter() - start

    summary = stats.summary()
    summary["retired_by_class"] = dict(stats.retired_by_class)
    return RunResult(
        fingerprint=run.fingerprint(),
        campaign=campaign,
        run_id=run.run_id,
        processor=run.processor,
        workload=run.workload,
        scale=run.scale,
        engine=run.engine.label,
        backend=run.engine.backend,
        repeat=run.repeat,
        cycles=stats.cycles,
        instructions=stats.instructions,
        final_r0=processor.register(0),
        finish_reason=stats.finish_reason,
        wall_seconds=wall,
        stats=summary,
        generation=processor.generation_report.summary(),
        memory=processor.memory.statistics_summary(),
        worker_pid=os.getpid(),
    )


@dataclass
class _RunFailure:
    """A worker-side exception, reduced to picklable data."""

    run_id: str
    error: str
    details: str


def _pool_init(sys_path):
    # Spawned workers start a fresh interpreter that knows nothing about a
    # PYTHONPATH=src-style parent; mirroring the parent's sys.path makes the
    # repro package importable however the orchestrator found it.
    sys.path[:] = sys_path


def _pool_worker(payload):
    run, campaign = payload
    try:
        return execute_run(run, campaign=campaign)
    except Exception as error:  # surfaced collectively by run_campaign
        return _RunFailure(
            run_id=run.run_id,
            error="%s: %s" % (type(error).__name__, error),
            details=traceback.format_exc(),
        )


@dataclass
class CampaignReport:
    """What :func:`run_campaign` did: every result plus the execution split."""

    spec: object
    plan: object
    results: tuple = ()
    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    store_path: str = None

    @property
    def skipped(self):
        return self.plan.skipped

    def summary(self):
        return {
            "campaign": self.spec.name,
            "planned": len(self.plan.runs),
            "executed": self.executed,
            "cached": self.cached,
            "skipped_pairs": len(self.plan.skipped),
            "wall_seconds": round(self.wall_seconds, 3),
            "store": self.store_path,
        }


def _coerce_store(store):
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)


def run_campaign(
    spec,
    store=None,
    max_workers=None,
    mp_context=None,
    progress=None,
):
    """Plan and execute ``spec``, returning a :class:`CampaignReport`.

    ``store`` is a :class:`ResultStore`, a directory path, or ``None`` for
    a purely in-memory campaign.  Runs whose fingerprint the store already
    holds are served from it without simulating; everything else executes
    on a pool of ``max_workers`` processes (default: one per host CPU,
    capped by the number of pending runs; ``1`` stays in-process).
    ``progress``, when given, is called as ``progress(result)`` after each
    run completes or is served from the store.
    """
    start = time.perf_counter()
    plan = plan_campaign(spec)
    store = _coerce_store(store)
    stored = store.load() if store is not None else {}

    pending = []
    by_fingerprint = {}
    cached = 0
    for run in plan.runs:
        fingerprint = run.fingerprint()
        hit = stored.get(fingerprint)
        if hit is not None:
            hit.cached = True
            by_fingerprint[fingerprint] = hit
            cached += 1
            if progress is not None:
                progress(hit)
        else:
            pending.append((fingerprint, run))

    if max_workers is None:
        max_workers = min(len(pending), os.cpu_count() or 1) or 1

    def record(fingerprint, result):
        if isinstance(result, _RunFailure):
            return result
        by_fingerprint[fingerprint] = result
        if store is not None:
            store.append(result)
        if progress is not None:
            progress(result)
        return None

    failures = []
    if pending:
        if max_workers <= 1 or len(pending) == 1:
            for fingerprint, run in pending:
                failure = record(fingerprint, _pool_worker((run, spec.name)))
                if failure is not None:
                    failures.append(failure)
        else:
            context = multiprocessing.get_context(mp_context)
            payloads = [(run, spec.name) for _, run in pending]
            fingerprint_of = {run.run_id: fp for fp, run in pending}
            with context.Pool(
                processes=max_workers,
                initializer=_pool_init,
                initargs=(list(sys.path),),
            ) as pool:
                for result in pool.imap_unordered(_pool_worker, payloads):
                    key = (
                        result.run_id
                        if isinstance(result, (RunResult, _RunFailure))
                        else None
                    )
                    failure = record(fingerprint_of.get(key), result)
                    if failure is not None:
                        failures.append(failure)

    if failures:
        lines = ["campaign %r: %d run(s) failed" % (spec.name, len(failures))]
        for failure in failures:
            lines.append("  %s: %s" % (failure.run_id, failure.error))
        lines.append(failures[0].details)
        raise CampaignError("\n".join(lines))

    results = tuple(by_fingerprint[run.fingerprint()] for run in plan.runs)
    return CampaignReport(
        spec=spec,
        plan=plan,
        results=results,
        executed=len(pending),
        cached=cached,
        wall_seconds=time.perf_counter() - start,
        store_path=store.path if store is not None else None,
    )


def run_single(
    processor,
    workload,
    scale=1,
    engine="interpreted",
    max_cycles=None,
    max_instructions=None,
):
    """Convenience: execute one ad-hoc run outside any campaign."""
    run = RunSpec(
        processor=processor if isinstance(processor, str) else processor.name,
        workload=workload,
        scale=scale,
        engine=engine,
        max_cycles=max_cycles,
        max_instructions=max_instructions,
        processor_spec=None if isinstance(processor, str) else processor,
    )
    return execute_run(run)
