"""Campaign execution: worker-pool orchestration with incremental skip.

:func:`execute_run` performs exactly the steps of a direct
:func:`repro.analysis.metrics.run_processor` call — build the model from
its description, load the workload, run to completion — so per-run
statistics are bit-identical whether a run executes inline, on a worker,
or was stored by an earlier campaign.  :func:`run_campaign` plans a
:class:`~repro.campaign.spec.CampaignSpec`, serves every already-stored
fingerprint from the :class:`~repro.campaign.store.ResultStore`, and fans
the remainder out over a ``multiprocessing`` pool (``max_workers=1`` runs
in-process, for determinism hunting and debuggers).

Workers receive only plain-data :class:`~repro.campaign.spec.RunSpec`s and
rebuild processors from their specs, so nothing unpicklable ever crosses
the process boundary and any start method works.  The platform default is
used unless ``mp_context`` overrides it; under a "spawn" start method the
orchestrating ``__main__`` must be importable (the standard
multiprocessing guard), which the CLI and pytest entry points are.

Runs whose engine backend is ``"batched"`` are executed lane-batched:
pending runs that share an emitted module — same processor fingerprint,
same emit-relevant engine options, same decode-cache knob — are grouped,
chunked to at most ``options.lanes`` runs, and each chunk advances in
lockstep as one :class:`repro.batched.LaneBatch`
(:func:`execute_batch`).  The per-lane :class:`RunResult`s that come out
are indistinguishable from scalar ones and land in the store under the
same fingerprints (which deliberately exclude the batch width).

Failures are first-class, not fatal.  A failing work unit is isolated and
retried: a multi-lane batch that errors is **re-split into scalar runs**
(one poisoned lane must not take its siblings down — the re-split does
not charge anyone's retry budget), and a failing scalar run is retried up
to ``CampaignSpec.max_retries`` times with exponential backoff
(``retry_backoff_seconds * 2**round`` between retry rounds).  A run that
exhausts its budget becomes a ``"failed"`` record in the store — error
and traceback included, visible in ``status``/``report`` — and the
campaign raises a collected :class:`CampaignError`: immediately after the
in-flight round by default, or only after the whole grid (and every
retry) finished when ``keep_going=True`` (CLI ``--keep-going``).  Failed
store records never satisfy a cache lookup, so re-running the campaign
retries exactly the failed fingerprints and a success overwrites the
failure row.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import asdict, dataclass

from repro.campaign.planner import plan_campaign
from repro.campaign.spec import CampaignError, RunSpec, _processor_fingerprint
from repro.campaign.store import KIND_FAILED, ResultStore, RunResult
from repro.observe.metrics import (
    MetricsRegistry,
    merge_cumulative,
    read_metrics_json,
    write_metrics_json,
)

#: Store-level counters kept *cumulative* across campaign invocations when
#: ``metrics.json`` is rewritten next to the result store.
CUMULATIVE_STORE_METRICS = (
    "campaign.store.hits",
    "campaign.store.misses",
    "campaign.store.saved_wall_seconds",
    "campaign.store.lock_wait_seconds",
)

METRICS_FILENAME = "metrics.json"


def build_run_processor(run):
    """Build the processor a :class:`RunSpec` describes, ready to load a program."""
    options = run.engine.resolved_options()
    if run.processor_spec is not None:
        from repro.describe.elaborate import elaborate

        return elaborate(
            run.processor_spec,
            engine_options=options,
            use_decode_cache=run.engine.use_decode_cache,
        )
    from repro.processors.registry import build_processor

    return build_processor(
        run.processor,
        engine_options=options,
        use_decode_cache=run.engine.use_decode_cache,
    )


def _result_for(run, processor, wall, campaign):
    """Assemble the :class:`RunResult` for one completed run."""
    stats = processor.stats
    summary = stats.summary()
    summary["retired_by_class"] = dict(stats.retired_by_class)
    return RunResult(
        fingerprint=run.fingerprint(),
        campaign=campaign,
        run_id=run.run_id,
        processor=run.processor,
        workload=run.workload,
        scale=run.scale,
        engine=run.engine.label,
        backend=run.engine.backend,
        repeat=run.repeat,
        cycles=stats.cycles,
        instructions=stats.instructions,
        final_r0=processor.register(0),
        finish_reason=stats.finish_reason,
        wall_seconds=wall,
        stats=summary,
        generation=processor.generation_report.summary(),
        memory=processor.memory.statistics_summary(),
        worker_pid=os.getpid(),
    )


def execute_run(run, campaign=""):
    """Execute one run and return its structured :class:`RunResult`.

    This is the single execution path of the subsystem: the worker pool,
    the in-process fallback and the benchmark harness all call it, which
    is what keeps campaign statistics bit-identical to direct
    ``run_processor`` calls.  (Batched runs have a second path,
    :func:`execute_batch`; a batch of one is equivalent to this.)
    """
    from repro.workloads.registry import get_workload

    processor = build_run_processor(run)
    workload = get_workload(run.workload, scale=run.scale)
    processor.load_program(workload.program)
    start = time.perf_counter()
    processor.run(max_cycles=run.max_cycles, max_instructions=run.max_instructions)
    wall = time.perf_counter() - start
    return _result_for(run, processor, wall, campaign)


def execute_batch(runs, campaign=""):
    """Execute same-module batched runs in lockstep; returns their results.

    Every run must use the ``"batched"`` backend and share a batch group
    key (:func:`_batch_key`) — the caller (:func:`run_campaign`) groups and
    chunks accordingly.  Each run keeps its own processor, workload and
    budgets; one :class:`~repro.batched.LaneBatch` advances them together.
    Per-run ``wall_seconds`` is the batch wall time attributed
    proportionally to the cycles each lane simulated (the same attribution
    the engine records in ``stats.wall_time_seconds``).
    """
    from repro.batched import LaneBatch
    from repro.workloads.registry import get_workload

    processors = []
    for run in runs:
        processor = build_run_processor(run)
        workload = get_workload(run.workload, scale=run.scale)
        processor.load_program(workload.program)
        processors.append(processor)
    batch = LaneBatch([processor.engine for processor in processors])
    start = time.perf_counter()
    batch.run(
        max_cycles=[run.max_cycles for run in runs],
        max_instructions=[run.max_instructions for run in runs],
    )
    wall = time.perf_counter() - start
    total_cycles = sum(processor.stats.cycles for processor in processors)
    results = []
    for run, processor in zip(runs, processors):
        share = (
            wall * processor.stats.cycles / total_cycles
            if total_cycles
            else wall / len(runs)
        )
        results.append(_result_for(run, processor, share, campaign))
    return results


def _batch_key(run):
    """Everything two batched runs must agree on to share one lane batch.

    Mirrors the emitted-module identity: the processor (spec fingerprint),
    the full engine options (including ``lanes`` — it is part of the
    codegen key even though run fingerprints exclude it) and the
    decode-cache knob the builder takes.
    """
    options = run.engine.resolved_options()
    return (
        _processor_fingerprint(run.processor, run.processor_spec),
        json.dumps(asdict(options), sort_keys=True, default=str),
        run.engine.use_decode_cache,
    )


@dataclass
class _RunFailure:
    """A worker-side exception, reduced to picklable data.

    ``unit_size`` is how many runs shared the failing work unit: the
    orchestrator re-splits multi-lane batches into scalar retries instead
    of charging every sibling's retry budget for one poisoned lane.
    """

    run_id: str
    error: str
    details: str
    unit_size: int = 1


def _failure_result(run, failure, campaign, attempts):
    """The persistent ``"failed"`` store record for an exhausted run."""
    return RunResult(
        fingerprint=run.fingerprint(),
        campaign=campaign,
        run_id=run.run_id,
        processor=run.processor,
        workload=run.workload,
        scale=run.scale,
        engine=run.engine.label,
        backend=run.engine.backend,
        repeat=run.repeat,
        cycles=0,
        instructions=0,
        final_r0=0,
        finish_reason="error",
        wall_seconds=0.0,
        worker_pid=os.getpid(),
        kind=KIND_FAILED,
        error=failure.error,
        error_details=failure.details,
        attempts=attempts,
    )


def _pool_init(sys_path):
    # Spawned workers start a fresh interpreter that knows nothing about a
    # PYTHONPATH=src-style parent; mirroring the parent's sys.path makes the
    # repro package importable however the orchestrator found it.
    sys.path[:] = sys_path


def _pool_worker(payload):
    """Execute one work unit: a single scalar run or one lane batch.

    Always returns a list — of :class:`RunResult`s on success, of one
    :class:`_RunFailure` per affected run on error (a failing batch takes
    all its lanes with it; the orchestrator re-splits them into scalar
    retries so intact siblings still complete).
    """
    runs, campaign = payload
    try:
        if runs[0].engine.backend == "batched":
            return execute_batch(runs, campaign=campaign)
        return [execute_run(run, campaign=campaign) for run in runs]
    except Exception as error:  # isolated and retried by run_campaign
        return [
            _RunFailure(
                run_id=run.run_id,
                error="%s: %s" % (type(error).__name__, error),
                details=traceback.format_exc(),
                unit_size=len(runs),
            )
            for run in runs
        ]


@dataclass
class CampaignReport:
    """What :func:`run_campaign` did: every result plus the execution split."""

    spec: object
    plan: object
    results: tuple = ()
    executed: int = 0
    cached: int = 0
    wall_seconds: float = 0.0
    store_path: str = None
    #: :meth:`repro.observe.metrics.MetricsRegistry.snapshot` of this
    #: invocation (phase timings, store hit rates, worker utilisation).
    metrics: dict = None

    @property
    def skipped(self):
        return self.plan.skipped

    @property
    def saved_wall_seconds(self):
        """Host wall-time the store's cache hits saved this invocation."""
        return sum(result.wall_seconds for result in self.results if result.cached)

    def summary(self):
        return {
            "campaign": self.spec.name,
            "planned": len(self.plan.runs),
            "executed": self.executed,
            "cached": self.cached,
            "skipped_pairs": len(self.plan.skipped),
            "wall_seconds": round(self.wall_seconds, 3),
            "store": self.store_path,
        }


def _coerce_store(store):
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(store)


def run_campaign(
    spec,
    store=None,
    max_workers=None,
    mp_context=None,
    progress=None,
    metrics=None,
    keep_going=False,
):
    """Plan and execute ``spec``, returning a :class:`CampaignReport`.

    ``store`` is a :class:`ResultStore`, a directory path, or ``None`` for
    a purely in-memory campaign.  Runs whose fingerprint the store already
    holds as a *successful* record are served from it without simulating
    (a stored ``"failed"`` record is retried instead); everything else
    executes on a pool of ``max_workers`` processes (default: one per host
    CPU, capped by the number of work units — a unit is one scalar run or
    one lane batch of ``"batched"`` runs; ``1`` stays in-process).
    ``progress``, when given, is called as ``progress(result)`` after each
    run completes, fails permanently, or is served from the store.

    Failure policy: failing multi-lane batches are re-split into scalar
    runs, failing scalar runs are retried up to ``spec.max_retries`` times
    with exponential backoff, and runs that exhaust the budget are
    persisted as ``"failed"`` records before a collected
    :class:`CampaignError` is raised.  ``keep_going=False`` (default)
    stops launching further work once any run has permanently failed;
    ``keep_going=True`` finishes the whole grid and every retry first.

    ``metrics`` is an optional
    :class:`~repro.observe.metrics.MetricsRegistry` to record into (one is
    created otherwise); the snapshot lands on ``CampaignReport.metrics``
    and — when a store is used — is persisted as ``metrics.json`` next to
    the store's shard files, with the store-level hit/miss/saved/lock-wait
    counters kept cumulative across invocations.
    """
    registry = metrics if metrics is not None else MetricsRegistry()
    start = time.perf_counter()
    with registry.timer("campaign.phase.plan_seconds", "wall time spent planning"):
        plan = plan_campaign(spec)
    store = _coerce_store(store)
    with registry.timer(
        "campaign.phase.store_load_seconds", "wall time loading the result store"
    ):
        stored = store.load() if store is not None else {}

    store_hits = registry.counter(
        "campaign.store.hits", "runs served from the result store"
    )
    store_misses = registry.counter(
        "campaign.store.misses", "planned runs the store did not hold"
    )
    saved_wall = registry.counter(
        "campaign.store.saved_wall_seconds",
        "host wall-time of the stored runs served instead of re-executed",
    )
    run_wall = registry.histogram(
        "campaign.run.wall_seconds", "per-run host wall-time of executed runs"
    )
    retry_counter = registry.counter(
        "campaign.run.retries", "budget-charged re-executions of failing runs"
    )
    resplit_counter = registry.counter(
        "campaign.batch.resplit_runs",
        "runs re-run as scalars because their lane batch failed",
    )
    failure_counter = registry.counter(
        "campaign.run.failures", "runs that exhausted their retry budget"
    )

    pending = []
    by_fingerprint = {}
    cached = 0
    for run in plan.runs:
        fingerprint = run.fingerprint()
        hit = stored.get(fingerprint)
        if hit is not None and hit.ok:
            hit.cached = True
            by_fingerprint[fingerprint] = hit
            cached += 1
            store_hits.inc()
            saved_wall.inc(max(hit.wall_seconds, 0.0))
            if progress is not None:
                progress(hit)
        else:
            if hit is not None:  # a stored failure row: retry, never serve
                registry.counter(
                    "campaign.store.failed_retried",
                    "stored failure rows retried instead of served",
                ).inc()
            store_misses.inc()
            pending.append((fingerprint, run))

    # One work unit per scalar run; batched runs that share an emitted
    # module are grouped and chunked to the batch width, so a unit is a
    # whole lane batch.  Unit order preserves plan order within each kind.
    units = []
    batch_groups = {}
    for _fingerprint, run in pending:
        if run.engine.backend != "batched":
            units.append((run,))
            continue
        batch_groups.setdefault(_batch_key(run), []).append(run)
    for runs in batch_groups.values():
        width = max(1, runs[0].engine.resolved_options().lanes)
        for index in range(0, len(runs), width):
            chunk = tuple(runs[index : index + width])
            units.append(chunk)
            registry.histogram(
                "campaign.batch.width", "lanes per batched work unit"
            ).observe(len(chunk))

    if max_workers is None:
        max_workers = min(len(units), os.cpu_count() or 1) or 1
    registry.gauge("campaign.units", "work units this invocation").set(len(units))
    registry.gauge("campaign.workers.max", "worker-pool size").set(max_workers)
    fingerprint_of = {run.run_id: fp for fp, run in pending}
    run_by_id = {run.run_id: run for _, run in pending}
    worker_runs = {}

    def record(result):
        by_fingerprint[fingerprint_of[result.run_id]] = result
        run_wall.observe(result.wall_seconds)
        worker_runs[result.worker_pid] = worker_runs.get(result.worker_pid, 0) + 1
        _record_generation_metrics(registry, result.generation)
        if store is not None:
            store.append(result)
        if progress is not None:
            progress(result)

    attempts = {}  # run_id -> budget-charged re-executions so far
    final_failures = []  # (run, _RunFailure) pairs past their budget
    with registry.timer(
        "campaign.phase.execute_seconds", "wall time executing pending runs"
    ):
        pending_units = units
        round_index = 0
        stop = False
        while pending_units and not stop:
            next_units = []
            newly_final = []

            def handle(out):
                if not isinstance(out, _RunFailure):
                    record(out)
                    return
                run = run_by_id[out.run_id]
                if out.unit_size > 1:
                    # Failure isolation: the whole batch failed, but only
                    # one lane may be poisoned.  Re-run every lane as a
                    # scalar unit without charging anyone's retry budget.
                    resplit_counter.inc()
                    next_units.append((run,))
                    return
                used = attempts.get(out.run_id, 0)
                if used < spec.max_retries:
                    attempts[out.run_id] = used + 1
                    retry_counter.inc()
                    next_units.append((run,))
                else:
                    newly_final.append((run, out))

            if max_workers <= 1 or len(pending_units) == 1:
                for unit in pending_units:
                    for out in _pool_worker((unit, spec.name)):
                        handle(out)
                    if newly_final and not keep_going:
                        stop = True
                        break
            else:
                context = multiprocessing.get_context(mp_context)
                payloads = [(unit, spec.name) for unit in pending_units]
                with context.Pool(
                    processes=max_workers,
                    initializer=_pool_init,
                    initargs=(list(sys.path),),
                ) as pool:
                    for outs in pool.imap_unordered(_pool_worker, payloads):
                        for out in outs:
                            handle(out)
                if newly_final and not keep_going:
                    stop = True

            final_failures.extend(newly_final)
            if stop or not next_units:
                break
            if spec.retry_backoff_seconds > 0:
                time.sleep(spec.retry_backoff_seconds * (2**round_index))
            pending_units = next_units
            round_index += 1

    if worker_runs:
        utilisation = registry.histogram(
            "campaign.worker.runs", "executed runs per worker process"
        )
        for count in worker_runs.values():
            utilisation.observe(count)
        registry.gauge(
            "campaign.workers.used", "distinct worker processes that returned results"
        ).set(len(worker_runs))

    for run, failure in final_failures:
        failure_counter.inc()
        failed = _failure_result(
            run, failure, spec.name, attempts.get(run.run_id, 0) + 1
        )
        if store is not None:
            store.append(failed)
        if progress is not None:
            progress(failed)

    wall = time.perf_counter() - start
    registry.gauge("campaign.wall_seconds", "total campaign wall time").set(wall)
    if store is not None:
        registry.merge_counters(
            {
                "campaign.store.lock_wait_seconds": store.counters["lock_wait_seconds"],
                "campaign.store.quarantined_lines": len(store.quarantined()),
            },
            description="result-store health (lock contention, skipped lines)",
        )
    snapshot = registry.snapshot()
    if store is not None:
        _persist_metrics(store, snapshot)

    if final_failures:
        lines = [
            "campaign %r: %d run(s) failed%s"
            % (
                spec.name,
                len(final_failures),
                "" if keep_going else " (re-run with keep_going to finish the grid)",
            )
        ]
        for _run, failure in final_failures:
            lines.append("  %s: %s" % (failure.run_id, failure.error))
        lines.append(final_failures[0][1].details)
        raise CampaignError("\n".join(lines))

    results = tuple(by_fingerprint[run.fingerprint()] for run in plan.runs)
    return CampaignReport(
        spec=spec,
        plan=plan,
        results=results,
        executed=len(pending),
        cached=cached,
        wall_seconds=wall,
        store_path=store.path if store is not None else None,
        metrics=snapshot,
    )


def _record_generation_metrics(registry, generation):
    """Fold one result's generation report into cache-status counters."""
    if not isinstance(generation, dict):
        return
    status = generation.get("schedule_cache")
    if status:
        registry.counter(
            "campaign.schedule_cache.%s" % status, "runs with this schedule-cache status"
        ).inc()
    compilation = generation.get("compilation")
    if isinstance(compilation, dict):
        for kind in ("codegen_cache", "plan_cache"):
            status = compilation.get(kind)
            if status:
                registry.counter(
                    "campaign.%s.%s" % (kind, status),
                    "runs with this %s status" % kind.replace("_", "-"),
                ).inc()


def metrics_path(store):
    """Where a store's campaign metrics snapshot lives on disk."""
    return os.path.join(store.path, METRICS_FILENAME)


def _persist_metrics(store, snapshot):
    """Write ``metrics.json`` next to the store's shard files.

    Per-invocation metrics (phase timings, worker utilisation) are simply
    overwritten; the store-level hit/miss/saved/lock-wait counters are
    merged with the previous snapshot so ``report`` can show lifetime
    cache value.  Best-effort: an unwritable store directory loses the
    snapshot, never the campaign.
    """
    merged = {name: dict(entry) for name, entry in snapshot.items()}
    previous = read_metrics_json(metrics_path(store))
    merge_cumulative(merged, previous, CUMULATIVE_STORE_METRICS)
    with contextlib.suppress(OSError):
        os.makedirs(store.path, exist_ok=True)
        write_metrics_json(metrics_path(store), merged)


def run_single(
    processor,
    workload,
    scale=1,
    engine="interpreted",
    max_cycles=None,
    max_instructions=None,
):
    """Convenience: execute one ad-hoc run outside any campaign."""
    run = RunSpec(
        processor=processor if isinstance(processor, str) else processor.name,
        workload=workload,
        scale=scale,
        engine=engine,
        max_cycles=max_cycles,
        max_instructions=max_instructions,
        processor_spec=None if isinstance(processor, str) else processor,
    )
    return execute_run(run)
