"""Declarative experiment campaigns (pure data, validated, fingerprinted).

A :class:`CampaignSpec` describes a *grid* of simulations — processors,
workloads, scales, engine variants, budgets, repeats — the way a
:class:`~repro.describe.PipelineSpec` describes a pipeline: as plain data
that can be validated before anything runs and expanded deterministically
(:func:`repro.campaign.planner.plan_campaign`) into :class:`RunSpec`s.

Every :class:`RunSpec` has a stable content :meth:`~RunSpec.fingerprint`
combining the processor-spec fingerprint, the workload identity (name,
scale and a hash of its assembled source), the engine configuration, the
run budgets and the ``repro`` version.  The fingerprint is the key of the
:class:`~repro.campaign.store.ResultStore`: a campaign never re-executes a
run whose fingerprint is already stored, which is what makes campaigns
incremental and resumable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

import repro
from repro.core.engine import ENGINE_BACKENDS, EngineOptions
from repro.describe.spec import PipelineSpec


class CampaignError(ValueError):
    """A campaign description is inconsistent or a campaign run failed."""


#: Sentinel accepted by the ``processors``/``workloads`` axes: expand to
#: every name the corresponding registry knows at planning time.
ALL = "all"


@dataclass(frozen=True)
class EngineVariant:
    """One engine configuration of a campaign's engine axis.

    ``label`` names the variant in results and reports; ``options`` is the
    full :class:`~repro.core.engine.EngineOptions` (``None`` means the
    defaults) and ``use_decode_cache`` is the builder-level decode-cache
    knob the Section 4 ablation sweeps.  The plain backend strings
    (``"interpreted"``/``"compiled"``/``"generated"``/``"batched"``, see
    :data:`~repro.core.engine.ENGINE_BACKENDS`) are accepted anywhere a
    variant is and normalise to a variant of that backend with default
    options.
    """

    label: str
    options: EngineOptions = None
    use_decode_cache: bool = True

    def resolved_options(self):
        """A private :class:`EngineOptions` copy (engines mutate nothing shared)."""
        return replace(self.options) if self.options is not None else EngineOptions()

    @property
    def backend(self):
        return (self.options or EngineOptions()).backend

    def identity(self):
        """The variant as plain data, for :meth:`RunSpec.fingerprint`.

        The label is deliberately excluded: renaming a variant must not
        invalidate stored results whose simulated behaviour is unchanged.
        So is ``options.lanes``: the batch width decides how many lockstep
        lanes share one host dispatch (an execution detail, like
        ``max_workers``), never the per-lane statistics, and widening a
        batched campaign must keep yesterday's store fully cached.
        ``options.trace`` is excluded for the same reason: tracing observes
        a run without perturbing its statistics (the trace-equivalence
        suite pins this), so a traced re-run of a stored campaign stays
        fully cached.
        """
        options = asdict(self.options or EngineOptions())
        options.pop("lanes", None)
        options.pop("trace", None)
        return {
            "options": options,
            "use_decode_cache": self.use_decode_cache,
        }


def engine_variant(value):
    """Normalise an engine-axis entry to an :class:`EngineVariant`."""
    if isinstance(value, EngineVariant):
        return value
    if isinstance(value, EngineOptions):
        return EngineVariant(label=value.backend, options=value)
    if isinstance(value, str):
        if value not in ENGINE_BACKENDS:
            import difflib

            close = difflib.get_close_matches(value, ENGINE_BACKENDS, n=1)
            hint = "; did you mean %r?" % close[0] if close else ""
            raise CampaignError(
                "unknown engine backend %r; expected one of %s or an "
                "EngineVariant%s" % (value, ", ".join(ENGINE_BACKENDS), hint)
            )
        return EngineVariant(label=value, options=EngineOptions(backend=value))
    raise CampaignError("bad engine-axis entry %r" % (value,))


def _workload_digest(name, scale):
    """Content hash of one workload: the assembled source text at its scale."""
    from repro.workloads.kernels import kernel_source

    source = kernel_source(name, scale)
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _processor_fingerprint(name, inline_spec):
    """Content identity of the processor axis value of one run."""
    if inline_spec is not None:
        return inline_spec.fingerprint()
    from repro.processors.registry import get_spec

    spec = get_spec(name)
    if spec is not None:
        return spec.fingerprint()
    # Legacy builder with no declarative spec: the name (plus the repro
    # version already mixed into the fingerprint) is all the identity there is.
    return "builder:" + name


@dataclass(frozen=True)
class RunSpec:
    """One fully specified simulation: what to build, load and run.

    ``processor`` is a registry name unless ``processor_spec`` carries an
    inline :class:`~repro.describe.PipelineSpec`; either way workers
    rebuild the model from the description, so a run crosses process
    boundaries as plain picklable data.
    """

    processor: str
    workload: str
    scale: int = 1
    engine: EngineVariant = field(default_factory=lambda: engine_variant("interpreted"))
    max_cycles: int = None
    max_instructions: int = None
    repeat: int = 0
    processor_spec: PipelineSpec = None

    def __post_init__(self):
        object.__setattr__(self, "engine", engine_variant(self.engine))

    @property
    def run_id(self):
        """Human-readable identity, used for report rows and pytest ids."""
        suffix = "#r%d" % self.repeat if self.repeat else ""
        return "%s/%s@%d/%s%s" % (
            self.processor,
            self.workload,
            self.scale,
            self.engine.label,
            suffix,
        )

    def identity(self):
        """Everything the simulated outcome (and cost) depends on, as data."""
        return {
            "version": repro.__version__,
            "processor": _processor_fingerprint(self.processor, self.processor_spec),
            "workload": {
                "name": self.workload,
                "scale": self.scale,
                "digest": _workload_digest(self.workload, self.scale),
            },
            "engine": self.engine.identity(),
            "max_cycles": self.max_cycles,
            "max_instructions": self.max_instructions,
            "repeat": self.repeat,
        }

    def fingerprint(self):
        """Stable content hash keying the :class:`~repro.campaign.store.ResultStore`.

        Memoized per instance: the hash re-assembles the workload source,
        and planner, runner and CLI status all key by it repeatedly.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            canonical = json.dumps(self.identity(), sort_keys=True, default=str)
            cached = hashlib.sha256(
                ("campaign-run-v1:" + canonical).encode("utf-8")
            ).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached


def _tuple(value):
    if value is None:
        return ()
    if isinstance(value, (str, PipelineSpec)):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment campaign: a grid plus explicit extra runs.

    * ``processors`` — registry names, inline ``PipelineSpec``s, or the
      string ``"all"`` for every registered model;
    * ``workloads`` — workload names or ``"all"`` for the six paper kernels;
    * ``scales`` — workload scale factors (the grid crosses each workload
      with each scale);
    * ``engines`` — backend strings, ``EngineOptions`` or
      :class:`EngineVariant`s;
    * ``max_cycles`` / ``max_instructions`` — per-run simulation budgets;
    * ``repeats`` — how many times each grid point runs (each repeat is a
      distinct fingerprint, for wall-clock variance studies);
    * ``max_retries`` — how many times the runner re-executes a failing
      run before recording it as failed (the retry budget; retries sleep
      ``retry_backoff_seconds * 2**round`` between rounds).  Execution
      policy only: neither knob participates in run fingerprints, so
      changing them never invalidates a store;
    * ``runs`` — explicit :class:`RunSpec`s appended verbatim after the grid.

    Pairings a model's ISA subset cannot execute are dropped at planning
    time and reported in :attr:`~repro.campaign.planner.CampaignPlan.skipped`.
    """

    name: str
    processors: tuple = (ALL,)
    workloads: tuple = (ALL,)
    scales: tuple = (1,)
    engines: tuple = ("interpreted",)
    max_cycles: int = None
    max_instructions: int = None
    repeats: int = 1
    max_retries: int = 0
    retry_backoff_seconds: float = 0.1
    runs: tuple = ()
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "processors", _tuple(self.processors))
        object.__setattr__(self, "workloads", _tuple(self.workloads))
        object.__setattr__(self, "scales", _tuple(self.scales))
        object.__setattr__(self, "engines", _tuple(self.engines))
        object.__setattr__(self, "runs", _tuple(self.runs))

    def engine_variants(self):
        """The engine axis, normalised to :class:`EngineVariant`s."""
        return tuple(engine_variant(value) for value in self.engines)

    def validate(self):
        """Check internal consistency; raises :class:`CampaignError` on problems."""
        problems = []
        if not self.name:
            problems.append("campaign has no name")
        if not self.processors and not self.runs:
            problems.append("campaign declares no processors and no explicit runs")
        # An empty workload axis is legal: such a spec only enumerates its
        # processor axis (campaign_processors); *planning* one is rejected
        # by plan_campaign's zero-run guard instead.
        if not self.scales:
            problems.append("campaign declares no scales")
        for scale in self.scales:
            if not isinstance(scale, int) or scale < 1:
                problems.append("bad scale %r (need a positive integer)" % (scale,))
        if not self.engines and not self.runs:
            problems.append("campaign declares no engine variants")
        try:
            variants = self.engine_variants()
        except CampaignError as error:
            problems.append(str(error))
            variants = ()
        labels = [variant.label for variant in variants]
        if len(set(labels)) != len(labels):
            problems.append("duplicate engine-variant labels: %s" % ", ".join(labels))
        if not isinstance(self.repeats, int) or self.repeats < 1:
            problems.append("bad repeats %r (need a positive integer)" % (self.repeats,))
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            problems.append(
                "bad max_retries %r (need a non-negative integer)" % (self.max_retries,)
            )
        if (
            not isinstance(self.retry_backoff_seconds, (int, float))
            or self.retry_backoff_seconds < 0
        ):
            problems.append(
                "bad retry_backoff_seconds %r (need a non-negative number)"
                % (self.retry_backoff_seconds,)
            )
        for run in self.runs:
            if not isinstance(run, RunSpec):
                problems.append("explicit run %r is not a RunSpec" % (run,))
        for processor in self.processors:
            if not isinstance(processor, (str, PipelineSpec)):
                problems.append(
                    "bad processor-axis entry %r (need a registry name or a PipelineSpec)"
                    % (processor,)
                )
        if problems:
            raise CampaignError(
                "invalid campaign %r:\n  - %s" % (self.name, "\n  - ".join(problems))
            )
        return True

    # -- CLI / file interchange ----------------------------------------------
    def to_dict(self):
        """The campaign as JSON-compatible data (inline specs unsupported)."""
        for processor in self.processors:
            if isinstance(processor, PipelineSpec):
                raise CampaignError(
                    "campaign %r holds an inline PipelineSpec (%r); only "
                    "registry names serialise to JSON" % (self.name, processor.name)
                )
        if self.runs:
            raise CampaignError(
                "campaign %r holds explicit RunSpecs; only grid campaigns "
                "serialise to JSON" % self.name
            )
        data = {
            "name": self.name,
            "processors": list(self.processors),
            "workloads": list(self.workloads),
            "scales": list(self.scales),
            "engines": [
                {
                    "label": variant.label,
                    "options": asdict(variant.options or EngineOptions()),
                    "use_decode_cache": variant.use_decode_cache,
                }
                for variant in self.engine_variants()
            ],
            "repeats": self.repeats,
            "max_retries": self.max_retries,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "description": self.description,
        }
        if self.max_cycles is not None:
            data["max_cycles"] = self.max_cycles
        if self.max_instructions is not None:
            data["max_instructions"] = self.max_instructions
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a grid campaign from :meth:`to_dict` output (or CLI JSON)."""
        engines = []
        for entry in data.get("engines", ("interpreted",)):
            if isinstance(entry, str):
                engines.append(entry)
            elif isinstance(entry, dict):
                options = entry.get("options") or {}
                if "backend" in entry and "backend" not in options:
                    options = dict(options, backend=entry["backend"])
                engines.append(
                    EngineVariant(
                        label=entry.get("label") or options.get("backend", "interpreted"),
                        options=EngineOptions(**options),
                        use_decode_cache=entry.get("use_decode_cache", True),
                    )
                )
            else:
                raise CampaignError("bad engine entry %r in campaign data" % (entry,))
        spec = cls(
            name=data["name"],
            processors=tuple(data.get("processors", (ALL,))),
            workloads=tuple(data.get("workloads", (ALL,))),
            scales=tuple(data.get("scales", (1,))),
            engines=tuple(engines),
            max_cycles=data.get("max_cycles"),
            max_instructions=data.get("max_instructions"),
            repeats=data.get("repeats", 1),
            max_retries=data.get("max_retries", 0),
            retry_backoff_seconds=data.get("retry_backoff_seconds", 0.1),
            description=data.get("description", ""),
        )
        spec.validate()
        return spec
