"""Content-addressed, fault-tolerant persistence for campaign results.

A :class:`ResultStore` is a directory of JSON-lines shard files
(``shards/NNN.jsonl``; the shard is chosen by the fingerprint's leading
hex digits): one line per completed run, keyed by the run's content
fingerprint.  Appending is the only write operation, so a store survives
interrupted campaigns (every line already written is a finished run) and
re-running a campaign against the same store skips every fingerprint it
already holds — incremental experiments for free.

The layer is built to survive the failure modes a long-running sweep
harness actually hits:

* **Torn writes never brick a store.**  Appends go through
  write + flush + ``fsync`` under a per-shard advisory file lock
  (``fcntl``/``msvcrt``, with a lockfile spin fallback), and the loader
  *quarantines* corrupt or truncated lines — skip, count, report via
  :meth:`ResultStore.health` — instead of raising.  A writer killed
  mid-append loses at most its own last line.
* **Concurrent writers are safe.**  The per-shard locks serialise
  appends from multiple processes; duplicate fingerprints (two campaigns
  racing on the same run) resolve deterministically: the last line wins.
* **Stores are migratable and compactable.**  The legacy single-file
  layout (``results.jsonl``) is auto-detected and stays readable;
  :meth:`ResultStore.compact` rewrites everything into clean shards
  atomically (temp file + rename, per shard, under the shard's lock),
  dropping duplicate-fingerprint lines and quarantined garbage.

Failed runs are persisted too: a :class:`RunResult` whose ``kind`` is
``"failed"`` carries the error and traceback of a run that exhausted its
retry budget, so ``status``/``report`` can show failure rows.  A failed
record never satisfies a cache lookup in the runner — re-running the
campaign retries the run, and a success overwrites the failure by the
last-line-wins rule.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field

RESULTS_FILENAME = "results.jsonl"
SHARDS_DIRNAME = "shards"
META_FILENAME = "store.json"
DEFAULT_SHARD_COUNT = 16

#: Record kinds a store line may carry.
KIND_RESULT = "result"
KIND_FAILED = "failed"

try:  # POSIX advisory locks
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None
try:  # Windows advisory locks
    import msvcrt
except ImportError:  # pragma: no cover - platform dependent
    msvcrt = None


@dataclass
class RunResult:
    """The structured outcome of one simulation run.

    ``stats`` is the engine's statistics summary (cycles, CPI, stalls,
    retirement counters); ``generation`` is the
    :class:`~repro.core.generator.GenerationReport` summary, which carries
    the schedule/plan cache hit indicators; ``memory`` is the memory
    system's :meth:`~repro.memory.memory_system.MemorySystem.statistics_summary`
    (per-level hit/miss/writeback counters and rates — empty for results
    stored before the field existed).  ``cached`` is transient: it marks
    results served from a store instead of executed, and is never
    persisted as ``True``.

    ``kind`` distinguishes successful ``"result"`` records from
    ``"failed"`` ones; a failed record holds the error summary and full
    traceback in ``error``/``error_details`` and the number of
    ``attempts`` the runner spent before giving up.
    """

    fingerprint: str
    campaign: str
    run_id: str
    processor: str
    workload: str
    scale: int
    engine: str
    backend: str
    repeat: int
    cycles: int
    instructions: int
    final_r0: int
    finish_reason: str
    wall_seconds: float
    stats: dict = field(default_factory=dict)
    generation: dict = field(default_factory=dict)
    memory: dict = field(default_factory=dict)
    worker_pid: int = 0
    cached: bool = False
    kind: str = KIND_RESULT
    error: str = ""
    error_details: str = ""
    attempts: int = 1

    @property
    def ok(self):
        """True for a successful run record, False for a ``"failed"`` row."""
        return self.kind != KIND_FAILED

    @property
    def cpi(self):
        # A zero-instruction run (failed row, budget of zero) has no
        # measurable CPI; degrade to 0.0 rather than leaking inf into
        # tables and CSV/JSON exports (the zero-wall-guard convention).
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def cycles_per_second(self):
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    def to_json_dict(self):
        data = asdict(self)
        data.pop("cached")
        return data

    @classmethod
    def from_json_dict(cls, data):
        known = {name for name in cls.__dataclass_fields__ if name != "cached"}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass(frozen=True)
class QuarantinedLine:
    """One store line the loader could not parse (and skipped)."""

    file: str
    line: int
    reason: str
    sample: str


@dataclass(frozen=True)
class CompactionReport:
    """What :meth:`ResultStore.compact` did."""

    results: int
    shards: int
    duplicates_dropped: int
    quarantined_dropped: int
    migrated_legacy: bool


def shard_index(fingerprint, shard_count):
    """The shard a fingerprint lives in: its leading hex digits, mod count.

    Campaign fingerprints are sha256 hex, so the prefix is uniform;
    anything else (hand-written test fingerprints) is re-hashed so every
    string still lands deterministically in exactly one shard.
    """
    try:
        prefix = int(fingerprint[:8], 16)
    except (ValueError, TypeError):
        digest = hashlib.sha256(str(fingerprint).encode("utf-8")).hexdigest()
        prefix = int(digest[:8], 16)
    return prefix % shard_count


class ShardLock:
    """An advisory, cross-process exclusive lock on one store file.

    Locking goes through ``fcntl.flock`` (POSIX) or ``msvcrt.locking``
    (Windows) on a sidecar ``*.lock`` file; when neither is available the
    sidecar itself is the lock (``O_CREAT | O_EXCL`` spin with a stale
    timeout).  The elapsed wait is recorded on ``wait_seconds`` so the
    store can report lock contention as a metric.
    """

    def __init__(self, path, timeout=30.0, poll_seconds=0.005):
        self.path = os.fspath(path) + ".lock"
        self.timeout = timeout
        self.poll_seconds = poll_seconds
        self.wait_seconds = 0.0
        self._fd = None
        self._exclusive_file = False

    def acquire(self):
        start = time.perf_counter()
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        elif msvcrt is not None:  # pragma: no cover - Windows only
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT)
            deadline = start + self.timeout
            while True:
                try:
                    os.lseek(self._fd, 0, os.SEEK_SET)
                    msvcrt.locking(self._fd, msvcrt.LK_NBLCK, 1)
                    break
                except OSError:
                    if time.perf_counter() > deadline:
                        os.close(self._fd)
                        self._fd = None
                        raise TimeoutError("timed out locking %s" % self.path) from None
                    time.sleep(self.poll_seconds)
        else:  # pragma: no cover - exercised via _force_fallback in tests
            self._acquire_fallback(start)
        self.wait_seconds = time.perf_counter() - start
        return self

    def _acquire_fallback(self, start):
        """Lockfile spin: the sidecar's existence is the lock."""
        deadline = start + self.timeout
        while True:
            try:
                self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL)
                self._exclusive_file = True
                return
            except FileExistsError:
                if time.perf_counter() > deadline:
                    # Assume the holder died; break the stale lock.
                    with contextlib.suppress(OSError):
                        os.unlink(self.path)
                    deadline = time.perf_counter() + self.timeout
                time.sleep(self.poll_seconds)

    def release(self):
        if self._fd is None:
            return
        try:
            if self._exclusive_file:
                os.close(self._fd)
                with contextlib.suppress(OSError):
                    os.unlink(self.path)
            elif fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
            elif msvcrt is not None:  # pragma: no cover - Windows only
                os.lseek(self._fd, 0, os.SEEK_SET)
                msvcrt.locking(self._fd, msvcrt.LK_UNLCK, 1)
                os.close(self._fd)
        finally:
            self._fd = None
            self._exclusive_file = False

    def __enter__(self):
        return self.acquire()

    def __exit__(self, *exc_info):
        self.release()


class ResultStore:
    """Fingerprint-keyed store of :class:`RunResult`s on disk.

    The in-memory index is loaded lazily and kept in sync with appends.
    On duplicate fingerprints (e.g. a store written by two concurrent
    campaigns) the **last line wins**: the index keeps the values of the
    most recently appended record under the key position of the *first*
    appearance, so iteration order stays stable while contents reflect
    the newest write.  :meth:`results` documents (and tests pin) exactly
    that contract.
    """

    def __init__(self, path, shard_count=None):
        self.path = os.fspath(path)
        self._index = None
        self._quarantined = ()
        self._requested_shard_count = shard_count
        self._shard_count = None
        #: Cross-process lock bookkeeping, for the campaign metrics snapshot.
        self.counters = {"lock_wait_seconds": 0.0, "lock_acquisitions": 0}

    # -- layout ---------------------------------------------------------------
    @property
    def results_path(self):
        """The legacy single-file location (kept readable, never written)."""
        return os.path.join(self.path, RESULTS_FILENAME)

    @property
    def shards_path(self):
        return os.path.join(self.path, SHARDS_DIRNAME)

    @property
    def meta_path(self):
        return os.path.join(self.path, META_FILENAME)

    @property
    def shard_count(self):
        if self._shard_count is None:
            meta = self._read_meta()
            if meta and isinstance(meta.get("shard_count"), int) and meta["shard_count"] > 0:
                self._shard_count = meta["shard_count"]
            else:
                self._shard_count = self._requested_shard_count or DEFAULT_SHARD_COUNT
        return self._shard_count

    def _read_meta(self):
        try:
            with open(self.meta_path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _write_meta(self):
        payload = {"layout_version": 1, "shard_count": self.shard_count}
        tmp = self.meta_path + ".tmp.%d" % os.getpid()
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self.meta_path)

    def shard_path(self, fingerprint):
        """The shard file a fingerprint's record belongs in."""
        return os.path.join(
            self.shards_path, "%03d.jsonl" % shard_index(fingerprint, self.shard_count)
        )

    def _shard_files(self):
        try:
            names = sorted(os.listdir(self.shards_path))
        except FileNotFoundError:
            return []
        return [
            os.path.join(self.shards_path, name)
            for name in names
            if name.endswith(".jsonl")
        ]

    def layout(self):
        """``"sharded"``, ``"legacy"``, ``"mixed"`` or ``"empty"``."""
        legacy = os.path.exists(self.results_path)
        sharded = bool(self._shard_files())
        if legacy and sharded:
            return "mixed"
        if sharded:
            return "sharded"
        if legacy:
            return "legacy"
        return "empty"

    # -- loading --------------------------------------------------------------
    def _load_file(self, path, index, quarantined):
        try:
            handle = open(path, encoding="utf-8")
        except FileNotFoundError:
            return
        relative = os.path.relpath(path, self.path)
        with handle:
            for lineno, line in enumerate(handle, start=1):
                text = line.strip()
                if not text:
                    continue
                try:
                    data = json.loads(text)
                    if not isinstance(data, dict):
                        raise ValueError("line is not a JSON object")
                    result = RunResult.from_json_dict(data)
                except Exception as error:  # corrupt/truncated: quarantine
                    quarantined.append(
                        QuarantinedLine(
                            file=relative,
                            line=lineno,
                            reason="%s: %s" % (type(error).__name__, error),
                            sample=text[:120],
                        )
                    )
                    continue
                index[result.fingerprint] = result

    def _ensure_loaded(self):
        if self._index is not None:
            return self._index
        index = {}
        quarantined = []
        # Legacy first, shards after: appends always land in shards, so on
        # duplicate fingerprints the shard (newer) record wins.
        self._load_file(self.results_path, index, quarantined)
        for path in self._shard_files():
            self._load_file(path, index, quarantined)
        self._index = index
        self._quarantined = tuple(quarantined)
        return index

    def load(self):
        """The full fingerprint → :class:`RunResult` index (reads the files once)."""
        return dict(self._ensure_loaded())

    def refresh(self):
        """Drop the in-memory index; the next access re-reads the files."""
        self._index = None
        self._quarantined = ()

    # -- writing --------------------------------------------------------------
    def append(self, result):
        """Persist one result as one JSON line, crash- and race-safe.

        The line goes to the fingerprint's shard under that shard's
        advisory lock and is flushed and ``fsync``'d before the lock is
        released, so a concurrent writer can never interleave mid-line
        and a killed writer can lose only a line the OS never promised.
        A torn tail left by a killed writer (no trailing newline) is
        sealed with a newline first, so the junk stays its own
        quarantined line instead of corrupting this record too.
        """
        os.makedirs(self.shards_path, exist_ok=True)
        if not os.path.exists(self.meta_path):
            self._write_meta()
        path = self.shard_path(result.fingerprint)
        line = json.dumps(result.to_json_dict(), sort_keys=True) + "\n"
        with ShardLock(path) as lock, open(path, "ab") as handle:
            if handle.tell() > 0:
                with open(path, "rb") as reader:
                    reader.seek(-1, os.SEEK_END)
                    if reader.read(1) != b"\n":
                        handle.write(b"\n")
            handle.write(line.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        self.counters["lock_wait_seconds"] += lock.wait_seconds
        self.counters["lock_acquisitions"] += 1
        self._ensure_loaded()[result.fingerprint] = result

    # -- health and compaction ------------------------------------------------
    def quarantined(self):
        """The :class:`QuarantinedLine`s the last load skipped."""
        self._ensure_loaded()
        return self._quarantined

    def health(self):
        """Store health as plain data (the ``fsck`` subcommand's payload)."""
        index = self._ensure_loaded()
        failed = sum(1 for result in index.values() if not result.ok)
        return {
            "path": self.path,
            "layout": self.layout(),
            "shard_count": self.shard_count,
            "shard_files": len(self._shard_files()),
            "results": len(index),
            "ok": len(index) - failed,
            "failed": failed,
            "quarantined": len(self._quarantined),
            "quarantined_lines": [asdict(line) for line in self._quarantined],
        }

    def compact(self, shard_count=None):
        """Rewrite the store as clean shards; returns a :class:`CompactionReport`.

        Compaction migrates a legacy ``results.jsonl`` store to the
        sharded layout, drops duplicate-fingerprint lines (keeping the
        last write, like the loader) and sheds quarantined garbage.  Each
        shard is rewritten atomically — temp file, ``fsync``, rename —
        under the shard's advisory lock, so concurrent appenders are
        serialised per shard and a crash mid-compaction leaves only
        intact files behind.  The surviving index is bit-identical to
        what :meth:`load` returned before compaction.
        """
        self.refresh()
        raw_lines = self._count_data_lines()
        index = self._ensure_loaded()
        quarantined = len(self._quarantined)
        if shard_count is not None and shard_count > 0:
            self._shard_count = shard_count
        migrated = os.path.exists(self.results_path)

        buckets = {}
        for fingerprint, result in index.items():
            buckets.setdefault(
                shard_index(fingerprint, self.shard_count), []
            ).append(result)

        os.makedirs(self.shards_path, exist_ok=True)
        stale = {
            os.path.join(self.shards_path, name)
            for name in os.listdir(self.shards_path)
            if name.endswith(".jsonl")
        }
        for idx, results in sorted(buckets.items()):
            path = os.path.join(self.shards_path, "%03d.jsonl" % idx)
            tmp = path + ".tmp.%d" % os.getpid()
            with ShardLock(path):
                with open(tmp, "w", encoding="utf-8") as handle:
                    for result in results:
                        handle.write(
                            json.dumps(result.to_json_dict(), sort_keys=True) + "\n"
                        )
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            stale.discard(path)
        for path in sorted(stale):
            with ShardLock(path), contextlib.suppress(FileNotFoundError):
                os.unlink(path)
        if migrated:
            with ShardLock(self.results_path), contextlib.suppress(FileNotFoundError):
                os.unlink(self.results_path)
        self._write_meta()
        self.refresh()
        return CompactionReport(
            results=len(index),
            shards=len(buckets),
            duplicates_dropped=max(raw_lines - quarantined - len(index), 0),
            quarantined_dropped=quarantined,
            migrated_legacy=migrated,
        )

    def _count_data_lines(self):
        """Non-blank line count across every store file (for compaction stats)."""
        total = 0
        for path in [self.results_path, *self._shard_files()]:
            try:
                with open(path, encoding="utf-8") as handle:
                    total += sum(1 for line in handle if line.strip())
            except FileNotFoundError:
                continue
        return total

    # -- mapping-style access --------------------------------------------------
    def get(self, fingerprint):
        return self._ensure_loaded().get(fingerprint)

    def __contains__(self, fingerprint):
        return fingerprint in self._ensure_loaded()

    def __len__(self):
        return len(self._ensure_loaded())

    def results(self):
        """All stored records, in stable first-appended order.

        Duplicate fingerprints collapse to a single entry whose *values*
        come from the last line written (last write wins) while the
        *position* is where the fingerprint first appeared — re-appending
        a run updates it in place without reshuffling the sequence.
        Includes ``"failed"`` records; filter on :attr:`RunResult.ok` for
        successful runs only.
        """
        return tuple(self._ensure_loaded().values())

    def fingerprints(self):
        return tuple(self._ensure_loaded())
