"""Content-addressed, append-only persistence for campaign results.

A :class:`ResultStore` is a directory holding one JSON-lines file
(``results.jsonl``): one line per completed run, keyed by the run's
content fingerprint.  Appending is the only write operation, so a store
survives interrupted campaigns (every line already written is a finished
run) and re-running a campaign against the same store skips every
fingerprint it already holds — incremental experiments for free.

The store is written from the orchestrating process only (workers hand
results back over the pool), so no cross-process locking is needed.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

RESULTS_FILENAME = "results.jsonl"


@dataclass
class RunResult:
    """The structured outcome of one simulation run.

    ``stats`` is the engine's statistics summary (cycles, CPI, stalls,
    retirement counters); ``generation`` is the
    :class:`~repro.core.generator.GenerationReport` summary, which carries
    the schedule/plan cache hit indicators; ``memory`` is the memory
    system's :meth:`~repro.memory.memory_system.MemorySystem.statistics_summary`
    (per-level hit/miss/writeback counters and rates — empty for results
    stored before the field existed).  ``cached`` is transient: it marks
    results served from a store instead of executed, and is never
    persisted as ``True``.
    """

    fingerprint: str
    campaign: str
    run_id: str
    processor: str
    workload: str
    scale: int
    engine: str
    backend: str
    repeat: int
    cycles: int
    instructions: int
    final_r0: int
    finish_reason: str
    wall_seconds: float
    stats: dict = field(default_factory=dict)
    generation: dict = field(default_factory=dict)
    memory: dict = field(default_factory=dict)
    worker_pid: int = 0
    cached: bool = False

    @property
    def cpi(self):
        if self.instructions == 0:
            return float("inf")
        return self.cycles / self.instructions

    @property
    def cycles_per_second(self):
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    def to_json_dict(self):
        data = asdict(self)
        data.pop("cached")
        return data

    @classmethod
    def from_json_dict(cls, data):
        known = {name for name in cls.__dataclass_fields__ if name != "cached"}
        return cls(**{key: value for key, value in data.items() if key in known})


class ResultStore:
    """Fingerprint-keyed store of :class:`RunResult`s on disk.

    The in-memory index is loaded lazily and kept in sync with appends;
    on duplicate fingerprints (e.g. a store written by two concurrent
    campaigns) the last line wins, matching the append order.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._index = None

    @property
    def results_path(self):
        return os.path.join(self.path, RESULTS_FILENAME)

    def _ensure_loaded(self):
        if self._index is not None:
            return self._index
        index = {}
        try:
            with open(self.results_path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    result = RunResult.from_json_dict(json.loads(line))
                    index[result.fingerprint] = result
        except FileNotFoundError:
            pass
        self._index = index
        return index

    def load(self):
        """The full fingerprint → :class:`RunResult` index (reads the file once)."""
        return dict(self._ensure_loaded())

    def refresh(self):
        """Drop the in-memory index; the next access re-reads the file."""
        self._index = None

    def append(self, result):
        """Persist one result (one JSON line, flushed before returning)."""
        os.makedirs(self.path, exist_ok=True)
        with open(self.results_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(result.to_json_dict(), sort_keys=True) + "\n")
        self._ensure_loaded()[result.fingerprint] = result

    def get(self, fingerprint):
        return self._ensure_loaded().get(fingerprint)

    def __contains__(self, fingerprint):
        return fingerprint in self._ensure_loaded()

    def __len__(self):
        return len(self._ensure_loaded())

    def results(self):
        """All stored results, in insertion order."""
        return tuple(self._ensure_loaded().values())

    def fingerprints(self):
        return tuple(self._ensure_loaded())
