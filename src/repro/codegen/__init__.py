"""Source-level simulator generation (``EngineOptions(backend="generated")``).

The third engine backend: where :mod:`repro.compiled` partially evaluates
a model into closures, this package emits the model as real Python
source — a straight-line per-cycle ``step()`` with the dispatch tables,
capacity literals and issue gating baked into the text — ``exec``s it
into a module and disk-caches the source under the spec fingerprint.

Layout:

* :mod:`repro.codegen.emit` — the emitter (net + static schedule -> source);
* :mod:`repro.codegen.cache` — fingerprint-keyed module cache (memory + disk);
* :mod:`repro.codegen.runtime` — binds an emitted module to a live net;
* :mod:`repro.codegen.engine` — :class:`GeneratedEngine`, the run-time shell.
"""

from repro.codegen.cache import CODEGEN_CACHE, ModuleCache, codegen_key, default_cache_dir
from repro.codegen.emit import CODEGEN_SOURCE_VERSION, EmitReport, emit_module_source
from repro.codegen.engine import GeneratedEngine
from repro.codegen.runtime import CodegenStructureError, build_runtime, structure_digest

__all__ = [
    "CODEGEN_CACHE",
    "CODEGEN_SOURCE_VERSION",
    "CodegenStructureError",
    "EmitReport",
    "GeneratedEngine",
    "ModuleCache",
    "build_runtime",
    "codegen_key",
    "default_cache_dir",
    "emit_module_source",
    "structure_digest",
]
