"""Disk + in-memory cache of emitted simulator modules.

Emitting and ``exec``-ing a model's source costs a few milliseconds; doing
it once per process (or once per machine) is enough, because the emitted
code depends only on

* the spec fingerprint (``net.spec_fingerprint``, the PR 2-5 content-hash
  plumbing that already keys the schedule and plan caches),
* the emit-relevant engine options (``use_sorted_transitions``,
  ``two_list_everywhere``, ``collect_utilization``, plus the emission mode
  and ``lanes`` for batched modules — run-length knobs like
  ``max_cycles``/``stall_limit`` are deliberately excluded),
* ``repro.__version__`` and the emitter's own
  :data:`~repro.codegen.emit.CODEGEN_SOURCE_VERSION`.

:func:`codegen_key` hashes those into the cache key; the key names both
the on-disk file (``<dir>/<key>.py``) and the in-process module memo.
The cache directory defaults to ``~/.cache/repro/codegen`` (honouring
``XDG_CACHE_HOME``) and can be pointed elsewhere with the
``REPRO_CODEGEN_CACHE`` environment variable — campaign worker processes
share it, so a sweep pays one emission per model, not one per worker.

Robustness contract (exercised by ``tests/unit/test_codegen_cache.py``):
cold lookups emit and atomically write the source; warm lookups load
without re-emitting; any corrupted, truncated or mismatched cached file
falls back to a fresh emission that overwrites it, never to a crash.
Writes are best-effort — an unwritable cache directory degrades to
emit-per-process, not to an error.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import tempfile
import types


def default_cache_dir():
    """Resolve the on-disk cache directory (see module docstring)."""
    override = os.environ.get("REPRO_CODEGEN_CACHE")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "codegen")


#: Trace categories that change the emitted source (the others — squash,
#: token, cache — ride the shared engine/memory methods and need no
#: emitted call sites).
EMISSION_TRACE_CATEGORIES = ("firing", "stall")


def emit_trace_categories(options):
    """The emission-relevant trace categories of ``options``, or ``()``.

    Empty whenever tracing is off *or* only categories that need no
    emitted call sites are enabled — in both cases the emitted source and
    the cache key are exactly the trace-unaware ones.
    """
    config = getattr(options, "trace", None)
    if config is None or not getattr(config, "enabled", False):
        return ()
    categories = getattr(config, "categories", ())
    return tuple(c for c in EMISSION_TRACE_CATEGORIES if c in categories)


def codegen_key(fingerprint, options):
    """Cache key for one (spec fingerprint, engine options) combination.

    Only the options that change the emitted *source* participate; the
    repro version and the emitter version are folded in so upgrading
    either invalidates every stale entry.  The batched backend emits a
    different module shape (``make_step_batched`` with a lane loop sized
    by ``lanes``), so its mode and lane count join the key — scalar and
    batched modules never alias, and changing the batch width misses the
    old entry.  Emission-relevant trace categories join the key only when
    tracing is on (see :func:`emit_trace_categories`), so tracing-off keys
    are byte-for-byte the pre-tracing ones and warm caches stay warm.
    """
    import repro
    from repro.codegen.emit import CODEGEN_SOURCE_VERSION

    parts = [
        "repro.codegen",
        str(CODEGEN_SOURCE_VERSION),
        repro.__version__,
        fingerprint,
        "sorted=%r" % options.use_sorted_transitions,
        "twolist=%r" % options.two_list_everywhere,
        "util=%r" % options.collect_utilization,
    ]
    if options.backend == "batched":
        parts.append("batched|lanes=%d" % options.lanes)
    trace_categories = emit_trace_categories(options)
    if trace_categories:
        parts.append("trace=" + ",".join(trace_categories))
    payload = "|".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


class ModuleCache:
    """Two-level (memory, disk) cache of emitted simulator modules.

    ``directory=None`` resolves :func:`default_cache_dir` lazily on every
    access, so tests can redirect the cache through the environment after
    import.  Counters record how each module was obtained; the unit tests
    and the generation report read them.
    """

    def __init__(self, directory=None):
        self.directory = directory
        self._modules = {}
        self.emits = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.invalid = 0

    # -- bookkeeping ------------------------------------------------------
    def path_for(self, key):
        return os.path.join(self.directory or default_cache_dir(), key + ".py")

    def stats(self):
        return {
            "entries": len(self._modules),
            "emits": self.emits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "invalid": self.invalid,
        }

    def clear(self, counters=True):
        """Drop the in-memory memo (the disk entries survive)."""
        self._modules.clear()
        if counters:
            self.emits = self.memory_hits = self.disk_hits = self.invalid = 0

    # -- the lookup protocol ----------------------------------------------
    def module_for(self, key, emit_source):
        """Return ``(module, status)`` for ``key``.

        ``emit_source`` is a zero-argument callable producing the source
        on a miss.  ``status`` is ``"memory"``, ``"disk"`` or
        ``"emitted"``.
        """
        module = self._modules.get(key)
        if module is not None:
            self.memory_hits += 1
            return module, "memory"

        path = self.path_for(key)
        cached = self._read(path)
        if cached is not None:
            module = self._exec(key, cached, path)
            if module is not None:
                self.disk_hits += 1
                self._modules[key] = module
                return module, "disk"
            # Corrupted/truncated/foreign file: fall through to re-emission.
            self.invalid += 1

        source = emit_source()
        self.emits += 1
        module = self._exec(key, source, path)
        if module is None:  # pragma: no cover - emitter bug, not cache state
            raise RuntimeError("freshly emitted codegen module failed to execute")
        self._write(path, source)
        self._modules[key] = module
        return module, "emitted"

    def replace(self, key, source):
        """Overwrite ``key`` with freshly emitted ``source`` (staleness path)."""
        module = self._exec(key, source, self.path_for(key))
        if module is None:  # pragma: no cover - emitter bug
            raise RuntimeError("freshly emitted codegen module failed to execute")
        self._write(self.path_for(key), source)
        self._modules[key] = module
        return module

    # -- internals --------------------------------------------------------
    @staticmethod
    def _read(path):
        try:
            with open(path, encoding="utf-8") as handle:
                return handle.read()
        except OSError:
            return None

    @staticmethod
    def _write(path, source):
        """Atomic best-effort write: concurrent campaign workers may race
        on the same key, and a torn write must never leave a half-file."""
        directory = os.path.dirname(path)
        # An unwritable cache dir degrades to emit-per-process.
        with contextlib.suppress(OSError):
            os.makedirs(directory, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="w",
                encoding="utf-8",
                dir=directory,
                prefix=".tmp-",
                suffix=".py",
                delete=False,
            )
            try:
                with handle:
                    handle.write(source)
                os.replace(handle.name, path)
            except BaseException:
                os.unlink(handle.name)
                raise

    @staticmethod
    def _exec(key, source, path):
        """Compile + execute ``source``; ``None`` on any validation failure."""
        try:
            code = compile(source, path, "exec")
            module = types.ModuleType("repro_codegen_" + key)
            module.__source__ = source
            exec(code, module.__dict__)
        except Exception:
            return None
        if getattr(module, "CODEGEN_KEY", None) != key:
            return None
        # Scalar modules export make_step, batched ones make_step_batched;
        # a cached file with neither is not one of ours.
        if not callable(getattr(module, "make_step", None)) and not callable(
            getattr(module, "make_step_batched", None)
        ):
            return None
        return module


#: Process-wide module cache used by :class:`repro.codegen.GeneratedEngine`.
CODEGEN_CACHE = ModuleCache()
