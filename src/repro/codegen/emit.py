"""Source-level simulator generation: emit one RCPN model as Python code.

Where :mod:`repro.compiled` partially evaluates the model into *closures*,
this module performs the last step of the paper's generation idea and
emits real Python **source**: one straight-line ``step(cycle, stats)``
function per model in which every static decision is already text —

* the static schedule's dispatch tables appear as ``if/elif`` chains on
  the token's operation class, one inlined attempt per candidate
  transition in arc-priority order;
* capacity checks are literal integer comparisons against the stage
  capacities (``s3._occupancy < 2``), or absent entirely when the
  compile-time shape analysis (:func:`repro.compiled.plan.
  transition_capacity_shape`, reused here as the emitter's IR) proves the
  transition capacity-free;
* token movement is flattened to direct field operations on the
  preallocated place/stage objects (list ``append``/``remove``,
  ``_occupancy`` adjustments) instead of ``Place.deposit``/``remove``
  calls, with residence delays folded into literals;
* issue/port budgets are specialised away: the multi-issue gate wrappers
  are unwrapped at emit time into direct arbiter calls with the port as a
  source literal (see :func:`repro.codegen.runtime.guard_plan`);
* guard-free transitions fire with no call at all.

The emitted module is net-object free — ``make_step(rt)`` binds the live
places/stages/guards by index (:func:`repro.codegen.runtime.
build_runtime`) — so one emitted source is reusable for every rebuild of
the same spec, which is what makes it disk-cacheable under the spec
fingerprint (:mod:`repro.codegen.cache`).

Observable behaviour is contractually bit-identical to the interpreted
engine: same statistics counters, same attempt order, same stall
accounting, same emission-drain timing.  The backend-equivalence matrix
(``tests/integration/test_backend_equivalence.py``) enforces this for
every registered model and kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiled.plan import transition_capacity_shape

from repro.codegen.runtime import action_plan, guard_plan, structure_digest

#: Bumped whenever the emitted code changes shape; part of the cache key so
#: stale on-disk modules from older emitters are never loaded.
CODEGEN_SOURCE_VERSION = 1


@dataclass
class EmitReport:
    """Specialisation statistics of one emission (mirrors ``CompiledPlan``)."""

    transitions_emitted: int = 0
    guard_free_transitions: int = 0
    capacity_free_transitions: int = 0
    single_stage_capacity_transitions: int = 0
    issue_gated_transitions: int = 0
    advance_gated_transitions: int = 0
    dispatch_entries: int = 0
    nonempty_dispatch_entries: int = 0
    places_emitted: int = 0
    single_token_places: int = 0
    source_lines: int = 0

    def summary(self):
        return {
            "transitions_compiled": self.transitions_emitted,
            "guard_free_transitions": self.guard_free_transitions,
            "capacity_free_transitions": self.capacity_free_transitions,
            "single_stage_capacity_transitions": self.single_stage_capacity_transitions,
            "issue_gated_transitions": self.issue_gated_transitions,
            "advance_gated_transitions": self.advance_gated_transitions,
            "dispatch_entries": self.dispatch_entries,
            "nonempty_dispatch_entries": self.nonempty_dispatch_entries,
            "places_compiled": self.places_emitted,
            "single_token_places": self.single_token_places,
            "source_lines": self.source_lines,
        }


class _Writer:
    def __init__(self):
        self.lines = []

    def w(self, indent, text=""):
        self.lines.append("    " * indent + text if text else "")

    def source(self):
        return "\n".join(self.lines) + "\n"


def _capacity_conjuncts(net, shape, stage_var):
    """Render one capacity shape as literal-comparison conjunct strings."""
    conjuncts = []
    if shape[0] == "single":
        stage = net.stages[shape[1]]
        conjuncts.append("%s._occupancy < %d" % (stage_var(stage), stage.capacity))
    elif shape[0] == "multi":
        for stage_name, count in shape[1]:
            stage = net.stages[stage_name]
            if stage.capacity is None or count <= 0:
                continue  # unlimited, or the departing token frees the slot
            conjuncts.append(
                "%s._occupancy <= %d" % (stage_var(stage), stage.capacity - count)
            )
        for stage_name in shape[2]:
            stage = net.stages[stage_name]
            if stage.capacity is None:
                continue
            conjuncts.append("%s._occupancy < %d" % (stage_var(stage), stage.capacity))
    return conjuncts


def emit_module_source(net, schedule, options, key=None):
    """Emit the Python source of one model's generated simulator.

    Returns ``(source, report)``.  The source defines ``make_step(rt)``
    returning the per-cycle ``step(cycle, stats) -> fired`` function; ``rt``
    is the binding dict of :func:`repro.codegen.runtime.build_runtime`.
    """
    report = EmitReport()
    places = list(schedule.order)
    stages = list(net.stages.values())
    transitions = list(net.transitions)
    place_index = {id(place): index for index, place in enumerate(places)}
    stage_index = {id(stage): index for index, stage in enumerate(stages)}
    transition_index = {id(t): index for index, t in enumerate(transitions)}

    def pvar(place):
        return "p%d" % place_index[id(place)]

    def svar(stage):
        return "s%d" % stage_index[id(stage)]

    #: Places that can ever hold a reservation token: only reservation
    #: output arcs deposit them, so this set is exact and lets the ready
    #: filter of every other place drop the ``is_instruction`` test.
    reservation_places = set()
    for transition in transitions:
        for arc in transition.reservation_outputs:
            if arc.place is not None:
                reservation_places.add(id(arc.place))

    emitted_transitions = set()
    used_stages = set()
    used_guards = set()
    used_actions = set()
    used_controls = set()
    need_pool = False
    need_res = False
    need_deposit = False
    need_entry = False
    need_rbc = False

    def classify(transition):
        index = transition_index[id(transition)]
        if index not in emitted_transitions:
            emitted_transitions.add(index)
            report.transitions_emitted += 1
            gkind = guard_plan(transition)[0]
            if gkind == "none":
                report.guard_free_transitions += 1
            elif gkind == "issue":
                report.issue_gated_transitions += 1
            elif gkind == "advance":
                report.advance_gated_transitions += 1
            shape = transition_capacity_shape(transition)
            if shape[0] == "free":
                report.capacity_free_transitions += 1
            elif shape[0] == "single":
                report.single_stage_capacity_transitions += 1

    def enable_conjuncts(transition, token_expr):
        """The enable rule as an ordered list of conjunct expressions.

        Order matters and mirrors ``SimulationEngine.is_enabled``:
        reservation inputs, then output capacity, then the guard.
        """
        index = transition_index[id(transition)]
        conjuncts = []
        for arc in transition.reservation_inputs:
            conjuncts.append("%s.has_reservation()" % pvar(arc.place))
        shape = transition_capacity_shape(transition)

        def stage_var(stage):
            used_stages.add(id(stage))
            return svar(stage)

        conjuncts.extend(_capacity_conjuncts(net, shape, stage_var))
        gkind, gbase, _gcontrol, gport, gstage = guard_plan(transition)
        if gkind == "plain":
            used_guards.add(index)
            conjuncts.append("g%d(%s, ctx)" % (index, token_expr))
        elif gkind == "issue":
            used_controls.add(index)
            conjuncts.append("c%d.may_issue(%s, ctx, %r)" % (index, token_expr, gport))
            if gbase is not None:
                used_guards.add(index)
                conjuncts.append("g%d(%s, ctx)" % (index, token_expr))
        elif gkind == "advance":
            used_controls.add(index)
            used_stages.add(id(gstage))
            conjuncts.append("c%d.may_advance(%s, %s)" % (index, token_expr, svar(gstage)))
            if gbase is not None:
                used_guards.add(index)
                conjuncts.append("g%d(%s, ctx)" % (index, token_expr))
        return conjuncts

    def fire_lines(transition, token_mode):
        """The fire rule, flattened to field operations.

        Mirrors ``SimulationEngine.fire`` step for step: firing counter,
        source removal, reservation-input consumption, action, token
        deposit (or retire), reservation-output deposits, emission drain.
        """
        nonlocal need_pool, need_res, need_deposit, need_entry, need_rbc
        index = transition_index[id(transition)]
        lines = ["tf[%r] += 1" % transition.name]

        if token_mode:
            source = transition.source
            used_stages.add(id(source.stage))
            lines.append("%s.tokens.remove(token)" % pvar(source))
            lines.append("token.place = None")
            lines.append("%s._occupancy -= 1" % svar(source.stage))

        for arc in transition.reservation_inputs:
            need_pool = True
            lines.append("pool.append(%s.take_reservation())" % pvar(arc.place))

        akind, abase, _acontrol, aport = action_plan(transition)
        token_expr = "token" if token_mode else "None"
        if akind == "issue":
            used_controls.add(index)
            lines.append("c%d.note_issue(%s, ctx, %r)" % (index, token_expr, aport))
            if abase is not None:
                used_actions.add(index)
                lines.append("a%d(%s, ctx)" % (index, token_expr))
        elif akind == "plain":
            used_actions.add(index)
            lines.append("a%d(%s, ctx)" % (index, token_expr))

        target = transition.target_place
        if token_mode and not transition.consumes_token and target is not None:
            if target.is_end:
                need_rbc = True
                lines.append("stats.instructions += 1")
                lines.append("rbc[token.opclass] += 1")
                lines.append("token.place = None")
            else:
                total = transition.delay + target.delay
                lines.append("_d = token.delay_override")
                lines.append("if _d is None:")
                lines.append("    token.ready_cycle = cycle + %d" % total)
                lines.append("else:")
                lines.append("    token.delay_override = None")
                if transition.delay:
                    lines.append("    token.ready_cycle = cycle + %d + _d" % transition.delay)
                else:
                    lines.append("    token.ready_cycle = cycle + _d")
                lines.append("token.place = %s" % pvar(target))
                used_stages.add(id(target.stage))
                lines.append("%s._occupancy += 1" % svar(target.stage))
                store = "pending" if target.two_list else "tokens"
                lines.append("%s.%s.append(token)" % (pvar(target), store))

        for arc in transition.reservation_outputs:
            place = arc.place
            if place is None or place.is_end:
                continue  # a reservation retired into end simply vanishes
            need_pool = True
            need_res = True
            producer = "token.seq" if token_mode else "None"
            total = transition.delay + place.delay
            lines.append("if pool:")
            lines.append("    _r = pool.pop()")
            lines.append("    _r.tag = %r" % transition.name)
            lines.append("    _r.delay_override = None")
            lines.append("else:")
            lines.append("    _r = RES(tag=%r)" % transition.name)
            lines.append("_r.producer_seq = %s" % producer)
            lines.append("_r.ready_cycle = cycle + %d" % total)
            lines.append("_r.place = %s" % pvar(place))
            used_stages.add(id(place.stage))
            lines.append("%s._occupancy += 1" % svar(place.stage))
            store = "pending" if place.two_list else "tokens"
            lines.append("%s.%s.append(_r)" % (pvar(place), store))

        # Emission drain: identical timing to the interpreted engine, which
        # drains the queue after *every* fire with the firing transition's
        # delay.  The queue is usually empty; the check is one attr load.
        need_deposit = True
        need_entry = True
        lines.append("_q = engine._emission_queue")
        lines.append("if _q:")
        lines.append("    engine._emission_queue = []")
        lines.append("    for _nt, _dp in _q:")
        lines.append("        if _dp is None:")
        lines.append("            _dp = entry_place_for(_nt.opclass)")
        lines.append("        stats.generated_tokens += 1")
        lines.append("        deposit(_nt, _dp, %d)" % transition.delay)
        return lines

    # ---- walk the model once to build the per-place step bodies ----------
    body = _Writer()
    indent0 = 2  # inside `def step` inside `def make_step`

    # Two-list commits first, exactly like SimulationEngine.step.
    if schedule.two_list_places:
        body.w(indent0, "# -- two-list (master/slave) commits")
        for place in schedule.two_list_places:
            pv = pvar(place)
            body.w(indent0, "if %s.pending:" % pv)
            body.w(indent0 + 1, "%s.tokens.extend(%s.pending)" % (pv, pv))
            body.w(indent0 + 1, "%s.pending = []" % pv)

    def emit_attempt_chain(indent, candidates, token_expr):
        """One if/elif chain of inlined attempts, else a stall."""
        first = True
        for transition in candidates:
            classify(transition)
            conjuncts = enable_conjuncts(transition, token_expr)
            condition = " and ".join(conjuncts) if conjuncts else "True"
            keyword = "if" if first else "elif"
            body.w(indent, "%s %s:  # %s" % (keyword, condition, transition.name))
            for line in fire_lines(transition, token_mode=True):
                body.w(indent + 1, line)
            body.w(indent + 1, "fired += 1")
            first = False
        body.w(indent, "else:")
        body.w(indent + 1, "stats.stalls += 1")

    for place in places:
        report.places_emitted += 1
        dispatch = []
        for opclass in net.operation_classes:
            candidates = schedule.transitions_for(place, opclass)
            report.dispatch_entries += 1
            if candidates:
                report.nonempty_dispatch_entries += 1
                dispatch.append((opclass, tuple(candidates)))

        pv = pvar(place)
        may_hold_reservations = id(place) in reservation_places
        single_token = place.stage.capacity == 1
        if single_token:
            report.single_token_places += 1

        body.w(indent0, "# -- place %r (stage %r)" % (place.name, place.stage.name))
        body.w(indent0, "_t = %s.tokens" % pv)
        body.w(indent0, "if _t:")
        if single_token:
            # A capacity-1 stage can hold at most one token across all of
            # its places, so the ready-snapshot list is replaced by a
            # direct look at the single stored token.
            body.w(indent0 + 1, "token = _t[0]")
            ready = "token.ready_cycle <= cycle"
            if may_hold_reservations:
                ready = "token.is_instruction and " + ready
            body.w(indent0 + 1, "if %s:" % ready)
            inner = indent0 + 2
            if dispatch:
                body.w(inner, "_oc = token.opclass")
                first = True
                for opclass, candidates in dispatch:
                    keyword = "if" if first else "elif"
                    body.w(inner, "%s _oc == %r:" % (keyword, opclass))
                    emit_attempt_chain(inner + 1, candidates, "token")
                    first = False
                body.w(inner, "else:")
                body.w(inner + 1, "stats.stalls += 1")
            else:
                body.w(inner, "stats.stalls += 1")
        else:
            if may_hold_reservations:
                comp = "[t for t in _t if t.is_instruction and t.ready_cycle <= cycle]"
            else:
                comp = "[t for t in _t if t.ready_cycle <= cycle]"
            body.w(indent0 + 1, "for token in %s:" % comp)
            body.w(indent0 + 2, "if token.place is not %s:" % pv)
            body.w(indent0 + 3, "continue  # moved by an earlier firing this cycle")
            inner = indent0 + 2
            if dispatch:
                body.w(inner, "_oc = token.opclass")
                first = True
                for opclass, candidates in dispatch:
                    keyword = "if" if first else "elif"
                    body.w(inner, "%s _oc == %r:" % (keyword, opclass))
                    emit_attempt_chain(inner + 1, candidates, "token")
                    first = False
                body.w(inner, "else:")
                body.w(inner + 1, "stats.stalls += 1")
            else:
                body.w(inner, "stats.stalls += 1")

    # Generator transitions (the instruction-independent sub-net).
    for transition in schedule.generator_transitions:
        classify(transition)
        conjuncts = enable_conjuncts(transition, "None")
        condition = " and ".join(conjuncts) if conjuncts else "True"
        limit = transition.max_firings_per_cycle
        body.w(indent0, "# -- generator %r" % transition.name)
        if limit == 1:
            body.w(indent0, "if %s:" % condition)
            for line in fire_lines(transition, token_mode=False):
                body.w(indent0 + 1, line)
            body.w(indent0 + 1, "fired += 1")
        else:
            body.w(indent0, "_n = 0")
            body.w(indent0, "while _n < %d:" % limit)
            body.w(indent0 + 1, "if not (%s):" % condition)
            body.w(indent0 + 2, "break")
            for line in fire_lines(transition, token_mode=False):
                body.w(indent0 + 1, line)
            body.w(indent0 + 1, "_n += 1")
            body.w(indent0, "fired += _n")

    if options.collect_utilization:
        body.w(indent0, "for _st in _STAGES:")
        body.w(indent0 + 1, "_st.occupancy_accumulator += _st._occupancy")

    # ---- assemble the module ---------------------------------------------
    out = _Writer()
    out.w(0, '"""Generated simulator step for model %r (repro.codegen).' % net.name)
    out.w(0, "")
    out.w(0, "Auto-generated source: do not edit.  Regenerated whenever the spec")
    out.w(0, "fingerprint, the emit-relevant engine options, the repro version or")
    out.w(0, "the codegen source version change (see repro/codegen/cache.py).")
    out.w(0, '"""')
    out.w(0, "")
    out.w(0, "CODEGEN_SOURCE_VERSION = %d" % CODEGEN_SOURCE_VERSION)
    out.w(0, "CODEGEN_KEY = %r" % key)
    out.w(0, "MODEL = %r" % net.name)
    out.w(0, "SPEC_FINGERPRINT = %r" % getattr(net, "spec_fingerprint", None))
    out.w(0, "STRUCTURE_DIGEST = %r" % structure_digest(net))
    out.w(0, "PLACES = %r" % (tuple(place.name for place in places),))
    out.w(0, "STAGES = %r" % (tuple(stage.name for stage in stages),))
    out.w(0, "TRANSITIONS = %r" % (tuple(t.name for t in transitions),))
    out.w(0, "")
    out.w(0, "")
    out.w(0, "def make_step(rt):")
    out.w(1, "engine = rt['engine']")
    out.w(1, "ctx = rt['ctx']")
    if need_deposit:
        out.w(1, "deposit = rt['deposit']")
    if need_entry:
        out.w(1, "entry_place_for = rt['entry_place_for']")
    if need_pool:
        out.w(1, "pool = rt['pool']")
    if need_res:
        out.w(1, "RES = rt['ReservationToken']")
    out.w(1, "P = rt['places']")
    out.w(1, "S = rt['stages']")
    if used_guards:
        out.w(1, "G = rt['guards']")
    if used_actions:
        out.w(1, "A = rt['actions']")
    if used_controls:
        out.w(1, "C = rt['controls']")
    for index in range(len(places)):
        out.w(1, "p%d = P[%d]" % (index, index))
    for index, stage in enumerate(stages):
        if id(stage) in used_stages:
            out.w(1, "s%d = S[%d]" % (index, index))
    for index in sorted(used_guards):
        out.w(1, "g%d = G[%d]" % (index, index))
    for index in sorted(used_actions):
        out.w(1, "a%d = A[%d]" % (index, index))
    for index in sorted(used_controls):
        out.w(1, "c%d = C[%d]" % (index, index))
    if options.collect_utilization:
        out.w(1, "_STAGES = tuple(S)")
    out.w(0, "")
    out.w(1, "def step(cycle, stats):")
    out.w(2, "fired = 0")
    out.w(2, "tf = stats.transition_firings")
    if need_rbc:
        out.w(2, "rbc = stats.retired_by_class")
    out.lines.extend(body.lines)
    out.w(2, "return fired")
    out.w(0, "")
    out.w(1, "return step")

    # Embed the specialisation report so cache hits (which skip emission)
    # can still describe the module they loaded.
    report.source_lines = len(out.lines) + 2
    out.w(0, "")
    out.w(0, "EMIT_REPORT = %r" % (report.summary(),))

    return out.source(), report
