"""Source-level simulator generation: emit one RCPN model as Python code.

Where :mod:`repro.compiled` partially evaluates the model into *closures*,
this module performs the last step of the paper's generation idea and
emits real Python **source**: one straight-line ``step(cycle, stats)``
function per model in which every static decision is already text —

* the static schedule's dispatch tables appear as ``if/elif`` chains on
  the token's operation class, one inlined attempt per candidate
  transition in arc-priority order;
* capacity checks are literal integer comparisons against the stage
  capacities (``s3._occupancy < 2``), or absent entirely when the
  compile-time shape analysis (:func:`repro.compiled.plan.
  transition_capacity_shape`, reused here as the emitter's IR) proves the
  transition capacity-free;
* token movement is flattened to direct field operations on the
  preallocated place/stage objects (list ``append``/``remove``,
  ``_occupancy`` adjustments) instead of ``Place.deposit``/``remove``
  calls, with residence delays folded into literals;
* issue/port budgets are specialised away: the multi-issue gate wrappers
  are unwrapped at emit time into direct arbiter calls with the port as a
  source literal (see :func:`repro.codegen.runtime.guard_plan`);
* guard-free transitions fire with no call at all.

The emitted module is net-object free — ``make_step(rt)`` binds the live
places/stages/guards by index (:func:`repro.codegen.runtime.
build_runtime`) — so one emitted source is reusable for every rebuild of
the same spec, which is what makes it disk-cacheable under the spec
fingerprint (:mod:`repro.codegen.cache`).

Observable behaviour is contractually bit-identical to the interpreted
engine: same statistics counters, same attempt order, same stall
accounting, same emission-drain timing.  The backend-equivalence matrix
(``tests/integration/test_backend_equivalence.py``) enforces this for
every registered model and kernel.

Tracing (:mod:`repro.observe`) is a *traced emission mode*, not a run-time
branch: when an emission-relevant trace category is enabled
(:func:`repro.codegen.cache.emit_trace_categories`) the emitter inlines
``TRF``/``TRS`` calls at exactly the interpreted engine's event sites and
the cache key gains a ``trace=`` part; with tracing off the emitted source
is byte-identical to a trace-unaware build and the key is unchanged, so
the fast path and warm disk caches are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiled.plan import transition_capacity_shape

from repro.codegen.runtime import action_plan, guard_plan, structure_digest

#: Bumped whenever the emitted code changes shape; part of the cache key so
#: stale on-disk modules from older emitters are never loaded.
#: 3: DISPATCH/GENERATORS header constants (verified by repro.analyze).
CODEGEN_SOURCE_VERSION = 3


@dataclass
class EmitReport:
    """Specialisation statistics of one emission (mirrors ``CompiledPlan``)."""

    transitions_emitted: int = 0
    guard_free_transitions: int = 0
    capacity_free_transitions: int = 0
    single_stage_capacity_transitions: int = 0
    issue_gated_transitions: int = 0
    advance_gated_transitions: int = 0
    dispatch_entries: int = 0
    nonempty_dispatch_entries: int = 0
    places_emitted: int = 0
    single_token_places: int = 0
    source_lines: int = 0

    def summary(self):
        return {
            "transitions_compiled": self.transitions_emitted,
            "guard_free_transitions": self.guard_free_transitions,
            "capacity_free_transitions": self.capacity_free_transitions,
            "single_stage_capacity_transitions": self.single_stage_capacity_transitions,
            "issue_gated_transitions": self.issue_gated_transitions,
            "advance_gated_transitions": self.advance_gated_transitions,
            "dispatch_entries": self.dispatch_entries,
            "nonempty_dispatch_entries": self.nonempty_dispatch_entries,
            "places_compiled": self.places_emitted,
            "single_token_places": self.single_token_places,
            "source_lines": self.source_lines,
        }


class _Writer:
    def __init__(self):
        self.lines = []

    def w(self, indent, text=""):
        self.lines.append("    " * indent + text if text else "")

    def source(self):
        return "\n".join(self.lines) + "\n"


def _capacity_conjuncts(net, shape, stage_var):
    """Render one capacity shape as literal-comparison conjunct strings."""
    conjuncts = []
    if shape[0] == "single":
        stage = net.stages[shape[1]]
        conjuncts.append("%s._occupancy < %d" % (stage_var(stage), stage.capacity))
    elif shape[0] == "multi":
        for stage_name, count in shape[1]:
            stage = net.stages[stage_name]
            if stage.capacity is None or count <= 0:
                continue  # unlimited, or the departing token frees the slot
            conjuncts.append(
                "%s._occupancy <= %d" % (stage_var(stage), stage.capacity - count)
            )
        for stage_name in shape[2]:
            stage = net.stages[stage_name]
            if stage.capacity is None:
                continue
            conjuncts.append("%s._occupancy < %d" % (stage_var(stage), stage.capacity))
    return conjuncts


def _assemble_batched(
    out,
    body,
    places,
    stages,
    options,
    used_stages,
    used_guards,
    used_actions,
    used_controls,
    need_pool,
    need_res,
    need_deposit,
    need_entry,
    need_rbc,
    traced_firing=False,
    traced_stall=False,
):
    """Write ``make_step_batched(rts)`` around the straight-line step body.

    The scalar emission binds one runtime dict to closure variables once;
    the batched emission instead prebuilds one flat tuple per lane holding
    exactly the objects the body names (engine, ctx, places, used stages/
    guards/actions/controls, ...) and returns
    ``step(start, stride, active, done)``: one lane-loop iteration unpacks
    a lane's tuple into locals and advances that lane ``stride`` cycles of
    the identical body, each followed by an inline halt-drain check; the
    cycle/idle bookkeeping is kept in locals and written back to the
    engine once per stride — so the per-lane tuple unpack, the driver
    dispatch *and* the counter write-back are all amortised over the
    stride, and per lane-cycle no Python call or attribute-store overhead
    is left beyond what the body itself does.  A lane whose
    pipeline drains after a halt request is appended to ``done`` and stops
    mid-stride; the driver (:class:`repro.batched.LaneBatch`) masks it out
    of ``active`` and picks strides that never overshoot a lane's cycle
    budget.
    """
    # The lane tuple: (name the body uses, expression building it from rt).
    entries = [("engine", "_e"), ("ctx", "rt['ctx']")]
    if need_deposit:
        entries.append(("deposit", "rt['deposit']"))
    if need_entry:
        entries.append(("entry_place_for", "rt['entry_place_for']"))
    if need_pool:
        entries.append(("pool", "rt['pool']"))
    if need_res:
        entries.append(("RES", "rt['ReservationToken']"))
    if traced_firing:
        entries.append(("TRF", "rt['trace_firing']"))
    if traced_stall:
        entries.append(("TRS", "rt['trace_stall']"))
    for index in range(len(places)):
        entries.append(("p%d" % index, "_P[%d]" % index))
    stage_binds = False
    for index, stage in enumerate(stages):
        if id(stage) in used_stages:
            entries.append(("s%d" % index, "_S[%d]" % index))
            stage_binds = True
    for index in sorted(used_guards):
        entries.append(("g%d" % index, "_G[%d]" % index))
    for index in sorted(used_actions):
        entries.append(("a%d" % index, "_A[%d]" % index))
    for index in sorted(used_controls):
        entries.append(("c%d" % index, "_C[%d]" % index))
    if options.collect_utilization:
        entries.append(("_STAGES", "tuple(_S)"))
        stage_binds = True

    out.w(0, "def make_step_batched(rts):")
    out.w(1, "_L = []")
    out.w(1, "for rt in rts:")
    out.w(2, "_e = rt['engine']")
    out.w(2, "_P = rt['places']")
    if stage_binds:
        out.w(2, "_S = rt['stages']")
    if used_guards:
        out.w(2, "_G = rt['guards']")
    if used_actions:
        out.w(2, "_A = rt['actions']")
    if used_controls:
        out.w(2, "_C = rt['controls']")
    out.w(2, "_L.append((")
    for _name, expr in entries:
        out.w(3, expr + ",")
    out.w(2, "))")
    out.w(0, "")
    out.w(1, "def step(start, stride, active, done):")
    out.w(2, "for _lane in active:")
    out.w(3, "(")
    names = [name for name, _expr in entries]
    for start_index in range(0, len(names), 8):
        out.w(4, ", ".join(names[start_index : start_index + 8]) + ",")
    out.w(3, ") = _L[_lane]")
    out.w(3, "stats = engine.stats")
    out.w(3, "tf = stats.transition_firings")
    if need_rbc:
        out.w(3, "rbc = stats.retired_by_class")
    out.w(3, "_idle = engine._idle_cycles")
    out.w(3, "fired = engine._fired_this_cycle")
    out.w(3, "for cycle in range(start, start + stride):")
    out.w(4, "fired = 0")
    # The scalar body verbatim, two indents deeper (inside the lane loop
    # and the stride loop).
    out.lines.extend("        " + line if line else "" for line in body.lines)
    # ``engine.cycle`` must advance every cycle: the describe-layer context
    # reads it lazily mid-cycle (``ctx.cycle`` stamps the register-file
    # refresh).  The idle/fired counters and ``stats.cycles`` have no
    # mid-cycle readers, so their write-back (what GeneratedEngine.step
    # does around its _step_fn call) happens once per stride below.
    out.w(4, "engine.cycle = cycle + 1")
    out.w(4, "if fired:")
    out.w(5, "_idle = 0")
    out.w(4, "else:")
    out.w(5, "_idle += 1")
    # Halt-drain detection, specialised to a short-circuit emptiness test
    # over this lane's places (schedule.order covers every place of the
    # net, so the conjunction equals SimulationEngine.pipeline_empty).
    # Downstream places come first in the order: while draining they are
    # the last to empty, so the common non-empty case exits early.
    terms = []
    for index, place in enumerate(places):
        terms.append("p%d.tokens" % index)
        if place.two_list:
            terms.append("p%d.pending" % index)
    out.w(4, "if engine.halt_requested and not (")
    for start_index in range(0, len(terms), 5):
        chunk = " or ".join(terms[start_index : start_index + 5])
        tail = " or" if start_index + 5 < len(terms) else ""
        out.w(5, chunk + tail)
    out.w(4, "):")
    out.w(5, "_nc = cycle + 1")
    out.w(5, "done.append(_lane)")
    out.w(5, "break")
    out.w(3, "else:")
    out.w(4, "_nc = start + stride")
    out.w(3, "stats.cycles = _nc")
    out.w(3, "engine._fired_this_cycle = fired")
    out.w(3, "engine._idle_cycles = _idle")
    out.w(0, "")
    out.w(1, "return step")


def emit_module_source(net, schedule, options, key=None):
    """Emit the Python source of one model's generated simulator.

    Returns ``(source, report)``.  For the scalar backends the source
    defines ``make_step(rt)`` returning the per-cycle
    ``step(cycle, stats) -> fired`` function; ``rt`` is the binding dict of
    :func:`repro.codegen.runtime.build_runtime`.  With
    ``options.backend == "batched"`` the same step body is instead wrapped
    in a lane loop and the module defines ``make_step_batched(rts)`` over a
    *list* of runtime dicts (one per lane, same spec fingerprint), stepping
    every lane listed in ``active`` in lockstep per call.
    """
    from repro.codegen.cache import emit_trace_categories

    trace_categories = emit_trace_categories(options)
    traced_firing = "firing" in trace_categories
    traced_stall = "stall" in trace_categories

    report = EmitReport()
    places = list(schedule.order)
    stages = list(net.stages.values())
    transitions = list(net.transitions)
    place_index = {id(place): index for index, place in enumerate(places)}
    stage_index = {id(stage): index for index, stage in enumerate(stages)}
    transition_index = {id(t): index for index, t in enumerate(transitions)}

    def pvar(place):
        return "p%d" % place_index[id(place)]

    def svar(stage):
        return "s%d" % stage_index[id(stage)]

    #: Places that can ever hold a reservation token: only reservation
    #: output arcs deposit them, so this set is exact and lets the ready
    #: filter of every other place drop the ``is_instruction`` test.
    reservation_places = set()
    for transition in transitions:
        for arc in transition.reservation_outputs:
            if arc.place is not None:
                reservation_places.add(id(arc.place))

    emitted_transitions = set()
    used_stages = set()
    used_guards = set()
    used_actions = set()
    used_controls = set()
    need_pool = False
    need_res = False
    need_deposit = False
    need_entry = False
    need_rbc = False

    def classify(transition):
        index = transition_index[id(transition)]
        if index not in emitted_transitions:
            emitted_transitions.add(index)
            report.transitions_emitted += 1
            gkind = guard_plan(transition)[0]
            if gkind == "none":
                report.guard_free_transitions += 1
            elif gkind == "issue":
                report.issue_gated_transitions += 1
            elif gkind == "advance":
                report.advance_gated_transitions += 1
            shape = transition_capacity_shape(transition)
            if shape[0] == "free":
                report.capacity_free_transitions += 1
            elif shape[0] == "single":
                report.single_stage_capacity_transitions += 1

    def enable_conjuncts(transition, token_expr):
        """The enable rule as an ordered list of conjunct expressions.

        Order matters and mirrors ``SimulationEngine.is_enabled``:
        reservation inputs, then output capacity, then the guard.
        """
        index = transition_index[id(transition)]
        conjuncts = []
        for arc in transition.reservation_inputs:
            conjuncts.append("%s.has_reservation()" % pvar(arc.place))
        shape = transition_capacity_shape(transition)

        def stage_var(stage):
            used_stages.add(id(stage))
            return svar(stage)

        conjuncts.extend(_capacity_conjuncts(net, shape, stage_var))
        gkind, gbase, _gcontrol, gport, gstage = guard_plan(transition)
        if gkind == "plain":
            used_guards.add(index)
            conjuncts.append("g%d(%s, ctx)" % (index, token_expr))
        elif gkind == "issue":
            used_controls.add(index)
            conjuncts.append("c%d.may_issue(%s, ctx, %r)" % (index, token_expr, gport))
            if gbase is not None:
                used_guards.add(index)
                conjuncts.append("g%d(%s, ctx)" % (index, token_expr))
        elif gkind == "advance":
            used_controls.add(index)
            used_stages.add(id(gstage))
            conjuncts.append("c%d.may_advance(%s, %s)" % (index, token_expr, svar(gstage)))
            if gbase is not None:
                used_guards.add(index)
                conjuncts.append("g%d(%s, ctx)" % (index, token_expr))
        return conjuncts

    def fire_lines(transition, token_mode):
        """The fire rule, flattened to field operations.

        Mirrors ``SimulationEngine.fire`` step for step: firing counter,
        source removal, reservation-input consumption, action, token
        deposit (or retire), reservation-output deposits, emission drain.
        """
        nonlocal need_pool, need_res, need_deposit, need_entry, need_rbc
        index = transition_index[id(transition)]
        lines = ["tf[%r] += 1" % transition.name]
        if traced_firing:
            lines.append(
                "TRF(cycle, %r, %s)" % (transition.name, "token" if token_mode else "None")
            )

        if token_mode:
            source = transition.source
            used_stages.add(id(source.stage))
            lines.append("%s.tokens.remove(token)" % pvar(source))
            lines.append("token.place = None")
            lines.append("%s._occupancy -= 1" % svar(source.stage))

        for arc in transition.reservation_inputs:
            need_pool = True
            lines.append("pool.append(%s.take_reservation())" % pvar(arc.place))

        akind, abase, _acontrol, aport = action_plan(transition)
        token_expr = "token" if token_mode else "None"
        if akind == "issue":
            used_controls.add(index)
            lines.append("c%d.note_issue(%s, ctx, %r)" % (index, token_expr, aport))
            if abase is not None:
                used_actions.add(index)
                lines.append("a%d(%s, ctx)" % (index, token_expr))
        elif akind == "plain":
            used_actions.add(index)
            lines.append("a%d(%s, ctx)" % (index, token_expr))

        target = transition.target_place
        if token_mode and not transition.consumes_token and target is not None:
            if target.is_end:
                need_rbc = True
                lines.append("stats.instructions += 1")
                lines.append("rbc[token.opclass] += 1")
                lines.append("token.place = None")
            else:
                total = transition.delay + target.delay
                lines.append("_d = token.delay_override")
                lines.append("if _d is None:")
                lines.append("    token.ready_cycle = cycle + %d" % total)
                lines.append("else:")
                lines.append("    token.delay_override = None")
                if transition.delay:
                    lines.append("    token.ready_cycle = cycle + %d + _d" % transition.delay)
                else:
                    lines.append("    token.ready_cycle = cycle + _d")
                lines.append("token.place = %s" % pvar(target))
                used_stages.add(id(target.stage))
                lines.append("%s._occupancy += 1" % svar(target.stage))
                store = "pending" if target.two_list else "tokens"
                lines.append("%s.%s.append(token)" % (pvar(target), store))

        for arc in transition.reservation_outputs:
            place = arc.place
            if place is None or place.is_end:
                continue  # a reservation retired into end simply vanishes
            need_pool = True
            need_res = True
            producer = "token.seq" if token_mode else "None"
            total = transition.delay + place.delay
            lines.append("if pool:")
            lines.append("    _r = pool.pop()")
            lines.append("    _r.tag = %r" % transition.name)
            lines.append("    _r.delay_override = None")
            lines.append("else:")
            lines.append("    _r = RES(tag=%r)" % transition.name)
            lines.append("_r.producer_seq = %s" % producer)
            lines.append("_r.ready_cycle = cycle + %d" % total)
            lines.append("_r.place = %s" % pvar(place))
            used_stages.add(id(place.stage))
            lines.append("%s._occupancy += 1" % svar(place.stage))
            store = "pending" if place.two_list else "tokens"
            lines.append("%s.%s.append(_r)" % (pvar(place), store))

        # Emission drain: identical timing to the interpreted engine, which
        # drains the queue after *every* fire with the firing transition's
        # delay.  The queue is usually empty; the check is one attr load.
        need_deposit = True
        need_entry = True
        lines.append("_q = engine._emission_queue")
        lines.append("if _q:")
        lines.append("    engine._emission_queue = []")
        lines.append("    for _nt, _dp in _q:")
        lines.append("        if _dp is None:")
        lines.append("            _dp = entry_place_for(_nt.opclass)")
        lines.append("        stats.generated_tokens += 1")
        lines.append("        deposit(_nt, _dp, %d)" % transition.delay)
        return lines

    # ---- walk the model once to build the per-place step bodies ----------
    body = _Writer()
    indent0 = 2  # inside `def step` inside `def make_step`

    # Two-list commits first, exactly like SimulationEngine.step.
    if schedule.two_list_places:
        body.w(indent0, "# -- two-list (master/slave) commits")
        for place in schedule.two_list_places:
            pv = pvar(place)
            body.w(indent0, "if %s.pending:" % pv)
            body.w(indent0 + 1, "%s.tokens.extend(%s.pending)" % (pv, pv))
            body.w(indent0 + 1, "%s.pending = []" % pv)

    def emit_stall(indent, place_name):
        body.w(indent, "stats.stalls += 1")
        if traced_stall:
            body.w(indent, "TRS(cycle, %r, token)" % place_name)

    def emit_attempt_chain(indent, candidates, token_expr, place_name):
        """One if/elif chain of inlined attempts, else a stall."""
        first = True
        for transition in candidates:
            classify(transition)
            conjuncts = enable_conjuncts(transition, token_expr)
            condition = " and ".join(conjuncts) if conjuncts else "True"
            keyword = "if" if first else "elif"
            body.w(indent, "%s %s:  # %s" % (keyword, condition, transition.name))
            for line in fire_lines(transition, token_mode=True):
                body.w(indent + 1, line)
            body.w(indent + 1, "fired += 1")
            first = False
        body.w(indent, "else:")
        emit_stall(indent + 1, place_name)

    #: (place name, ((opclass, (transition names...)), ...)) per emitted
    #: place, nonempty entries only — the plan the source claims to
    #: implement, re-checked against the AST by repro.analyze.sourcecheck.
    dispatch_table = []

    for place in places:
        report.places_emitted += 1
        dispatch = []
        for opclass in net.operation_classes:
            candidates = schedule.transitions_for(place, opclass)
            report.dispatch_entries += 1
            if candidates:
                report.nonempty_dispatch_entries += 1
                dispatch.append((opclass, tuple(candidates)))
        dispatch_table.append((
            place.name,
            tuple(
                (opclass, tuple(t.name for t in candidates))
                for opclass, candidates in dispatch
            ),
        ))

        pv = pvar(place)
        may_hold_reservations = id(place) in reservation_places
        single_token = place.stage.capacity == 1
        if single_token:
            report.single_token_places += 1

        body.w(indent0, "# -- place %r (stage %r)" % (place.name, place.stage.name))
        body.w(indent0, "_t = %s.tokens" % pv)
        body.w(indent0, "if _t:")
        if single_token:
            # A capacity-1 stage can hold at most one token across all of
            # its places, so the ready-snapshot list is replaced by a
            # direct look at the single stored token.
            body.w(indent0 + 1, "token = _t[0]")
            ready = "token.ready_cycle <= cycle"
            if may_hold_reservations:
                ready = "token.is_instruction and " + ready
            body.w(indent0 + 1, "if %s:" % ready)
            inner = indent0 + 2
            if dispatch:
                body.w(inner, "_oc = token.opclass")
                first = True
                for opclass, candidates in dispatch:
                    keyword = "if" if first else "elif"
                    body.w(inner, "%s _oc == %r:" % (keyword, opclass))
                    emit_attempt_chain(inner + 1, candidates, "token", place.name)
                    first = False
                body.w(inner, "else:")
                emit_stall(inner + 1, place.name)
            else:
                emit_stall(inner, place.name)
        else:
            if may_hold_reservations:
                comp = "[t for t in _t if t.is_instruction and t.ready_cycle <= cycle]"
            else:
                comp = "[t for t in _t if t.ready_cycle <= cycle]"
            body.w(indent0 + 1, "for token in %s:" % comp)
            body.w(indent0 + 2, "if token.place is not %s:" % pv)
            body.w(indent0 + 3, "continue  # moved by an earlier firing this cycle")
            inner = indent0 + 2
            if dispatch:
                body.w(inner, "_oc = token.opclass")
                first = True
                for opclass, candidates in dispatch:
                    keyword = "if" if first else "elif"
                    body.w(inner, "%s _oc == %r:" % (keyword, opclass))
                    emit_attempt_chain(inner + 1, candidates, "token", place.name)
                    first = False
                body.w(inner, "else:")
                emit_stall(inner + 1, place.name)
            else:
                emit_stall(inner, place.name)

    # Generator transitions (the instruction-independent sub-net).
    for transition in schedule.generator_transitions:
        classify(transition)
        conjuncts = enable_conjuncts(transition, "None")
        condition = " and ".join(conjuncts) if conjuncts else "True"
        limit = transition.max_firings_per_cycle
        body.w(indent0, "# -- generator %r" % transition.name)
        if limit == 1:
            body.w(indent0, "if %s:" % condition)
            for line in fire_lines(transition, token_mode=False):
                body.w(indent0 + 1, line)
            body.w(indent0 + 1, "fired += 1")
        else:
            body.w(indent0, "_n = 0")
            body.w(indent0, "while _n < %d:" % limit)
            body.w(indent0 + 1, "if not (%s):" % condition)
            body.w(indent0 + 2, "break")
            for line in fire_lines(transition, token_mode=False):
                body.w(indent0 + 1, line)
            body.w(indent0 + 1, "_n += 1")
            body.w(indent0, "fired += _n")

    if options.collect_utilization:
        body.w(indent0, "for _st in _STAGES:")
        body.w(indent0 + 1, "_st.occupancy_accumulator += _st._occupancy")

    # ---- assemble the module ---------------------------------------------
    batched = options.backend == "batched"
    out = _Writer()
    out.w(0, '"""Generated simulator step for model %r (repro.codegen).' % net.name)
    out.w(0, "")
    out.w(0, "Auto-generated source: do not edit.  Regenerated whenever the spec")
    out.w(0, "fingerprint, the emit-relevant engine options, the repro version or")
    out.w(0, "the codegen source version change (see repro/codegen/cache.py).")
    out.w(0, '"""')
    out.w(0, "")
    out.w(0, "CODEGEN_SOURCE_VERSION = %d" % CODEGEN_SOURCE_VERSION)
    out.w(0, "CODEGEN_KEY = %r" % key)
    out.w(0, "MODEL = %r" % net.name)
    out.w(0, "SPEC_FINGERPRINT = %r" % getattr(net, "spec_fingerprint", None))
    out.w(0, "STRUCTURE_DIGEST = %r" % structure_digest(net))
    out.w(0, "PLACES = %r" % (tuple(place.name for place in places),))
    out.w(0, "STAGES = %r" % (tuple(stage.name for stage in stages),))
    out.w(0, "TRANSITIONS = %r" % (tuple(t.name for t in transitions),))
    out.w(0, "DISPATCH = %r" % (tuple(dispatch_table),))
    out.w(0, "GENERATORS = %r" % (
        tuple(t.name for t in schedule.generator_transitions),
    ))
    if batched:
        out.w(0, "EMISSION_MODE = 'batched'")
        out.w(0, "LANES = %d" % options.lanes)
    if trace_categories:
        out.w(0, "TRACE_CATEGORIES = %r" % (trace_categories,))
    out.w(0, "")
    out.w(0, "")
    if batched:
        _assemble_batched(
            out,
            body,
            places=places,
            stages=stages,
            options=options,
            used_stages=used_stages,
            used_guards=used_guards,
            used_actions=used_actions,
            used_controls=used_controls,
            need_pool=need_pool,
            need_res=need_res,
            need_deposit=need_deposit,
            need_entry=need_entry,
            need_rbc=need_rbc,
            traced_firing=traced_firing,
            traced_stall=traced_stall,
        )
    else:
        out.w(0, "def make_step(rt):")
        out.w(1, "engine = rt['engine']")
        out.w(1, "ctx = rt['ctx']")
        if need_deposit:
            out.w(1, "deposit = rt['deposit']")
        if need_entry:
            out.w(1, "entry_place_for = rt['entry_place_for']")
        if need_pool:
            out.w(1, "pool = rt['pool']")
        if need_res:
            out.w(1, "RES = rt['ReservationToken']")
        if traced_firing:
            out.w(1, "TRF = rt['trace_firing']")
        if traced_stall:
            out.w(1, "TRS = rt['trace_stall']")
        out.w(1, "P = rt['places']")
        out.w(1, "S = rt['stages']")
        if used_guards:
            out.w(1, "G = rt['guards']")
        if used_actions:
            out.w(1, "A = rt['actions']")
        if used_controls:
            out.w(1, "C = rt['controls']")
        for index in range(len(places)):
            out.w(1, "p%d = P[%d]" % (index, index))
        for index, stage in enumerate(stages):
            if id(stage) in used_stages:
                out.w(1, "s%d = S[%d]" % (index, index))
        for index in sorted(used_guards):
            out.w(1, "g%d = G[%d]" % (index, index))
        for index in sorted(used_actions):
            out.w(1, "a%d = A[%d]" % (index, index))
        for index in sorted(used_controls):
            out.w(1, "c%d = C[%d]" % (index, index))
        if options.collect_utilization:
            out.w(1, "_STAGES = tuple(S)")
        out.w(0, "")
        out.w(1, "def step(cycle, stats):")
        out.w(2, "fired = 0")
        out.w(2, "tf = stats.transition_firings")
        if need_rbc:
            out.w(2, "rbc = stats.retired_by_class")
        out.lines.extend(body.lines)
        out.w(2, "return fired")
        out.w(0, "")
        out.w(1, "return step")

    # Embed the specialisation report so cache hits (which skip emission)
    # can still describe the module they loaded.
    report.source_lines = len(out.lines) + 2
    out.w(0, "")
    out.w(0, "EMIT_REPORT = %r" % (report.summary(),))

    return out.source(), report
