"""The generated (source-level) cycle-accurate engine.

:class:`GeneratedEngine` is the run-time shell around an emitted module
(:mod:`repro.codegen.emit`): construction obtains the module — from the
in-process memo, the on-disk cache or a fresh emission
(:mod:`repro.codegen.cache`) — binds it to this net's live objects
(:func:`repro.codegen.runtime.build_runtime`) and keeps the resulting
``step(cycle, stats)`` function.  Everything outside the per-cycle hot
path — run loop, halt/drain detection, flush and emission services — is
inherited from :class:`~repro.core.engine.SimulationEngine`, the same
layering as the compiled backend, and the statistics contract is the
same: bit-identical to both other backends, only wall-clock time may
differ.

The emitted step function is straight-line code over preallocated
objects, so unlike :class:`repro.compiled.CompiledEngine` no active-place
worklist is needed: an idle place costs one attribute load and a truth
test.  Reservation-token pooling is kept (the emitted fire bodies draw
from ``_reservation_pool``).

Inspecting the generated code::

    engine = processor.engine          # backend="generated"
    print(engine.source)               # the emitted Python module
    print(engine.source_path)          # its on-disk cache file (or None)
"""

from __future__ import annotations

from repro.core.engine import SimulationEngine

from repro.codegen.cache import CODEGEN_CACHE, codegen_key
from repro.codegen.emit import emit_module_source
from repro.codegen.runtime import CodegenStructureError, build_runtime


class GeneratedEngine(SimulationEngine):
    """Cycle-accurate simulator running the emitted-source form of a model.

    ``cache`` defaults to the process-wide
    :data:`~repro.codegen.cache.CODEGEN_CACHE`; tests pass their own
    :class:`~repro.codegen.cache.ModuleCache` to observe cold/warm
    behaviour in isolation.  Nets without a spec fingerprint (hand-built
    test nets) are emitted fresh each time and never touch the cache.
    """

    backend = "generated"

    def __init__(self, net, options=None, cache=None):
        super().__init__(net, options=options)
        # Captured by the emitted fire bodies; mutate in place, never rebind.
        self._reservation_pool = []
        self._cache = CODEGEN_CACHE if cache is None else cache
        self.source = None
        self.source_path = None
        self.codegen_status = "uncached"

        fingerprint = getattr(net, "spec_fingerprint", None)
        key = codegen_key(fingerprint, self.options) if fingerprint is not None else None

        def emit():
            source, _report = emit_module_source(net, self.schedule, self.options, key=key)
            return source

        if key is None:
            # Hand-built nets carry no fingerprint: emit fresh, skip caching.
            module = self._exec_uncached(emit())
        else:
            module, self.codegen_status = self._cache.module_for(key, emit)
            self.source_path = self._cache.path_for(key)
        try:
            runtime = build_runtime(self, module)
        except CodegenStructureError:
            # The cached module describes a different structure (a net
            # mutated after elaboration poisoned the key, or vice versa):
            # re-emit against *this* net and overwrite the entry, mirroring
            # the schedule/plan caches' staleness recovery.
            module = self._cache.replace(key, emit())
            self.codegen_status = "stale"
            runtime = build_runtime(self, module)
        self.module = module
        self.source = module.__source__
        self._bind_module(module, runtime)

    def _bind_module(self, module, runtime):
        """Bind the obtained module to this engine's live objects.

        The scalar generated engine keeps the bound per-cycle step
        function; :class:`repro.batched.LaneEngine` overrides this to keep
        the runtime dict instead (lanes are stepped by their batch, which
        binds all lane runtimes at once via ``make_step_batched``).
        """
        self._step_fn = module.make_step(runtime)

    @staticmethod
    def _exec_uncached(source):
        import types

        module = types.ModuleType("repro_codegen_uncached")
        module.__source__ = source
        exec(compile(source, "<repro.codegen>", "exec"), module.__dict__)
        return module

    # -- engine-internal services overridden for the generated backend ------
    def _recycle_reservation(self, token):
        # Flushed reservation tokens go back to the free list.
        self._reservation_pool.append(token)

    # -- main loop ----------------------------------------------------------
    def step(self):
        """One clock cycle: run the emitted straight-line step function.

        The emitted body covers two-list commits, the per-place dispatch
        in reverse-topological order, the generator transitions and the
        optional utilisation sampling; the cycle/idle bookkeeping stays
        here so ``run``'s limit checks see the same state as the other
        backends.
        """
        stats = self.stats
        fired = self._step_fn(self.cycle, stats)
        self.cycle += 1
        stats.cycles = self.cycle
        self._fired_this_cycle = fired
        if fired == 0:
            self._idle_cycles += 1
        else:
            self._idle_cycles = 0

    def reset(self):
        """Reset dynamic state while keeping the emitted step function.

        The bound step function references places, stages, the context and
        the reservation pool — all of which survive a reset — so re-running
        a model costs no re-emission (the generated-backend reset-reuse
        regression test pins this).
        """
        super().reset()
        self._reservation_pool.clear()

    def compilation_summary(self):
        """Emission statistics + cache provenance (for reports).

        The counters come from the module's embedded ``EMIT_REPORT`` so
        cache hits (which skip emission entirely) report the same numbers
        as the cold build that produced the module.
        """
        summary = dict(getattr(self.module, "EMIT_REPORT", {}))
        summary["codegen_cache"] = self.codegen_status
        return summary
