"""Runtime binding layer between emitted modules and live nets.

An emitted module (:mod:`repro.codegen.emit`) is *net-object free*: it
references places, stages, guards and actions by index into flat lists.
This module is the other half of that contract — it classifies each
transition's guard/action the same way the emitter does
(:func:`gate_plan`), builds the index-aligned runtime lists for one engine
(:func:`build_runtime`) and provides the structural digest
(:func:`structure_digest`) the emitted module embeds so a cached module is
never bound to a net with a different shape.

The classification exists because the multi-issue elaborator wraps guards
and actions with issue/advance gates
(:meth:`repro.describe.semantics.ArmSemantics.issue_gate`).  The wrappers
carry their unwrapped parts as attributes, which lets the emitter replace
the wrapper call with a direct arbiter call plus the base hook — the
"issue/port budgets specialised away at emit time" optimisation.  Wrappers
without the attributes (hand-rolled gates) degrade gracefully to plain
calls.
"""

from __future__ import annotations

import hashlib

from repro.core.scheduler import structure_signature
from repro.core.token import ReservationToken


class CodegenStructureError(RuntimeError):
    """A cached module does not describe the net it is being bound to."""


def guard_plan(transition):
    """Classify one transition's guard for emission.

    Returns ``(kind, base, control, port, stage)`` where ``kind`` is one of
    ``"none"``, ``"plain"``, ``"issue"`` or ``"advance"``.  ``base`` is the
    unwrapped guard (may be ``None`` for a bare gate), ``control`` the
    issue arbiter, ``port`` the issue-port literal and ``stage`` the
    source stage of an advance gate.
    """
    guard = transition.guard
    if guard is None:
        return ("none", None, None, None, None)
    if getattr(guard, "issue_gate", False) and hasattr(guard, "base_guard"):
        return ("issue", guard.base_guard, guard.control, guard.port, None)
    if getattr(guard, "advance_gate", False) and hasattr(guard, "base_guard"):
        return ("advance", guard.base_guard, guard.control, None, guard.stage)
    return ("plain", guard, None, None, None)


def action_plan(transition):
    """Classify one transition's action for emission.

    Returns ``(kind, base, control, port)`` with ``kind`` in ``"none"``,
    ``"plain"`` or ``"issue"``.
    """
    action = transition.action
    if action is None:
        return ("none", None, None, None)
    if getattr(action, "issue_gate", False) and hasattr(action, "base_action"):
        return ("issue", action.base_action, action.control, action.port)
    return ("plain", action, None, None)


def gate_signature(net):
    """Name-level summary of the gate classification of every transition.

    Part of :func:`structure_digest`: gates are *behaviour* and therefore
    invisible to :func:`repro.core.scheduler.structure_signature`, but the
    emitter bakes their ports and shapes into the source, so two nets that
    differ only in gating must not share an emitted module.
    """
    rows = []
    for transition in net.transitions:
        gkind, gbase, _, gport, gstage = guard_plan(transition)
        akind, abase, _, aport = action_plan(transition)
        rows.append(
            (
                transition.name,
                gkind,
                gbase is not None,
                gport,
                gstage.name if gstage is not None else None,
                akind,
                abase is not None,
                aport,
            )
        )
    return tuple(rows)


def structure_digest(net):
    """Digest of everything an emitted module bakes into its source."""
    payload = repr((structure_signature(net), gate_signature(net)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def build_runtime(engine, module=None):
    """Build the binding dict an emitted module's ``make_step`` consumes.

    When ``module`` is given its embedded ``STRUCTURE_DIGEST`` is checked
    against the engine's net first; a mismatch raises
    :class:`CodegenStructureError` so the engine can fall back to a fresh
    emission instead of silently replaying stale code (mirrors the
    schedule/plan blueprint staleness guards).
    """
    net = engine.net
    if module is not None:
        expected = getattr(module, "STRUCTURE_DIGEST", None)
        if expected != structure_digest(net):
            raise CodegenStructureError(
                "cached module %r does not match the structure of net %r"
                % (getattr(module, "__name__", "?"), net.name)
            )
    guards = []
    actions = []
    controls = []
    for transition in net.transitions:
        gkind, gbase, gcontrol, _gport, _gstage = guard_plan(transition)
        akind, abase, acontrol, _aport = action_plan(transition)
        guards.append(gbase if gkind != "none" else None)
        actions.append(abase if akind != "none" else None)
        controls.append(gcontrol if gcontrol is not None else acontrol)
    return {
        "engine": engine,
        "ctx": engine.ctx,
        "deposit": engine._deposit,
        "entry_place_for": net.entry_place_for,
        "pool": engine._reservation_pool,
        "ReservationToken": ReservationToken,
        "places": list(engine.schedule.order),
        "stages": list(net.stages.values()),
        "guards": guards,
        "actions": actions,
        "controls": controls,
        # Trace hooks for traced-emission modules; untraced modules (and
        # modules emitted before tracing existed) simply never read them.
        "trace_firing": getattr(engine, "_trace_firing", None),
        "trace_stall": getattr(engine, "_trace_stall", None),
    }
