"""repro.compiled: compiled (generated) cycle-accurate simulators.

This package implements the paper's headline contribution — *high
performance cycle-accurate simulator generation* (Section 4): instead of
interpreting the RCPN model every cycle, the model is partially evaluated
once into flat per-place step closures with dispatch tables inlined and
guard/capacity checks specialised per transition, and the resulting
:class:`CompiledEngine` runs those closures.

Usage mirrors the interpreted engine; the backend is selected through
:class:`repro.core.engine.EngineOptions`::

    from repro.core import EngineOptions, generate_simulator

    engine, report = generate_simulator(net, EngineOptions(backend="compiled"))
    stats = engine.run()

or, at the processor level::

    processor = build_strongarm_processor(backend="compiled")

The compiled backend is contractually *bit-identical* to the interpreted
one in every statistic (cycles, instructions, stalls, per-class retirement,
transition firings); only wall-clock throughput differs.  The differential
tests in ``tests/integration/test_compiled_differential.py`` enforce this
for every registered workload on both processor models.
"""

from repro.compiled.engine import CompiledEngine
from repro.compiled.plan import (
    CompiledPlan,
    compile_generator_step,
    compile_place_step,
    compile_plan,
    compile_transition,
)

__all__ = [
    "CompiledEngine",
    "CompiledPlan",
    "compile_plan",
    "compile_transition",
    "compile_place_step",
    "compile_generator_step",
]
