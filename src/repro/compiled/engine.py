"""The compiled cycle-accurate engine.

:class:`CompiledEngine` is the run-time half of the paper's simulator
generation: :mod:`repro.compiled.plan` partially evaluates the model into
flat closures once, and this engine merely drives them cycle by cycle.  It
is drop-in API-compatible with :class:`repro.core.engine.SimulationEngine`
(``run`` / ``step`` / ``reset`` / ``stats`` and all the
:class:`~repro.core.engine.EngineContext` services — ``emit``,
``flush_stage``, ``stop``), and is required to produce *bit-identical*
statistics; only wall-clock time may differ.

On top of the closure specialisation, two run-time optimisations the
interpreted engine does not have:

* **active-place worklist** — places are only visited while they can hold
  tokens.  The worklist starts from the places marked at initialisation and
  grows monotonically as deposits touch new places, so sub-nets a workload
  never exercises (e.g. the multiply sub-net of an integer-only kernel) are
  skipped entirely, not merely early-returned from.
* **reservation-token pooling** — dataless reservation tokens are recycled
  through a free list instead of being allocated on every producing arc
  firing.

Both backends share :class:`~repro.core.scheduler.StaticSchedule`; see the
``EngineOptions`` docstring in :mod:`repro.core.engine` for which knobs
apply to which backend.
"""

from __future__ import annotations

from repro.core.engine import SimulationEngine

from repro.compiled.plan import compile_plan


class CompiledEngine(SimulationEngine):
    """Cycle-accurate simulator running the compiled form of an RCPN model.

    Construction performs the generation step (closure compilation); the
    compiled plan is retained across :meth:`reset` so a model can be re-run
    without paying compilation again.  Everything outside the per-cycle hot
    path — ``run`` loop, halt/drain detection, flush and emission services —
    is inherited from :class:`SimulationEngine`, which is what makes the two
    backends behaviourally interchangeable.
    """

    backend = "compiled"

    def __init__(self, net, options=None):
        super().__init__(net, options=options)
        # The pool list object is captured by the compiled closures; it must
        # only ever be mutated in place, never rebound.
        self._reservation_pool = []
        self.plan = compile_plan(self)
        self._worklist_names = set()
        self._worklist = []
        self._worklist_dirty = False
        self._seed_worklist()

    # -- active-place worklist ---------------------------------------------
    def _seed_worklist(self):
        """(Re)initialise the worklist from the places currently holding tokens.

        Called at construction, after :meth:`reset` and at the top of
        :meth:`run` so tokens deposited behind the engine's back (e.g. a
        test priming a place directly) are picked up.
        """
        for place in self.schedule.order:
            if (place.tokens or place.pending) and place.name not in self._worklist_names:
                self._worklist_names.add(place.name)
                self._worklist_dirty = True

    def note_activity(self, place):
        """Mark ``place`` as potentially holding tokens.

        Only needed when tokens are deposited without going through the
        engine (``Place.deposit(..., force=True)`` in tests); every engine
        deposit path maintains the worklist automatically.
        """
        place = self.net._resolve_place(place)
        if not place.is_end and place.name not in self._worklist_names:
            self._worklist_names.add(place.name)
            self._worklist_dirty = True

    def _rebuild_worklist(self):
        names = self._worklist_names
        self._worklist = [step for name, step in self.plan.place_steps if name in names]
        self._worklist_dirty = False

    # -- engine-internal services overridden for the compiled backend --------
    def _deposit(self, token, place, transition_delay):
        SimulationEngine._deposit(self, token, place, transition_delay)
        if place.name not in self._worklist_names and not place.is_end:
            self._worklist_names.add(place.name)
            self._worklist_dirty = True

    def _recycle_reservation(self, token):
        # Flushed reservation tokens go back to the free list.
        self._reservation_pool.append(token)

    # -- main loop ----------------------------------------------------------
    def step(self):
        """Simulate one clock cycle by running the compiled plan.

        Identical observable behaviour to ``SimulationEngine.step``: two-list
        commit, place steps in reverse-topological order (restricted to the
        active worklist), generator transitions, optional utilisation
        sampling, cycle/idle bookkeeping.
        """
        for place in self.schedule.two_list_places:
            if place.pending:
                place.commit_pending()
        if self._worklist_dirty:
            self._rebuild_worklist()
        cycle = self.cycle
        stats = self.stats
        fired = 0
        for place_step in self._worklist:
            fired += place_step(cycle, stats)
        fired += self.plan.generator_step(stats)
        if self.options.collect_utilization:
            for stage in self.net.stages.values():
                stage.occupancy_accumulator += stage.occupancy
        self.cycle += 1
        stats.cycles = self.cycle
        self._fired_this_cycle = fired
        if fired == 0:
            self._idle_cycles += 1
        else:
            self._idle_cycles = 0

    def run(self, max_cycles=None, max_instructions=None):
        self._seed_worklist()
        return super().run(max_cycles=max_cycles, max_instructions=max_instructions)

    def reset(self):
        """Reset dynamic state while keeping the compiled plan.

        The closures bind places, stages, the context and the reservation
        pool — all of which survive a reset — so re-running a model costs no
        recompilation (exercised by the reset-reuse tests).
        """
        super().reset()
        self._reservation_pool.clear()
        self._worklist_names.clear()
        self._worklist = []
        self._worklist_dirty = False
        self._seed_worklist()

    def compilation_summary(self):
        """Specialisation statistics of the compiled plan (for reports)."""
        return self.plan.summary()
