"""Closure compilation of an RCPN model (the paper's simulator generation).

The interpreted engine (:class:`repro.core.engine.SimulationEngine`)
re-derives, for every token on every cycle, facts that are static properties
of the model: which transitions can consume a token in a given place, what
the capacity requirements of each transition are, whether a transition has a
guard at all.  This module performs the paper's *generation* step proper:
it partially evaluates the model against a validated net + static schedule
and emits flat Python closures in which all of those decisions are already
taken.

Three kinds of closure are produced:

* a **transition attempt** (:func:`compile_transition`) — one closure per
  transition that checks the enable rule and, if enabled, fires, with the
  capacity check specialised at compile time into one of three shapes
  (no check at all / a single occupancy comparison / the general
  multi-stage form) and the guard call omitted when the transition has no
  guard;
* a **place step** (:func:`compile_place_step`) — one closure per place
  binding the place's dispatch table (operation class -> attempt tuple)
  so the inner simulation loop performs no scheduler calls;
* a **generator step** (:func:`compile_generator_step`) — one closure
  driving all generator transitions of the instruction-independent sub-net.

The closures intentionally reproduce the interpreted engine's observable
behaviour *exactly* — same statistics counters, same transition attempt
order, same emission-drain timing — so the two backends can be compared
differentially (see ``tests/integration/test_compiled_differential.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheduler import GenerationCache, structure_signature
from repro.core.token import ReservationToken


class PlanBlueprint:
    """Name-level compilation decisions, reusable across builds of one spec.

    The closures themselves bind net objects and must be rebuilt per engine,
    but the *decisions* — which capacity-check shape each transition gets —
    are pure functions of the model structure.  A blueprint records them by
    transition name so :func:`compile_plan` can skip the specialisation
    analysis when an identical spec (same ``net.spec_fingerprint``) was
    compiled before; the :func:`~repro.core.scheduler.structure_signature`
    guards against nets mutated after elaboration.
    """

    __slots__ = ("shapes", "signature")

    def __init__(self, shapes, signature):
        self.shapes = dict(shapes)
        self.signature = signature


#: Process-wide compiled-plan cache keyed by spec fingerprint.
PLAN_CACHE = GenerationCache()


@dataclass
class CompiledPlan:
    """The output of compilation, consumed by ``CompiledEngine``.

    ``place_steps`` is the full list of ``(place_name, step_closure)`` pairs
    in schedule (reverse-topological) order; the engine's active-place
    worklist selects a subsequence of it each cycle.  The counters describe
    how much specialisation was achieved and feed the generation report.
    """

    place_steps: list = field(default_factory=list)
    generator_step: object = None
    transitions_compiled: int = 0
    guard_free_transitions: int = 0
    capacity_free_transitions: int = 0
    single_stage_capacity_transitions: int = 0
    #: Transitions whose guard is a multi-issue gate (never guard-free: the
    #: gate must consult the issue arbiter each attempt).
    issue_gated_transitions: int = 0
    dispatch_entries: int = 0
    nonempty_dispatch_entries: int = 0
    #: "hit" / "miss" for fingerprinted models, "uncached" for hand-built nets.
    cache_status: str = "uncached"

    def summary(self):
        return {
            "transitions_compiled": self.transitions_compiled,
            "guard_free_transitions": self.guard_free_transitions,
            "capacity_free_transitions": self.capacity_free_transitions,
            "single_stage_capacity_transitions": self.single_stage_capacity_transitions,
            "issue_gated_transitions": self.issue_gated_transitions,
            "dispatch_entries": self.dispatch_entries,
            "nonempty_dispatch_entries": self.nonempty_dispatch_entries,
            "places_compiled": len(self.place_steps),
            "plan_cache": self.cache_status,
        }


def transition_capacity_shape(transition):
    """Derive one transition's capacity-check shape as name-level data.

    Returns ``("free",)`` (no check needed), ``("single", stage_name)`` (one
    occupancy comparison) or ``("multi", ((stage_name, count), ...),
    (capacity_stage_names, ...))`` (the general form).  The shape is a pure
    function of the model structure, which is what makes it cacheable per
    spec fingerprint (:class:`PlanBlueprint`).
    """
    token_mode = not transition.is_generator
    source = transition.source
    source_stage = source.stage if source is not None else None
    target = transition.target_place
    if not transition.reservation_outputs and not transition.capacity_stages:
        if target is not None and not target.is_end:
            stage = target.stage
            if stage.capacity is not None and not (token_mode and stage is source_stage):
                return ("single", stage.name)
        return ("free",)
    needed_map = {}
    if target is not None and not target.is_end:
        needed_map[target.stage] = needed_map.get(target.stage, 0) + 1
    for arc in transition.reservation_outputs:
        place = arc.place
        if place is not None and not place.is_end:
            needed_map[place.stage] = needed_map.get(place.stage, 0) + arc.count
    # A token leaving its current stage frees one slot when it stays
    # within the same stage; fold that adjustment into the counts.
    needed = tuple(
        (stage.name, count - (1 if (token_mode and stage is source_stage) else 0))
        for stage, count in needed_map.items()
    )
    return ("multi", needed, tuple(stage.name for stage in transition.capacity_stages))


def compile_transition(engine, transition, plan=None, shape=None):
    """Compile one transition into an ``attempt(token, stats) -> bool`` closure.

    The closure evaluates the paper's enable rule (reservation inputs
    present, output capacity available, guard true) and fires when enabled,
    returning ``True`` exactly when the interpreted engine's
    ``is_enabled`` + ``fire`` pair would have fired.  For transitions of the
    instruction sub-nets ``token`` is the instruction token being moved; for
    generator transitions it is ``None``.

    Compile-time specialisation:

    * the capacity check collapses to *nothing* when the target is the end
      place (or stays within an uncapacitated/same stage), to a single
      ``occupancy < capacity`` comparison for the common plain-move case,
      and to the general multi-stage form only when the transition has
      reservation outputs or explicit ``capacity_stages``;
    * the guard call disappears entirely for guard-less transitions;
    * reservation tokens produced by the transition are drawn from the
      engine's free list instead of being allocated (token pooling).

    ``shape`` is the precomputed :func:`transition_capacity_shape` (served
    from the :data:`PLAN_CACHE` blueprint on repeated builds of one spec);
    when omitted it is derived here, mirroring the interpreted
    ``_output_capacity_available`` with the token-dependent parts resolved
    at compile time (in token mode the token is never None).

    When the engine has a firing tracer (``engine._trace_firing``), a
    *traced* closure is returned instead: the same body with the trace call
    in exactly the interpreted engine's position (right after the firings
    counter, before the action runs), so the traced event stream is
    identical across backends.  The untraced closure stays literally
    unchanged — tracing-off compiled runs execute the same bytecode as
    before this layer existed.  Only the closures differ; the
    :data:`PLAN_CACHE` blueprint stores name-level shapes and is shared
    between traced and untraced builds.
    """
    ctx = engine.ctx
    net = engine.net
    deposit = engine._deposit
    pool = engine._reservation_pool

    name = transition.name
    guard = transition.guard
    action = transition.action
    source = transition.source
    target = transition.target_place
    consumes_token = transition.consumes_token
    delay = transition.delay
    reservation_inputs = tuple(arc.place for arc in transition.reservation_inputs)
    reservation_outputs = tuple(arc.place for arc in transition.reservation_outputs)

    # -- capacity-check specialisation: resolve the (possibly cached) shape
    #    back to this net's stage objects. --------------------------------
    if shape is None:
        shape = transition_capacity_shape(transition)
    stages = net.stages
    capacity_stage = None
    needed = None
    capacity_stages = ()
    if shape[0] == "single":
        capacity_stage = stages[shape[1]]
    elif shape[0] == "multi":
        needed = tuple((stages[stage], count) for stage, count in shape[1])
        capacity_stages = tuple(stages[stage] for stage in shape[2])

    if plan is not None:
        plan.transitions_compiled += 1
        if guard is None:
            plan.guard_free_transitions += 1
        elif getattr(guard, "issue_gate", False):
            plan.issue_gated_transitions += 1
        if capacity_stage is None and needed is None:
            plan.capacity_free_transitions += 1
        elif capacity_stage is not None:
            plan.single_stage_capacity_transitions += 1

    trace_firing = getattr(engine, "_trace_firing", None)
    if trace_firing is None:
        def attempt(token, stats):
            # ---- enable rule, fully inlined ---------------------------
            for place in reservation_inputs:
                if not place.has_reservation():
                    return False
            if capacity_stage is not None:
                # Single-comparison fast path (``_occupancy`` is the slot
                # backing PipelineStage.occupancy; reading it directly
                # avoids a property call in the hottest check of the
                # simulation).
                if capacity_stage._occupancy >= capacity_stage.capacity:
                    return False
            elif needed is not None:
                for stage, count in needed:
                    if not stage.has_room(count):
                        return False
                for stage in capacity_stages:
                    if not stage.has_room():
                        return False
            if guard is not None and not guard(token, ctx):
                return False

            # ---- fire, fully inlined (same observable order as
            #      SimulationEngine.fire) -------------------------------
            stats.transition_firings[name] += 1
            if token is not None and source is not None:
                source.remove(token)
            for place in reservation_inputs:
                pool.append(place.take_reservation())
            if action is not None:
                action(token, ctx)
            if token is not None and not consumes_token and target is not None:
                deposit(token, target, delay)
            for place in reservation_outputs:
                if pool:
                    reservation = pool.pop()
                    reservation.tag = name
                    reservation.delay_override = None
                else:
                    reservation = ReservationToken(tag=name)
                reservation.producer_seq = token.seq if token is not None else None
                deposit(reservation, place, delay)
            queue = engine._emission_queue
            if queue:
                engine._emission_queue = []
                for new_token, destination in queue:
                    if destination is None:
                        destination = net.entry_place_for(new_token.opclass)
                    stats.generated_tokens += 1
                    deposit(new_token, destination, delay)
            return True

        return attempt

    # Traced duplicate of the closure above (a wrapper would reorder the
    # firing event relative to the tokens its action emits).  Keep the two
    # bodies in lockstep when changing the fire sequence.
    def attempt_traced(token, stats):
        for place in reservation_inputs:
            if not place.has_reservation():
                return False
        if capacity_stage is not None:
            if capacity_stage._occupancy >= capacity_stage.capacity:
                return False
        elif needed is not None:
            for stage, count in needed:
                if not stage.has_room(count):
                    return False
            for stage in capacity_stages:
                if not stage.has_room():
                    return False
        if guard is not None and not guard(token, ctx):
            return False

        stats.transition_firings[name] += 1
        trace_firing(engine.cycle, name, token)
        if token is not None and source is not None:
            source.remove(token)
        for place in reservation_inputs:
            pool.append(place.take_reservation())
        if action is not None:
            action(token, ctx)
        if token is not None and not consumes_token and target is not None:
            deposit(token, target, delay)
        for place in reservation_outputs:
            if pool:
                reservation = pool.pop()
                reservation.tag = name
                reservation.delay_override = None
            else:
                reservation = ReservationToken(tag=name)
            reservation.producer_seq = token.seq if token is not None else None
            deposit(reservation, place, delay)
        queue = engine._emission_queue
        if queue:
            engine._emission_queue = []
            for new_token, destination in queue:
                if destination is None:
                    destination = net.entry_place_for(new_token.opclass)
                stats.generated_tokens += 1
                deposit(new_token, destination, delay)
        return True

    return attempt_traced


def compile_place_step(place, attempts_by_opclass, trace_stall=None):
    """Compile one place into a ``step(cycle, stats) -> fired`` closure.

    ``attempts_by_opclass`` maps operation class name to the tuple of
    compiled attempt closures in arc-priority order (the specialised form of
    the paper's ``sorted_transitions`` dispatch table).  The closure mirrors
    the interpreted ``_process_place``: ready instruction tokens are
    snapshot, tokens moved earlier in the same cycle are skipped, and a
    token that no transition accepts counts one stall.  With ``trace_stall``
    set a traced duplicate is compiled instead (same stall event placement
    as the interpreted engine); the untraced closure is unchanged.
    """
    get_attempts = attempts_by_opclass.get

    if trace_stall is None:
        def place_step(cycle, stats, _place=place, _get=get_attempts):
            stored = _place.tokens
            if not stored:
                return 0
            ready = [t for t in stored if t.is_instruction and t.ready_cycle <= cycle]
            if not ready:
                return 0
            fired = 0
            for token in ready:
                if token.place is not _place:
                    continue  # moved by an earlier firing in this cycle
                attempts = _get(token.opclass)
                if attempts:
                    for attempt in attempts:
                        if attempt(token, stats):
                            fired += 1
                            break
                    else:
                        stats.stalls += 1
                else:
                    stats.stalls += 1
            return fired

        return place_step

    def place_step_traced(cycle, stats, _place=place, _get=get_attempts):
        stored = _place.tokens
        if not stored:
            return 0
        ready = [t for t in stored if t.is_instruction and t.ready_cycle <= cycle]
        if not ready:
            return 0
        fired = 0
        for token in ready:
            if token.place is not _place:
                continue  # moved by an earlier firing in this cycle
            attempts = _get(token.opclass)
            if attempts:
                for attempt in attempts:
                    if attempt(token, stats):
                        fired += 1
                        break
                else:
                    stats.stalls += 1
                    trace_stall(cycle, _place.name, token)
            else:
                stats.stalls += 1
                trace_stall(cycle, _place.name, token)
        return fired

    return place_step_traced


def compile_generator_step(engine, transitions, plan=None, attempt_factory=None):
    """Compile the generator transitions into one ``step(stats)`` closure."""
    if attempt_factory is None:
        def attempt_factory(transition):
            return compile_transition(engine, transition, plan)

    generator_plans = tuple(
        (attempt_factory(transition), transition.max_firings_per_cycle)
        for transition in transitions
    )

    def generator_step(stats):
        fired = 0
        for attempt, limit in generator_plans:
            count = 0
            while count < limit and attempt(None, stats):
                count += 1
            fired += count
        return fired

    return generator_step


def compile_plan(engine):
    """Compile the engine's net + schedule into a :class:`CompiledPlan`.

    Dispatch tables are taken from the static schedule
    (:meth:`repro.core.scheduler.StaticSchedule.transitions_for`), so the
    compiled backend produces the same candidate order whether or not the
    interpreted ``use_sorted_transitions`` knob is set — for the compiled
    backend, sorted dispatch is a generation-time property, not a run-time
    option.
    """
    plan = CompiledPlan()
    schedule = engine.schedule
    net = engine.net
    attempt_cache = {}
    trace_stall = getattr(engine, "_trace_stall", None)

    fingerprint = getattr(net, "spec_fingerprint", None)
    blueprint = PLAN_CACHE.lookup(fingerprint) if fingerprint is not None else None
    signature = structure_signature(net) if fingerprint is not None else None
    if blueprint is not None and blueprint.signature != signature:
        # Mirror the schedule cache's structural sanity check: the net was
        # mutated after elaboration, so the cached shapes may be stale;
        # re-derive and overwrite.
        blueprint = None
    if fingerprint is None:
        plan.cache_status = "uncached"
    else:
        plan.cache_status = "hit" if blueprint is not None else "miss"
    cached_shapes = blueprint.shapes if blueprint is not None else None
    collected_shapes = {} if (fingerprint is not None and blueprint is None) else None

    def attempt_for(transition):
        compiled = attempt_cache.get(id(transition))
        if compiled is None:
            shape = cached_shapes.get(transition.name) if cached_shapes is not None else None
            if shape is None:
                shape = transition_capacity_shape(transition)
                if collected_shapes is not None:
                    collected_shapes[transition.name] = shape
            compiled = compile_transition(engine, transition, plan, shape=shape)
            attempt_cache[id(transition)] = compiled
        return compiled

    for place in schedule.order:
        attempts_by_opclass = {}
        for opclass in net.operation_classes:
            candidates = schedule.transitions_for(place, opclass)
            plan.dispatch_entries += 1
            if candidates:
                plan.nonempty_dispatch_entries += 1
                attempts_by_opclass[opclass] = tuple(
                    attempt_for(transition) for transition in candidates
                )
        plan.place_steps.append(
            (place.name, compile_place_step(place, attempts_by_opclass, trace_stall=trace_stall))
        )

    plan.generator_step = compile_generator_step(
        engine, schedule.generator_transitions, plan, attempt_factory=attempt_for
    )
    if collected_shapes is not None and len(collected_shapes) == len(attempt_cache):
        # Equal counts mean every compiled transition had a distinct name;
        # a name collision would make the blueprint ambiguous, so skip
        # caching (mirrors the schedule cache's uniqueness guard).
        PLAN_CACHE.store(fingerprint, PlanBlueprint(collected_shapes, signature))
    return plan
