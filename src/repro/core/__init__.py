"""RCPN core: the paper's Reduced Colored Petri Net formalism and engine.

Public API
----------

Model construction:
    :class:`RCPN`, :class:`PipelineStage`, :class:`Place`,
    :class:`Transition`, :class:`SubNet`, :class:`OperationClass`,
    :class:`SymbolKind`, :class:`DecodeContext`

Tokens and operands:
    :class:`InstructionToken`, :class:`ReservationToken`,
    :class:`RegisterFile`, :class:`Register`, :class:`RegRef`, :class:`Const`

Simulation:
    :func:`generate_simulator`, :class:`SimulationEngine`,
    :class:`EngineOptions`, :class:`EngineContext`,
    :class:`SimulationStatistics`, :class:`InstructionDecoder`
"""

from repro.core.arc import InputArc, OutputArc, TokenKind
from repro.core.decoder import BindingPlan, DecodedTemplate, InstructionDecoder
from repro.core.engine import EngineContext, EngineOptions, SimulationEngine
from repro.core.exceptions import (
    CapacityError,
    HazardProtocolError,
    ModelError,
    RCPNError,
    SimulationError,
)
from repro.core.generator import GenerationReport, generate_simulator
from repro.core.net import RCPN
from repro.core.operands import Const, Operand, RegRef, Register, RegisterFile
from repro.core.operation_class import DecodeContext, OperationClass, SymbolKind
from repro.core.place import Place
from repro.core.scheduler import (
    StaticSchedule,
    calculate_sorted_transitions,
    mark_feedback_places,
    place_evaluation_order,
    place_flow_graph,
)
from repro.core.stage import END_STAGE_NAME, PipelineStage
from repro.core.statistics import SimulationStatistics
from repro.core.subnet import SubNet
from repro.core.token import InstructionToken, ReservationToken, Token
from repro.core.transition import Transition

__all__ = [
    "RCPN",
    "PipelineStage",
    "END_STAGE_NAME",
    "Place",
    "Transition",
    "SubNet",
    "InputArc",
    "OutputArc",
    "TokenKind",
    "Token",
    "InstructionToken",
    "ReservationToken",
    "Operand",
    "RegisterFile",
    "Register",
    "RegRef",
    "Const",
    "OperationClass",
    "SymbolKind",
    "DecodeContext",
    "InstructionDecoder",
    "BindingPlan",
    "DecodedTemplate",
    "SimulationEngine",
    "EngineOptions",
    "EngineContext",
    "SimulationStatistics",
    "generate_simulator",
    "GenerationReport",
    "StaticSchedule",
    "calculate_sorted_transitions",
    "place_evaluation_order",
    "place_flow_graph",
    "mark_feedback_places",
    "RCPNError",
    "ModelError",
    "CapacityError",
    "SimulationError",
    "HazardProtocolError",
]
