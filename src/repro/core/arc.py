"""Arcs: directed connections between places and transitions.

Arcs carry a priority ("each output arc of a place has a priority that shows
the order at which the corresponding transitions can consume the tokens",
paper Section 3) and declare which kind of token they move.
"""

from __future__ import annotations

from enum import Enum


class TokenKind(Enum):
    INSTRUCTION = "instruction"
    RESERVATION = "reservation"


class InputArc:
    """An arc from a place to a transition (tokens are consumed)."""

    __slots__ = ("place", "kind", "priority", "count")

    def __init__(self, place, kind=TokenKind.INSTRUCTION, priority=0, count=1):
        if count < 1:
            raise ValueError("arc weight must be at least 1")
        self.place = place
        self.kind = TokenKind(kind)
        self.priority = priority
        self.count = count

    def __repr__(self):
        return "<InputArc %s -%s/%d->" % (self.place.name, self.kind.value, self.priority)


class OutputArc:
    """An arc from a transition to a place (tokens are produced).

    ``place`` may be ``None`` for generator transitions whose instruction
    token is routed to the entry place of the sub-net matching the token's
    operation class (decided at run time).
    """

    __slots__ = ("place", "kind", "count")

    def __init__(self, place=None, kind=TokenKind.INSTRUCTION, count=1):
        if count < 1:
            raise ValueError("arc weight must be at least 1")
        self.place = place
        self.kind = TokenKind(kind)
        self.count = count

    def __repr__(self):
        target = self.place.name if self.place is not None else "<routed>"
        return "<OutputArc -%s-> %s>" % (self.kind.value, target)
