"""Instruction decoding into RCPN instruction tokens, with partial evaluation.

The paper's simulators decode an instruction once, when its token is
generated, and cache decoded instructions for reuse ("the tokens are cached
for later reuse in the simulator", Section 5).  This module implements that
scheme generically:

* a *decode cache* keyed by the instruction word stores the decoded ISA
  instruction, its operation class and a *binding plan*;
* the binding plan is the partially evaluated result of the operation
  class's symbol binder: for each symbol it records whether the symbol is a
  register (and which :class:`~repro.core.operands.Register` object it
  resolves to), a constant, or a plain value;
* creating a token for a dynamic instance then only instantiates fresh
  :class:`~repro.core.operands.RegRef` objects over the pre-resolved
  registers — no field extraction or register lookup is repeated.
"""

from __future__ import annotations

from repro.core.operands import RegRef
from repro.core.token import InstructionToken


class BindingPlan:
    """Partially evaluated operand binding for one static instruction."""

    __slots__ = ("entries",)

    KIND_REGISTER = 0
    KIND_SHARED = 1  # Const or any immutable operand safe to share across instances
    KIND_REGISTER_LIST = 2  # a list of RegRefs (block transfers)

    def __init__(self, operands):
        self.entries = []
        for symbol, operand in operands.items():
            if isinstance(operand, RegRef):
                self.entries.append((symbol, self.KIND_REGISTER, operand.register))
            elif isinstance(operand, (list, tuple)) and any(
                isinstance(item, RegRef) for item in operand
            ):
                registers = [
                    item.register if isinstance(item, RegRef) else item for item in operand
                ]
                self.entries.append((symbol, self.KIND_REGISTER_LIST, registers))
            else:
                self.entries.append((symbol, self.KIND_SHARED, operand))

    def instantiate(self):
        """Materialise a fresh operand dictionary for one dynamic instance."""
        operands = {}
        for symbol, kind, payload in self.entries:
            if kind == self.KIND_REGISTER:
                operands[symbol] = RegRef(payload)
            elif kind == self.KIND_REGISTER_LIST:
                operands[symbol] = [
                    RegRef(item) if hasattr(item, "regfile") else item for item in payload
                ]
            else:
                operands[symbol] = payload
        return operands


class DecodedTemplate:
    """Cached decode result: ISA instruction + operation class + binding plan."""

    __slots__ = ("word", "instr", "opclass", "plan")

    def __init__(self, word, instr, opclass, plan):
        self.word = word
        self.instr = instr
        self.opclass = opclass
        self.plan = plan


class InstructionDecoder:
    """Decode instruction words into :class:`InstructionToken` objects.

    Parameters
    ----------
    net:
        The RCPN model; its registered operation classes provide the symbol
        binders.
    isa_decode:
        ``isa_decode(word) -> ISA instruction`` (e.g. :func:`repro.isa.decode`).
    classify:
        ``classify(instr) -> operation class name``; defaults to the
        instruction's ``operation_class`` attribute.
    context:
        The :class:`~repro.core.operation_class.DecodeContext` handed to
        symbol binders.
    use_cache:
        Enables the decode cache / partial evaluation (on by default; the
        ablation benchmark turns it off).
    """

    def __init__(self, net, isa_decode, context, classify=None, use_cache=True):
        self.net = net
        self.isa_decode = isa_decode
        self.context = context
        self.classify = classify or (lambda instr: instr.operation_class)
        self.use_cache = use_cache
        self._cache = {}
        self.hits = 0
        self.misses = 0

    def _build_template(self, word):
        instr = self.isa_decode(word)
        opclass_name = self.classify(instr)
        opclass = self.net.operation_classes[opclass_name]
        operands = opclass.bind(instr, self.context)
        return DecodedTemplate(word, instr, opclass_name, BindingPlan(operands))

    def decode_word(self, word, pc=0):
        """Decode ``word`` fetched from ``pc`` into an instruction token."""
        if self.use_cache:
            template = self._cache.get(word)
            if template is None:
                self.misses += 1
                template = self._build_template(word)
                self._cache[word] = template
            else:
                self.hits += 1
        else:
            self.misses += 1
            template = self._build_template(word)

        token = InstructionToken(
            instr=template.instr,
            opclass=template.opclass,
            pc=pc,
            operands=template.plan.instantiate(),
        )
        for operand in token.register_operands():
            operand.token = token
        return token

    def cache_info(self):
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._cache)}

    def clear_cache(self):
        self._cache.clear()
        self.hits = 0
        self.misses = 0
