"""The RCPN cycle-accurate simulation engine.

This is the paper's Section 4 engine: per-(place, type) transition lists are
precomputed, places are evaluated in reverse topological order of the
instruction flow, and only feedback places pay for two-list (master/slave)
storage.  The engine options expose those optimisations individually so the
ablation benchmarks can measure their effect.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.exceptions import SimulationError
from repro.core.scheduler import StaticSchedule
from repro.core.statistics import SimulationStatistics
from repro.core.token import ReservationToken
from repro.observe.trace import TraceConfig, build_tracer


#: Valid values of :attr:`EngineOptions.backend`.
ENGINE_BACKENDS = ("interpreted", "compiled", "generated", "batched")


@dataclass
class EngineOptions:
    """Knobs of the simulation engine.

    ``backend`` selects the execution strategy:

    * ``"interpreted"`` — :class:`SimulationEngine` walks the static
      schedule each cycle, re-checking guards and capacities through the
      generic enable/fire rules.  This is the reference implementation and
      the ablation substrate.
    * ``"compiled"`` — :class:`repro.compiled.CompiledEngine` partially
      evaluates the model into flat per-place closures once and runs those
      (the paper's simulator generation).  Statistics are bit-identical to
      the interpreted backend; only wall-clock throughput differs.
    * ``"generated"`` — :class:`repro.codegen.GeneratedEngine` emits the
      model as real Python source (a straight-line per-cycle ``step()``
      with dispatch tables and capacity checks inlined as code), ``exec``s
      it and disk-caches the source under the spec fingerprint.  Same
      bit-identical statistics contract as the compiled backend.
    * ``"batched"`` — :class:`repro.batched.LaneEngine` runs the same
      emitted source, but the emitter wraps the straight-line step body in
      a *lane loop* (``make_step_batched``), so up to ``lanes``
      same-fingerprint simulations advance in lockstep per host dispatch.
      Each lane keeps private places/statistics/workload; lanes that halt
      early are masked out until the batch drains.  Statistics stay
      bit-identical per lane; only host throughput changes.

    Which knobs apply to which backend:

    * ``max_cycles``, ``stall_limit``, ``collect_utilization``,
      ``two_list_everywhere`` — all backends (they shape the shared
      :class:`~repro.core.scheduler.StaticSchedule` or the shared run
      loop).
    * ``use_sorted_transitions`` — interpreted only.  It exists so the
      ablation benchmark can price the sorted-dispatch optimisation; the
      compiled and generated backends always bake the sorted dispatch
      tables into their closures/source at generation time, so the knob
      has no run-time effect there (it still participates in the codegen
      cache key, since it shapes the shared schedule).

    ``use_sorted_transitions`` and ``two_list_everywhere`` switch the two
    paper optimisations off/on (Section 4); ``collect_utilization`` samples
    per-stage occupancy each cycle (costs time, off by default);
    ``stall_limit`` aborts runs in which nothing fires for that many
    consecutive cycles (a modeling bug, reported as a deadlock).

    ``lanes`` applies to the batched backend only: the maximum number of
    same-fingerprint simulations one batch steps in lockstep (campaign
    runners chunk larger groups into batches of at most ``lanes``).  It is
    a host-scheduling knob, not a simulation parameter — it participates in
    the codegen cache key (the emitted lane loop depends on it) but is
    deliberately excluded from campaign run fingerprints, so re-running a
    stored campaign at a different batch width stays 100% cached.

    ``trace`` attaches a cycle-level event tracer
    (:class:`repro.observe.trace.TraceConfig`, or an equivalent dict from a
    JSON round-trip; ``None`` means no tracing).  Tracing observes but never
    perturbs a run: statistics stay bit-identical with tracing on or off,
    on every backend.  Like ``lanes``, the trace config is a host-side
    observation knob, excluded from campaign run fingerprints; it enters
    the codegen cache key only when an emission-relevant category is
    enabled (see :func:`repro.codegen.cache.emit_trace_categories`).
    """

    max_cycles: int = 10_000_000
    use_sorted_transitions: bool = True
    two_list_everywhere: bool = False
    collect_utilization: bool = False
    stall_limit: int = 100_000
    backend: str = "interpreted"
    lanes: int = 8
    trace: object = None

    def __post_init__(self):
        if isinstance(self.trace, dict):
            # Campaign specs JSON-round-trip engine options through
            # dataclasses.asdict; rebuild the nested config.
            self.trace = TraceConfig(**self.trace)


class EngineContext:
    """The object guards and actions receive as ``ctx``.

    It exposes the simulation cycle, the model's non-pipeline units, and the
    engine services a transition may need: emitting new instruction tokens
    (micro-operations), flushing stages on a misprediction, and requesting
    the end of simulation.
    """

    def __init__(self, engine):
        self._engine = engine
        self.net = engine.net
        self.units = engine.net.units

    @property
    def cycle(self):
        return self._engine.cycle

    @property
    def stats(self):
        return self._engine.stats

    def unit(self, name):
        return self.net.unit(name)

    def emit(self, token, place=None):
        """Send a newly created instruction token into the pipeline.

        Without ``place`` the token is routed to the entry place of the
        sub-net handling its operation class (the paper's "any sub-net can
        generate an instruction token and send it to its corresponding
        sub-net").
        """
        self._engine.queue_emission(token, place)

    def flush_place(self, place):
        """Remove every token from ``place``, releasing their reservations."""
        return self._engine.flush_place(place)

    def flush_stage(self, stage):
        """Flush every place assigned to ``stage`` (wrong-path squash)."""
        return self._engine.flush_stage(stage)

    def flush_younger(self, seq):
        """Squash every in-flight instruction fetched after sequence ``seq``.

        Program-order squash for redirects in multi-issue models, where a
        wrong-path instruction may share a stage with the redirecting one
        and stage-granular flushes would be either too wide or too narrow.
        """
        return self._engine.flush_younger(seq)

    def stop(self, reason="halt"):
        """Request the end of simulation once the pipeline drains."""
        self._engine.request_halt(reason)


class SimulationEngine:
    """Cycle-accurate simulator executing one RCPN model (interpreted backend).

    This engine evaluates the generic enable/fire rules against the static
    schedule every cycle.  The compiled backend
    (:class:`repro.compiled.CompiledEngine`) subclasses it, overriding only
    the per-cycle hot path (``step`` and the deposit/flush internals); the
    run loop, halt/drain logic and the :class:`EngineContext` services are
    shared, which is what keeps the two backends drop-in interchangeable.
    Anything observable — every counter of
    :class:`~repro.core.statistics.SimulationStatistics` — must be identical
    between backends; the differential tests enforce this.
    """

    #: Name of the execution strategy, for reports and benchmarks.
    backend = "interpreted"

    def __init__(self, net, options=None):
        net.validate()
        self.net = net
        self.options = options or EngineOptions()
        self.schedule = StaticSchedule(
            net,
            use_sorted_transitions=self.options.use_sorted_transitions,
            two_list_everywhere=self.options.two_list_everywhere,
        )
        self.stats = SimulationStatistics()
        self.ctx = EngineContext(self)
        self.cycle = 0
        self.halt_requested = False
        self.halt_reason = ""
        self._emission_queue = []
        self._fired_this_cycle = 0
        self._idle_cycles = 0
        self.tracer = build_tracer(self.options.trace, engine=self)
        self._bind_trace_hooks()

    def _bind_trace_hooks(self):
        """Cache per-category tracer methods (``None`` = category off).

        The hot-path sites guard with ``if self._trace_x is not None`` so a
        tracing-off run pays one attribute load per site at most.
        """
        tracer = self.tracer
        self._trace_firing = tracer.firing if tracer is not None and tracer.wants("firing") else None
        self._trace_stall = tracer.stall if tracer is not None and tracer.wants("stall") else None
        self._trace_squash = tracer.squash if tracer is not None and tracer.wants("squash") else None
        self._trace_token = tracer.token_created if tracer is not None and tracer.wants("token") else None
        if tracer is not None and tracer.wants("cache"):
            for unit in self.net.units.values():
                attach = getattr(unit, "attach_trace", None)
                if callable(attach):
                    attach(tracer.cache)

    # -- services used by EngineContext -------------------------------------
    def queue_emission(self, token, place=None):
        self._emission_queue.append((token, place))
        if self._trace_token is not None:
            self._trace_token(self.cycle, token, place)

    def flush_place(self, place, cause=None):
        place = self.net._resolve_place(place)
        removed = place.clear()
        squashed = 0
        trace_squash = self._trace_squash
        for token in removed:
            if token.is_instruction:
                token.squashed = True
                token.release_reservations()
                squashed += 1
                if trace_squash is not None:
                    trace_squash(self.cycle, cause or place.name, token)
            else:
                self._recycle_reservation(token)
        self.stats.squashed += squashed
        return squashed

    def _recycle_reservation(self, token):
        """Hook for reclaiming a flushed reservation token.

        The interpreted engine lets the garbage collector take it; the
        compiled engine overrides this to return the token to its free
        list.  Keeping the flush logic itself in one place protects the
        backends' bit-identical-statistics contract.
        """

    def flush_stage(self, stage):
        stage = stage if hasattr(stage, "places") else self.net.stage(stage)
        squashed = 0
        for place in stage.places:
            squashed += self.flush_place(place, cause=stage.name)
        return squashed

    def flush_younger(self, seq):
        """Squash every in-flight instruction token with ``token.seq > seq``.

        Token sequence numbers are assigned at creation, which for
        instruction tokens is fetch order; squashing by sequence therefore
        removes exactly the wrong-path (younger) instructions no matter
        which stages they reached.  Reservation tokens *deposited by* a
        squashed instruction (``producer_seq``) are withdrawn with it — a
        wrong-path taken branch must not leave its fetch-stall reservation
        behind, or fetch would stay disabled forever.  Redirects are rare,
        so the full place walk stays off the per-cycle hot path of both
        backends.
        """
        squashed = 0
        trace_squash = self._trace_squash
        for place in self.net.places.values():
            if place.is_end:
                continue
            for token in place.all_tokens():
                if token.is_instruction:
                    if token.seq > seq:
                        place.remove(token)
                        token.squashed = True
                        token.release_reservations()
                        squashed += 1
                        if trace_squash is not None:
                            trace_squash(self.cycle, "younger>%d" % seq, token)
                else:
                    producer = getattr(token, "producer_seq", None)
                    if producer is not None and producer > seq:
                        place.remove(token)
                        self._recycle_reservation(token)
        self.stats.squashed += squashed
        return squashed

    def request_halt(self, reason="halt"):
        self.halt_requested = True
        self.halt_reason = reason

    # -- enable / fire rules ---------------------------------------------------
    def _output_capacity_available(self, transition, token):
        """Check the 'output stages have enough capacity' part of the enable rule."""
        source_stage = transition.source.stage if transition.source is not None else None
        target = transition.target
        # Fast path: the common case of a plain instruction move with no
        # reservation outputs and no extra capacity requirements.
        if not transition.reservation_outputs and not transition.capacity_stages:
            if target is None or target.is_end:
                return True
            stage = target.stage
            if stage.capacity is None or (token is not None and stage is source_stage):
                return True
            return stage.occupancy < stage.capacity

        needed = {}
        if target is not None and not target.is_end:
            needed[target.stage] = needed.get(target.stage, 0) + 1
        for arc in transition.reservation_outputs:
            place = arc.place
            if place is not None and not place.is_end:
                needed[place.stage] = needed.get(place.stage, 0) + arc.count
        for stage, count in needed.items():
            # The instruction token leaving its current stage frees one slot
            # if it stays within the same stage.
            departing = 1 if (token is not None and stage is source_stage) else 0
            if not stage.has_room(count - departing):
                return False
        for stage in transition.capacity_stages:
            if not stage.has_room():
                return False
        return True

    def _reservations_available(self, transition):
        for arc in transition.reservation_inputs:
            if not arc.place.has_reservation():
                return False
        return True

    def is_enabled(self, transition, token):
        """The paper's enable rule: tokens present, output capacity, guard true."""
        if not self._reservations_available(transition):
            return False
        if not self._output_capacity_available(transition, token):
            return False
        return transition.evaluate_guard(token, self.ctx)

    def fire(self, transition, token=None):
        """Fire an enabled transition, moving/creating tokens."""
        self.stats.transition_firings[transition.name] += 1
        self._fired_this_cycle += 1
        if self._trace_firing is not None:
            self._trace_firing(self.cycle, transition.name, token)

        if token is not None and transition.source is not None:
            transition.source.remove(token)
        for arc in transition.reservation_inputs:
            arc.place.take_reservation()

        transition.run_action(token, self.ctx)

        if (
            token is not None
            and not transition.consumes_token
            and transition.target is not None
        ):
            self._deposit(token, transition.target, transition.delay)
        for arc in transition.reservation_outputs:
            reservation = ReservationToken(
                tag=transition.name,
                producer_seq=token.seq if token is not None else None,
            )
            self._deposit(reservation, arc.place, transition.delay)

        if self._emission_queue:
            emissions, self._emission_queue = self._emission_queue, []
            for new_token, place in emissions:
                destination = place if place is not None else self.net.entry_place_for(new_token.opclass)
                self.stats.generated_tokens += 1
                self._deposit(new_token, destination, transition.delay)

    def _deposit(self, token, place, transition_delay):
        if place.is_end:
            self._retire(token)
            return
        residence_delay = token.delay_override if token.delay_override is not None else place.delay
        token.delay_override = None
        place.deposit(token, self.cycle + transition_delay + residence_delay)

    def _retire(self, token):
        if token.is_instruction:
            self.stats.instructions += 1
            self.stats.retired_by_class[token.opclass] += 1
            token.place = None

    # -- main loop ----------------------------------------------------------------
    def _process_place(self, place):
        stored = place.tokens
        if not stored:
            return
        cycle = self.cycle
        tokens = [t for t in stored if t.is_instruction and t.ready_cycle <= cycle]
        if not tokens:
            return
        transitions_for = self.schedule.transitions_for
        for token in tokens:
            if token.place is not place:
                continue  # moved by an earlier firing in this cycle
            moved = False
            for transition in transitions_for(place, token.opclass):
                if self.is_enabled(transition, token):
                    self.fire(transition, token)
                    moved = True
                    break
            if not moved:
                self.stats.stalls += 1
                if self._trace_stall is not None:
                    self._trace_stall(cycle, place.name, token)

    def _run_generators(self):
        for transition in self.schedule.generator_transitions:
            firings = 0
            while firings < transition.max_firings_per_cycle and self.is_enabled(transition, None):
                self.fire(transition, None)
                firings += 1

    def step(self):
        """Simulate one clock cycle (the body of the paper's Figure 8 loop)."""
        self._fired_this_cycle = 0
        for place in self.schedule.two_list_places:
            if place.pending:
                place.commit_pending()
        process_place = self._process_place
        for place in self.schedule.order:
            process_place(place)
        self._run_generators()
        if self.options.collect_utilization:
            for stage in self.net.stages.values():
                stage.occupancy_accumulator += stage.occupancy
        self.cycle += 1
        self.stats.cycles = self.cycle

        if self._fired_this_cycle == 0:
            self._idle_cycles += 1
        else:
            self._idle_cycles = 0

    def pipeline_empty(self):
        """True when no token resides in any non-end place."""
        return all(place.occupancy() == 0 for place in self.net.places.values())

    def finished(self):
        if self.halt_requested and self.pipeline_empty():
            return True
        return False

    def run(self, max_cycles=None, max_instructions=None):
        """Run until the model requests a halt and drains, or a limit is hit."""
        limit = max_cycles if max_cycles is not None else self.options.max_cycles
        start = time.perf_counter()
        while True:
            if self.finished():
                self.stats.finished = True
                self.stats.finish_reason = self.halt_reason or "halt"
                break
            if self.cycle >= limit:
                self.stats.finish_reason = "max_cycles"
                break
            if max_instructions is not None and self.stats.instructions >= max_instructions:
                self.stats.finish_reason = "max_instructions"
                break
            if self._idle_cycles >= self.options.stall_limit:
                raise SimulationError(
                    "no transition fired for %d consecutive cycles at cycle %d; "
                    "the model is deadlocked" % (self._idle_cycles, self.cycle)
                )
            self.step()
        self.stats.wall_time_seconds += time.perf_counter() - start
        if self.options.collect_utilization:
            self.stats.stage_occupancy = {
                name: (stage.occupancy_accumulator / self.cycle if self.cycle else 0.0)
                for name, stage in self.net.stages.items()
            }
        return self.stats

    def reset(self):
        """Reset dynamic simulation state, keeping the static schedule."""
        self.net.reset()
        self.stats = SimulationStatistics()
        self.cycle = 0
        self.halt_requested = False
        self.halt_reason = ""
        self._emission_queue = []
        self._fired_this_cycle = 0
        self._idle_cycles = 0
        if self.tracer is not None:
            self.tracer.clear()
            # net.reset() may have rebuilt unit internals (e.g. the memory
            # hierarchy's cache objects); re-attach the cache hook.
            self._bind_trace_hooks()
