"""Exception hierarchy of the RCPN core."""


class RCPNError(Exception):
    """Base class for all errors raised by the RCPN core."""


class ModelError(RCPNError):
    """The RCPN model is structurally invalid (bad stage, place, arc ...)."""


class CapacityError(RCPNError):
    """A token was forced into a pipeline stage that has no free capacity."""


class SimulationError(RCPNError):
    """The simulation engine reached an inconsistent state."""


class UnknownNameError(KeyError):
    """A registry lookup failed; the message lists every valid name.

    Shared by the processor and workload registries so both produce the
    same actionable error shape: what was asked for, what exists, and —
    when the requested name is a near-miss of a registered one — which
    name was probably meant.
    """

    def __init__(self, kind, name, valid):
        import difflib

        self.kind = kind
        self.name = name
        self.valid = tuple(valid)
        self.suggestions = (
            tuple(difflib.get_close_matches(name, self.valid, n=3, cutoff=0.6))
            if isinstance(name, str)
            else ()
        )
        message = "unknown %s %r; registered %ss: %s" % (
            kind,
            name,
            kind,
            ", ".join(self.valid) or "<none>",
        )
        if self.suggestions:
            message += "; did you mean %s?" % " or ".join(
                repr(match) for match in self.suggestions
            )
        super().__init__(message)
        self._message = message

    def __str__(self):
        return self._message


class HazardProtocolError(RCPNError):
    """A register-access interface was used without its guard counterpart.

    The paper requires that ``read``/``reserve_write``/``read(s)`` in a
    transition are paired with ``can_read``/``can_write``/``can_read(s)`` in
    the guard of its input arc; this error reports violations detected at
    run time (e.g. reading a register that still has a pending writer).
    """
