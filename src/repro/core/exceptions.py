"""Exception hierarchy of the RCPN core."""


class RCPNError(Exception):
    """Base class for all errors raised by the RCPN core."""


class ModelError(RCPNError):
    """The RCPN model is structurally invalid (bad stage, place, arc ...)."""


class CapacityError(RCPNError):
    """A token was forced into a pipeline stage that has no free capacity."""


class SimulationError(RCPNError):
    """The simulation engine reached an inconsistent state."""


class HazardProtocolError(RCPNError):
    """A register-access interface was used without its guard counterpart.

    The paper requires that ``read``/``reserve_write``/``read(s)`` in a
    transition are paired with ``can_read``/``can_write``/``can_read(s)`` in
    the guard of its input arc; this error reports violations detected at
    run time (e.g. reading a register that still has a pending writer).
    """
