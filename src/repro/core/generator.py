"""Cycle-accurate simulator generation from an RCPN model.

"Generation" in the paper means deriving, before simulation starts, all the
structures that make the simulation loop fast: the per-(place, operation
class) sorted transition lists, the reverse-topological place evaluation
order and the set of feedback places that need two-list storage
(Section 4).  :func:`generate_simulator` performs exactly that derivation
and returns a ready-to-run engine; :class:`GenerationReport` exposes the
derived structures so tests and benchmarks can inspect them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import EngineOptions, SimulationEngine


@dataclass
class GenerationReport:
    """What the generator derived from the model (for inspection/reporting)."""

    model_name: str
    place_order: list = field(default_factory=list)
    two_list_places: list = field(default_factory=list)
    dispatch_entries: int = 0
    nonempty_dispatch_entries: int = 0
    generator_transitions: list = field(default_factory=list)

    def summary(self):
        return {
            "model": self.model_name,
            "places_in_order": len(self.place_order),
            "two_list_places": len(self.two_list_places),
            "dispatch_entries": self.dispatch_entries,
            "nonempty_dispatch_entries": self.nonempty_dispatch_entries,
            "generator_transitions": len(self.generator_transitions),
        }


def generate_simulator(net, options=None):
    """Generate a cycle-accurate simulator for ``net``.

    Returns ``(engine, report)``: the engine is ready to run, the report
    describes the statically derived structures.
    """
    engine = SimulationEngine(net, options=options or EngineOptions())
    schedule = engine.schedule
    dispatch = schedule.sorted_transitions or {}
    report = GenerationReport(
        model_name=net.name,
        place_order=[place.name for place in schedule.order],
        two_list_places=[place.name for place in schedule.two_list_places],
        dispatch_entries=len(dispatch),
        nonempty_dispatch_entries=sum(1 for value in dispatch.values() if value),
        generator_transitions=[t.name for t in schedule.generator_transitions],
    )
    return engine, report
