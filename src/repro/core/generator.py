"""Cycle-accurate simulator generation from an RCPN model.

"Generation" in the paper means deriving, before simulation starts, all the
structures that make the simulation loop fast: the per-(place, operation
class) sorted transition lists, the reverse-topological place evaluation
order and the set of feedback places that need two-list storage
(Section 4).  :func:`generate_simulator` performs that derivation and
returns a ready-to-run engine for the backend selected in
:class:`~repro.core.engine.EngineOptions`:

* ``backend="interpreted"`` — the derived structures are consulted by the
  generic :class:`~repro.core.engine.SimulationEngine` loop each cycle;
* ``backend="compiled"`` — the structures are additionally partially
  evaluated into flat closures by :mod:`repro.compiled` and executed by
  :class:`~repro.compiled.CompiledEngine` (the paper's generated-simulator
  fast path);
* ``backend="generated"`` — the structures are emitted as Python *source*
  by :mod:`repro.codegen`, ``exec``'d into a module (disk-cached under the
  spec fingerprint) and executed by
  :class:`~repro.codegen.GeneratedEngine`;
* ``backend="batched"`` — the same source-level emission, but with the
  step body wrapped in a lane loop so up to ``options.lanes``
  same-fingerprint simulations advance per host dispatch
  (:class:`~repro.batched.LaneEngine`, driven in lockstep by
  :class:`~repro.batched.LaneBatch`).

:class:`GenerationReport` exposes the derived structures so tests and
benchmarks can inspect them; for the compiled and generated backends it
also carries the specialisation counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import ENGINE_BACKENDS, EngineOptions, SimulationEngine


@dataclass
class GenerationReport:
    """What the generator derived from the model (for inspection/reporting)."""

    model_name: str
    backend: str = "interpreted"
    place_order: list = field(default_factory=list)
    two_list_places: list = field(default_factory=list)
    dispatch_entries: int = 0
    nonempty_dispatch_entries: int = 0
    generator_transitions: list = field(default_factory=list)
    #: Specialisation counters (compiled/generated backends only, else None).
    compilation: dict = None
    #: Content hash of the pipeline spec (None for hand-built nets).
    spec_fingerprint: str = None
    #: "hit"/"miss" for fingerprinted models, "uncached" for hand-built nets.
    schedule_cache: str = "uncached"
    #: Cache-hierarchy geometry, level by level (None when the net carries
    #: no memory unit — e.g. the hand-built test nets).
    memory_hierarchy: list = None

    def summary(self):
        report = {
            "model": self.model_name,
            "backend": self.backend,
            "places_in_order": len(self.place_order),
            "two_list_places": len(self.two_list_places),
            "dispatch_entries": self.dispatch_entries,
            "nonempty_dispatch_entries": self.nonempty_dispatch_entries,
            "generator_transitions": len(self.generator_transitions),
            "schedule_cache": self.schedule_cache,
        }
        if self.spec_fingerprint is not None:
            report["spec_fingerprint"] = self.spec_fingerprint
        if self.compilation is not None:
            report["compilation"] = dict(self.compilation)
        if self.memory_hierarchy is not None:
            report["memory_hierarchy"] = list(self.memory_hierarchy)
        return report


def generate_simulator(net, options=None):
    """Generate a cycle-accurate simulator for ``net``.

    Returns ``(engine, report)``: the engine is ready to run, the report
    describes the statically derived structures.  The engine class is
    selected by ``options.backend`` (one of
    :data:`~repro.core.engine.ENGINE_BACKENDS`).
    """
    options = options or EngineOptions()
    if options.backend not in ENGINE_BACKENDS:
        raise ValueError(
            "unknown engine backend %r; expected one of %s"
            % (options.backend, ", ".join(ENGINE_BACKENDS))
        )
    if options.backend == "compiled":
        # Imported lazily: repro.compiled builds on repro.core.engine.
        from repro.compiled import CompiledEngine

        engine = CompiledEngine(net, options=options)
    elif options.backend == "generated":
        # Imported lazily: repro.codegen builds on repro.core.engine.
        from repro.codegen import GeneratedEngine

        engine = GeneratedEngine(net, options=options)
    elif options.backend == "batched":
        # Imported lazily: repro.batched builds on repro.codegen.
        from repro.batched import LaneEngine

        engine = LaneEngine(net, options=options)
    else:
        engine = SimulationEngine(net, options=options)
    schedule = engine.schedule
    dispatch = schedule.sorted_transitions or {}
    fingerprint = getattr(net, "spec_fingerprint", None)
    memory = getattr(net, "units", {}).get("memory")
    describe_hierarchy = getattr(memory, "describe_hierarchy", None)
    report = GenerationReport(
        model_name=net.name,
        backend=engine.backend,
        place_order=[place.name for place in schedule.order],
        two_list_places=[place.name for place in schedule.two_list_places],
        dispatch_entries=len(dispatch),
        nonempty_dispatch_entries=sum(1 for value in dispatch.values() if value),
        generator_transitions=[t.name for t in schedule.generator_transitions],
        compilation=(
            engine.compilation_summary()
            if options.backend in ("compiled", "generated", "batched")
            else None
        ),
        spec_fingerprint=fingerprint,
        schedule_cache=(
            ("hit" if schedule.from_cache else "miss") if fingerprint is not None else "uncached"
        ),
        memory_hierarchy=describe_hierarchy() if callable(describe_hierarchy) else None,
    )
    return engine, report
