"""The RCPN model container.

An :class:`RCPN` holds the pipeline stages, sub-nets, places, transitions,
operation classes, register files and non-pipeline units of one processor
model.  Processor models (``repro.processors``) are builders that populate
an RCPN; the simulation engine (``repro.core.engine``) executes it.
"""

from __future__ import annotations

from repro.core.exceptions import ModelError
from repro.core.operands import RegisterFile
from repro.core.operation_class import OperationClass
from repro.core.place import Place
from repro.core.stage import END_STAGE_NAME, PipelineStage
from repro.core.subnet import SubNet
from repro.core.transition import Transition


class RCPN:
    """A Reduced Colored Petri Net processor model."""

    def __init__(self, name):
        self.name = name
        self.stages = {}
        self.places = {}
        self.subnets = {}
        self.transitions = []
        self.operation_classes = {}
        self.register_files = {}
        self.units = {}
        self._opclass_to_subnet = {}
        # Every model has the virtual final stage with unlimited capacity.
        self.add_stage(END_STAGE_NAME, capacity=None, delay=0)

    # -- structural construction -------------------------------------------
    def add_stage(self, name, capacity=1, delay=1):
        """Declare a pipeline stage (latch / reservation station / buffer)."""
        if name in self.stages:
            raise ModelError("duplicate stage name %r" % name)
        stage = PipelineStage(name, capacity=capacity, delay=delay)
        self.stages[name] = stage
        return stage

    def stage(self, name):
        try:
            return self.stages[name]
        except KeyError:
            raise ModelError("unknown stage %r" % name) from None

    @property
    def end_stage(self):
        return self.stages[END_STAGE_NAME]

    def add_subnet(self, name, opclasses=()):
        """Declare a sub-net handling the given operation classes."""
        if name in self.subnets:
            raise ModelError("duplicate sub-net name %r" % name)
        subnet = SubNet(name, opclasses=opclasses)
        self.subnets[name] = subnet
        for opclass in subnet.opclasses:
            if opclass in self._opclass_to_subnet:
                raise ModelError(
                    "operation class %r is already handled by sub-net %r"
                    % (opclass, self._opclass_to_subnet[opclass].name)
                )
            self._opclass_to_subnet[opclass] = subnet
        return subnet

    def add_place(self, stage, subnet, name=None, delay=None, two_list=False, entry=False):
        """Add a place assigned to ``stage`` inside ``subnet``.

        ``entry=True`` marks the place as the sub-net's entry place (where
        newly generated instruction tokens of its operation classes arrive).
        """
        stage = stage if isinstance(stage, PipelineStage) else self.stage(stage)
        subnet = subnet if isinstance(subnet, SubNet) else self.subnets[subnet]
        if name is None:
            name = "%s.%s" % (subnet.name, stage.name)
        if name in self.places:
            raise ModelError("duplicate place name %r" % name)
        place = Place(name, stage, subnet=subnet, delay=delay, two_list=two_list)
        self.places[name] = place
        subnet.add_place(place)
        if entry:
            if subnet.entry_place is not None:
                raise ModelError("sub-net %r already has an entry place" % subnet.name)
            subnet.entry_place = place
        return place

    def place(self, name):
        try:
            return self.places[name]
        except KeyError:
            raise ModelError("unknown place %r" % name) from None

    def add_transition(
        self,
        name,
        subnet,
        source=None,
        target=None,
        guard=None,
        action=None,
        delay=0,
        priority=0,
        consumes=(),
        produces=(),
        capacity_stages=(),
        max_firings_per_cycle=1,
    ):
        """Add a transition; see :class:`~repro.core.transition.Transition`."""
        subnet = subnet if isinstance(subnet, SubNet) else self.subnets[subnet]
        source = self._resolve_place(source)
        if target not in (None, Transition.CONSUME):
            target = self._resolve_place(target)
        consumes = [self._resolve_place(p) for p in consumes]
        produces = [self._resolve_place(p) for p in produces]
        capacity_stages = [
            s if isinstance(s, PipelineStage) else self.stage(s) for s in capacity_stages
        ]
        transition = Transition(
            name=name,
            subnet=subnet,
            source=source,
            target=target,
            guard=guard,
            action=action,
            delay=delay,
            priority=priority,
            consumes=consumes,
            produces=produces,
            capacity_stages=capacity_stages,
            max_firings_per_cycle=max_firings_per_cycle,
        )
        self.transitions.append(transition)
        subnet.add_transition(transition)
        return transition

    def _resolve_place(self, place):
        if place is None or isinstance(place, Place):
            return place
        return self.place(place)

    def add_operation_class(self, operation_class):
        """Register an :class:`OperationClass` (or build one from kwargs)."""
        if not isinstance(operation_class, OperationClass):
            raise ModelError("expected an OperationClass instance")
        if operation_class.name in self.operation_classes:
            raise ModelError("duplicate operation class %r" % operation_class.name)
        self.operation_classes[operation_class.name] = operation_class
        return operation_class

    def add_register_file(self, name, size, initial=0):
        if name in self.register_files:
            raise ModelError("duplicate register file %r" % name)
        regfile = RegisterFile(name, size, initial=initial)
        self.register_files[name] = regfile
        return regfile

    def add_unit(self, name, unit):
        """Attach a non-pipeline unit (memory system, predictor, core state)."""
        if name in self.units:
            raise ModelError("duplicate unit %r" % name)
        self.units[name] = unit
        return unit

    def unit(self, name):
        try:
            return self.units[name]
        except KeyError:
            raise ModelError("unknown unit %r" % name) from None

    # -- queries -------------------------------------------------------------
    def subnet_for(self, opclass):
        """The sub-net whose places an instruction token of ``opclass`` uses."""
        try:
            return self._opclass_to_subnet[opclass]
        except KeyError:
            raise ModelError("no sub-net handles operation class %r" % opclass) from None

    def entry_place_for(self, opclass):
        subnet = self.subnet_for(opclass)
        if subnet.entry_place is None:
            raise ModelError("sub-net %r has no entry place" % subnet.name)
        return subnet.entry_place

    def instruction_independent_subnets(self):
        return [s for s in self.subnets.values() if s.is_instruction_independent]

    def generator_transitions(self):
        return [t for t in self.transitions if t.is_generator]

    def places_of_stage(self, stage):
        stage = stage if isinstance(stage, PipelineStage) else self.stage(stage)
        return list(stage.places)

    def transitions_from(self, place):
        place = self._resolve_place(place)
        return [t for t in self.transitions if t.source is place]

    def complexity(self):
        """Structural size of the model (used by the Fig. 1/2 experiment)."""
        arcs = sum(t.arc_count() for t in self.transitions)
        return {
            "stages": len(self.stages),
            "places": len(self.places),
            "transitions": len(self.transitions),
            "arcs": arcs,
            "subnets": len(self.subnets),
            "operation_classes": len(self.operation_classes),
        }

    # -- validation ------------------------------------------------------------
    def validate(self):
        """Check structural consistency; raises :class:`ModelError` on problems."""
        problems = []
        if not any(s.is_instruction_independent for s in self.subnets.values()):
            problems.append("model has no instruction-independent sub-net")
        for opclass in self.operation_classes:
            if opclass not in self._opclass_to_subnet:
                problems.append("operation class %r is not handled by any sub-net" % opclass)
        for subnet in self.subnets.values():
            if not subnet.is_instruction_independent and subnet.entry_place is None:
                problems.append("sub-net %r has no entry place" % subnet.name)
        for transition in self.transitions:
            if transition.is_generator and transition.subnet.opclasses:
                problems.append(
                    "generator transition %r must belong to the instruction-independent sub-net"
                    % transition.name
                )
            if transition.guard is not None and not callable(transition.guard):
                problems.append("guard of transition %r is not callable" % transition.name)
            if transition.action is not None and not callable(transition.action):
                problems.append("action of transition %r is not callable" % transition.name)
            source = transition.source
            if source is not None and source.name not in self.places:
                problems.append("transition %r reads from unknown place %r" % (transition.name, source.name))
            target = transition.target
            if target is not None and target.name not in self.places:
                problems.append("transition %r writes to unknown place %r" % (transition.name, target.name))
        for place in self.places.values():
            if place.stage.name not in self.stages:
                problems.append("place %r uses unknown stage %r" % (place.name, place.stage.name))
        if problems:
            raise ModelError("invalid RCPN model %r:\n  - %s" % (self.name, "\n  - ".join(problems)))
        return True

    def reset(self):
        """Clear all dynamic state (tokens, stage occupancy, register writers).

        Units that are pure per-run bookkeeping (``clears_with_net = True``,
        e.g. the multi-issue :class:`~repro.describe.substrate.IssueControl`)
        are reset here too; memory images and learned predictor state are
        the :class:`~repro.describe.substrate.Processor` facade's business.
        """
        for place in self.places.values():
            place.tokens = []
            place.pending = []
        for stage in self.stages.values():
            stage.reset()
        for regfile in self.register_files.values():
            regfile.writers = [None] * regfile.size
        for unit in self.units.values():
            if getattr(unit, "clears_with_net", False):
                unit.reset()

    def __repr__(self):
        size = self.complexity()
        return "<RCPN %s: %d stages, %d places, %d transitions>" % (
            self.name,
            size["stages"],
            size["places"],
            size["transitions"],
        )
