"""The RCPN register-access model used to capture data hazards.

The paper (Section 3.1) models registers at three levels:

* :class:`RegisterFile` — the actual data storage plus, per register, a
  pointer to the instruction (RegRef) that has reserved the register for
  writing;
* :class:`Register` — an index into a register file; several ``Register``
  objects may point at the same storage to model overlapping registers
  (register banks, windows);
* :class:`RegRef` — a per-dynamic-instruction reference with an internal
  value, standing in for the pipeline latch that carries the operand in real
  hardware.

Data hazards are expressed by pairing the Boolean interfaces
(``can_read``, ``can_read(state)``, ``can_write``) in arc guards with the
corresponding effectful interfaces (``read``, ``read(state)``,
``reserve_write``, ``writeback``) in transitions.  :class:`Const` provides
the same interface for immediate operands so operation-class code handles
registers and constants uniformly.
"""

from __future__ import annotations

from repro.core.exceptions import HazardProtocolError


class Operand:
    """Common interface of every operand bound to an operation-class symbol."""

    def can_read(self, state=None):
        raise NotImplementedError

    def read(self, state=None):
        raise NotImplementedError

    def can_write(self):
        raise NotImplementedError

    def reserve_write(self):
        raise NotImplementedError

    def writeback(self):
        raise NotImplementedError

    def release(self):
        """Drop any reservation this operand holds (squash support)."""

    @property
    def value(self):
        raise NotImplementedError


class RegisterFile:
    """Backing storage for a set of registers plus their writer pointers."""

    def __init__(self, name, size, initial=0):
        if size <= 0:
            raise ValueError("register file size must be positive")
        self.name = name
        self.size = size
        self.data = [initial] * size
        self.writers = [None] * size

    def reset(self, initial=0):
        self.data = [initial] * self.size
        self.writers = [None] * self.size

    def register(self, index, name=None):
        """Create a :class:`Register` view of slot ``index``."""
        return Register(self, index, name=name)

    def registers(self):
        """Create one Register view per slot."""
        return [self.register(i) for i in range(self.size)]

    def __repr__(self):
        return "<RegisterFile %s size=%d>" % (self.name, self.size)


class Register:
    """A named view of one storage slot of a register file.

    Two ``Register`` objects with the same ``(register_file, index)`` pair
    overlap: writing through one is observed through the other, and a write
    reservation taken through one blocks reads through the other.  This is
    the paper's mechanism for overlapping register banks.
    """

    __slots__ = ("regfile", "index", "name")

    def __init__(self, regfile, index, name=None):
        if not 0 <= index < regfile.size:
            raise ValueError(
                "register index %d outside register file %r of size %d"
                % (index, regfile.name, regfile.size)
            )
        self.regfile = regfile
        self.index = index
        self.name = name or "%s[%d]" % (regfile.name, index)

    @property
    def value(self):
        return self.regfile.data[self.index]

    @value.setter
    def value(self, new_value):
        self.regfile.data[self.index] = new_value

    @property
    def writer(self):
        """The RegRef currently registered as the pending writer, if any."""
        return self.regfile.writers[self.index]

    @writer.setter
    def writer(self, regref):
        self.regfile.writers[self.index] = regref

    def overlaps(self, other):
        return self.regfile is other.regfile and self.index == other.index

    def __repr__(self):
        return "<Register %s>" % self.name


class RegRef(Operand):
    """A per-instruction reference to a register (paper's "RegRef").

    The reference carries an internal value (the pipeline latch holding the
    operand), a pointer back to the token that owns it and implements the
    full hazard-protocol interface.
    """

    __slots__ = ("register", "token", "_value", "_has_value", "_reserved")

    def __init__(self, register, token=None):
        self.register = register
        self.token = token
        self._value = None
        self._has_value = False
        self._reserved = False

    # -- read side -------------------------------------------------------
    def can_read(self, state=None):
        """Whether the register value (or a forwarded value) is available.

        Without ``state``: true if nobody (other than this RegRef itself)
        holds a pending write reservation.  With ``state``: true if the
        pending writer's instruction currently resides in the pipeline state
        (place) named ``state`` — the forwarding/bypass condition.
        """
        writer = self.register.writer
        if state is None:
            return writer is None or writer is self
        if writer is None or writer is self:
            return False
        return _writer_in_state(writer, state)

    def read(self, state=None):
        """Latch the operand value into this RegRef's internal storage.

        Without ``state`` the architectural register value is read; with
        ``state`` the pending writer's internal value is forwarded.  Returns
        the value read.

        Reading only latches: it deliberately does *not* mark the RegRef as
        having produced a value (:attr:`has_value`).  A flag-setting ALU
        instruction reads the previous flags through the same RegRef it
        will later write; were the latch to count as production, a
        same-cycle younger reader (possible under multi-issue) would see
        ``writer.has_value`` and forward the *stale* operand as if it were
        the writer's result.  Only the :attr:`value` setter — an actual
        result — makes the reference forwardable.
        """
        if state is None:
            if not self.can_read():
                raise HazardProtocolError(
                    "read() of %s while a write is pending; guard the arc with can_read()"
                    % self.register.name
                )
            self._value = self.register.value
        else:
            writer = self.register.writer
            if writer is None or writer is self or not _writer_in_state(writer, state):
                raise HazardProtocolError(
                    "read(%r) of %s but its writer is not in that state; "
                    "guard the arc with can_read(%r)" % (state, self.register.name, state)
                )
            self._value = writer.internal_value
        return self._value

    # -- write side ------------------------------------------------------
    def can_write(self):
        """True if the register can be reserved for writing (no pending writer)."""
        writer = self.register.writer
        return writer is None or writer is self

    def reserve_write(self):
        """Register this RegRef (and its instruction) as the pending writer."""
        if not self.can_write():
            raise HazardProtocolError(
                "reserve_write() of %s while another write is pending; "
                "guard the arc with can_write()" % self.register.name
            )
        self.register.writer = self
        self._reserved = True

    def writeback(self):
        """Commit the internal value to the register and clear the writer."""
        if not self._has_value:
            raise HazardProtocolError(
                "writeback() of %s before a value was produced" % self.register.name
            )
        self.register.value = self._value
        if self.register.writer is self:
            self.register.writer = None
        self._reserved = False

    def release(self):
        """Drop the write reservation without committing (squashed instruction)."""
        if self.register.writer is self:
            self.register.writer = None
        self._reserved = False

    # -- value access ----------------------------------------------------
    @property
    def value(self):
        """The internal (latched or computed) value of this reference."""
        return self._value

    @value.setter
    def value(self, new_value):
        self._value = new_value
        self._has_value = True

    @property
    def internal_value(self):
        return self._value

    @property
    def has_value(self):
        """True once the owning instruction *produced* a value.

        This is the bypass network's forwardability condition: latching an
        operand with :meth:`read` does not count (see there), only the
        :attr:`value` setter does.
        """
        return self._has_value

    @property
    def reserved(self):
        return self._reserved

    def __repr__(self):
        return "<RegRef %s value=%r reserved=%r>" % (self.register.name, self._value, self._reserved)


class Const(Operand):
    """An immediate operand exposing the RegRef interface.

    ``can_read`` is always true, ``read`` returns the constant, the write
    interfaces succeed but do nothing — exactly the "proper implementation"
    the paper prescribes so that symbols can be bound to either registers or
    constants without changing the sub-net.
    """

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def can_read(self, state=None):
        return state is None

    def read(self, state=None):
        return self._value

    def can_write(self):
        return True

    def reserve_write(self):
        pass

    def writeback(self):
        pass

    @property
    def value(self):
        return self._value

    @property
    def has_value(self):
        """Constants always carry their value."""
        return True

    def __repr__(self):
        return "<Const %r>" % (self._value,)


def _writer_in_state(writer, state):
    """True if the writer RegRef's owning token resides in pipeline state ``state``.

    ``state`` may be a place name, a stage name or a Place object.
    """
    token = writer.token
    if token is None or token.place is None:
        return False
    place = token.place
    if hasattr(state, "name"):
        return place is state or place.name == state.name or place.stage.name == state.name
    return place.name == state or place.stage.name == state
