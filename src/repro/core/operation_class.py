"""Operation classes: groups of instructions sharing a pipeline path.

"Usually in microprocessors, the instructions that flow through a similar
pipeline path have similar binary format as well. [...] Therefore, a single
decoding scheme and behavior description can be used for such group of
instructions which we refer to as an Operation Class." (paper Section 3)

An operation class declares *symbols* — named operands that are bound at
decode time to a :class:`~repro.core.operands.RegRef`,
:class:`~repro.core.operands.Const` or a plain value — and a *binder* that
performs this binding for a concrete decoded instruction.
"""

from __future__ import annotations

from enum import Enum

from repro.core.exceptions import ModelError
from repro.core.token import InstructionToken


class SymbolKind(Enum):
    """What a symbol of an operation class may refer to (paper Section 3)."""

    REGISTER = "register"      # bound to a RegRef
    CONSTANT = "constant"      # bound to a Const
    REGISTER_OR_CONSTANT = "register_or_constant"
    MICRO_OPERATION = "micro_operation"  # bound to a callable / opcode function
    VALUE = "value"            # bound to a plain Python value


class OperationClass:
    """Declaration of one operation class.

    ``symbols`` maps symbol names to :class:`SymbolKind`.  ``binder`` is a
    callable ``binder(instr, context) -> dict`` mapping symbol names to
    operand objects for a concrete decoded instruction; ``context`` is the
    :class:`DecodeContext` giving access to register objects and units.
    """

    def __init__(self, name, symbols=None, binder=None, description=""):
        self.name = name
        self.symbols = dict(symbols or {})
        self.binder = binder
        self.description = description

    def bind(self, instr, context):
        """Bind this class's symbols for ``instr`` and validate the result."""
        if self.binder is None:
            raise ModelError("operation class %r has no binder" % self.name)
        operands = self.binder(instr, context)
        missing = set(self.symbols) - set(operands)
        if missing:
            raise ModelError(
                "binder of operation class %r did not bind symbols %s"
                % (self.name, ", ".join(sorted(missing)))
            )
        return operands

    def make_token(self, instr, context, pc=0):
        """Decode ``instr`` into an :class:`InstructionToken` of this class."""
        operands = self.bind(instr, context)
        token = InstructionToken(instr=instr, opclass=self.name, pc=pc, operands=operands)
        for operand in token.register_operands():
            operand.token = token
        return token

    def __repr__(self):
        return "<OperationClass %s symbols=%s>" % (self.name, sorted(self.symbols))


class DecodeContext:
    """Everything a binder needs to resolve symbols.

    ``registers`` maps architectural register indices (or names) to
    :class:`~repro.core.operands.Register` objects; ``units`` exposes the
    non-pipeline units (memory system, predictor, core state); ``extras``
    carries model-specific helpers.
    """

    def __init__(self, registers, units=None, extras=None):
        self.registers = registers
        self.units = units or {}
        self.extras = extras or {}

    def register(self, index):
        return self.registers[index]
