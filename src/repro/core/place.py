"""Places: the states an instruction can be in.

"A place shows the state of an instruction.  To each place a pipeline stage
is assigned. [...] Places with similar name share the capacity of their
pipeline stage.  The tokens of a place are stored in its pipeline stage."
(paper Section 3).

In this implementation every place keeps its own token list but charges its
stage's shared capacity; places in different sub-nets that are assigned to
the same stage therefore compete for that stage's slots exactly as in the
paper.
"""

from __future__ import annotations

from repro.core.exceptions import CapacityError


class Place:
    """One instruction state, bound to a pipeline stage.

    ``two_list`` places implement the master/slave (two-storage) scheme the
    paper describes for feedback places: tokens deposited during a cycle are
    buffered and only become visible at the next cycle boundary.
    """

    __slots__ = ("name", "stage", "subnet", "delay", "two_list", "tokens", "pending", "dispatch")

    def __init__(self, name, stage, subnet=None, delay=None, two_list=False):
        self.name = name
        self.stage = stage
        self.subnet = subnet
        self.delay = stage.delay if delay is None else delay
        self.two_list = two_list
        self.tokens = []
        self.pending = []
        # Per-place dispatch table filled in by the simulator generator:
        # operation class name -> tuple of candidate transitions in priority
        # order (the paper's sorted_transitions specialised per place).
        self.dispatch = None
        stage.places.append(self)

    @property
    def is_end(self):
        return self.stage.is_end

    def occupancy(self):
        """Tokens stored in this place (visible plus buffered)."""
        return len(self.tokens) + len(self.pending)

    def deposit(self, token, ready_cycle, force=False):
        """Store ``token`` in this place.

        Capacity must have been checked by the caller (the transition-enable
        rule); ``force`` skips the check for engine-internal use such as
        initial marking.
        """
        if not force and not self.stage.has_room():
            raise CapacityError(
                "stage %r has no room for a token entering place %r"
                % (self.stage.name, self.name)
            )
        token.ready_cycle = ready_cycle
        token.place = self
        self.stage.acquire()
        if self.two_list:
            self.pending.append(token)
        else:
            self.tokens.append(token)

    def remove(self, token):
        """Take ``token`` out of this place (it is moving to another state)."""
        if token in self.tokens:
            self.tokens.remove(token)
        elif token in self.pending:
            self.pending.remove(token)
        else:
            raise ValueError("token %r is not stored in place %r" % (token, self.name))
        token.place = None
        self.stage.release()

    def commit_pending(self):
        """Make tokens deposited last cycle visible (two-list commit)."""
        if self.pending:
            self.tokens.extend(self.pending)
            self.pending = []

    def ready_tokens(self, cycle):
        """Instruction and reservation tokens eligible for processing."""
        return [token for token in self.tokens if token.ready_cycle <= cycle]

    def ready_instruction_tokens(self, cycle):
        """Only the instruction tokens eligible for processing this cycle."""
        return [
            token
            for token in self.tokens
            if token.is_instruction and token.ready_cycle <= cycle
        ]

    def reservation_tokens(self):
        return [token for token in self.tokens if not token.is_instruction]

    def take_reservation(self):
        """Remove and return one reservation token (used when an arc consumes it)."""
        for token in self.tokens:
            if not token.is_instruction:
                self.remove(token)
                return token
        for token in self.pending:
            if not token.is_instruction:
                self.remove(token)
                return token
        raise ValueError("no reservation token available in place %r" % self.name)

    def has_reservation(self):
        return any(not token.is_instruction for token in self.tokens) or any(
            not token.is_instruction for token in self.pending
        )

    def clear(self):
        """Remove every token (used by flushes and engine reset)."""
        removed = list(self.tokens) + list(self.pending)
        for token in removed:
            token.place = None
        count = len(removed)
        self.tokens = []
        self.pending = []
        if count:
            self.stage.release(count)
        return removed

    def all_tokens(self):
        return list(self.tokens) + list(self.pending)

    def __repr__(self):
        return "<Place %s stage=%s tokens=%d pending=%d>" % (
            self.name,
            self.stage.name,
            len(self.tokens),
            len(self.pending),
        )
