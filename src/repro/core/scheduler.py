"""Static pre-simulation analysis of an RCPN model.

This module implements the two engine optimisations the paper derives from
RCPN structure (Section 4):

1. :func:`calculate_sorted_transitions` — the ``CalculateSortedTransitions``
   pseudo-code of Figure 6: for every (place, operation class) pair the list
   of candidate output transitions, sorted by arc priority, is extracted
   once before simulation starts.
2. :func:`place_evaluation_order` / :func:`mark_feedback_places` — places are
   ordered in reverse topological order of the instruction flow so tokens of
   the previous cycle are read before being overwritten; only places on
   feedback edges need the two-list (master/slave) storage scheme.
"""

from __future__ import annotations

from collections import defaultdict


def calculate_sorted_transitions(net):
    """Build the ``sorted_transitions[place, opclass]`` dispatch table.

    Only transitions belonging to the sub-net that handles the operation
    class are candidates, mirroring the paper's observation that "an
    instruction token only goes through transitions of the sub-net
    corresponding to its type".
    """
    table = {}
    transitions_by_source = defaultdict(list)
    for transition in net.transitions:
        if transition.source is not None:
            transitions_by_source[transition.source.name].append(transition)

    for place in net.places.values():
        candidates = transitions_by_source.get(place.name, [])
        for opclass in net.operation_classes:
            subnet = net.subnet_for(opclass)
            selected = [t for t in candidates if t.subnet is subnet]
            selected.sort(key=lambda t: t.priority)
            table[(place.name, opclass)] = tuple(selected)
    return table


def place_flow_graph(net):
    """Directed graph over places induced by instruction-token movement.

    There is an edge ``p -> q`` when some transition consumes its instruction
    token from ``p`` and deposits it into ``q``.  Reservation-token arcs are
    ignored: reservation tokens cannot enable a transition by themselves
    (paper Section 4) and therefore do not constrain the evaluation order.
    """
    edges = defaultdict(set)
    for place in net.places.values():
        edges[place.name]  # ensure every place appears as a node
    for transition in net.transitions:
        if transition.source is not None and transition.target is not None:
            edges[transition.source.name].add(transition.target.name)
    return dict(edges)


def place_evaluation_order(net):
    """Places in reverse topological order of the instruction flow.

    Downstream places come first so that, within one cycle, a stage drains
    before the upstream stage refills it — the same-cycle ripple advance of a
    real pipeline.  Cycles in the flow graph (feedback paths) are broken
    arbitrarily; the places targeted by the broken edges are the ones
    :func:`mark_feedback_places` flags for two-list storage.
    """
    graph = place_flow_graph(net)
    visited = {}
    order = []

    def visit(node):
        state = visited.get(node)
        if state == "done":
            return
        if state == "active":
            return  # feedback edge; ignore for ordering purposes
        visited[node] = "active"
        for successor in sorted(graph.get(node, ())):
            visit(successor)
        visited[node] = "done"
        order.append(node)

    for node in sorted(graph):
        visit(node)

    # ``order`` is post-order: successors (downstream places) appear before
    # their predecessors, which is exactly the reverse-topological evaluation
    # order the engine needs.
    return [net.places[name] for name in order]


def mark_feedback_places(net, order=None):
    """Identify places that need two-list (master/slave) storage.

    A place needs it when some transition deposits tokens into it although
    it has already been evaluated earlier in the same cycle — i.e. the edge
    goes against the evaluation order (a feedback edge or a self loop).
    Model authors may additionally mark places explicitly via
    ``two_list=True``.
    """
    if order is None:
        order = place_evaluation_order(net)
    position = {place.name: index for index, place in enumerate(order)}
    feedback = set()
    for transition in net.transitions:
        source, target = transition.source, transition.target
        if source is None or target is None:
            continue
        # The engine evaluates places in ``order``; an edge whose target is
        # evaluated before (or at the same position as) its source would let
        # a token be seen again in the cycle it was written.
        if position[target.name] >= position[source.name]:
            feedback.add(target.name)
        # Reservation-token outputs into already-evaluated places also need
        # buffering so the producing cycle cannot consume them immediately.
    for transition in net.transitions:
        for arc in transition.reservation_outputs:
            if arc.place is not None and transition.source is not None:
                if position[arc.place.name] >= position[transition.source.name]:
                    feedback.add(arc.place.name)
    return [net.places[name] for name in sorted(feedback)]


class StaticSchedule:
    """The result of the pre-simulation analysis, consumed by the engine."""

    def __init__(self, net, use_sorted_transitions=True, two_list_everywhere=False):
        self.net = net
        self.use_sorted_transitions = use_sorted_transitions
        self.order = place_evaluation_order(net)
        feedback_places = mark_feedback_places(net, self.order)
        self.feedback_place_names = {p.name for p in feedback_places}
        for place in net.places.values():
            if two_list_everywhere:
                place.two_list = True
            elif place.name in self.feedback_place_names:
                place.two_list = True
        self.two_list_places = [p for p in net.places.values() if p.two_list]
        self.sorted_transitions = (
            calculate_sorted_transitions(net) if use_sorted_transitions else None
        )
        for place in net.places.values():
            if self.sorted_transitions is None:
                place.dispatch = None
            else:
                place.dispatch = {
                    opclass: self.sorted_transitions[(place.name, opclass)]
                    for opclass in net.operation_classes
                }
        self.generator_transitions = net.generator_transitions()

    def transitions_for(self, place, opclass):
        """Candidate transitions for an instruction token, in priority order."""
        if place.dispatch is not None:
            return place.dispatch.get(opclass, ())
        # Unoptimised path (ablation): search and sort at every call.
        subnet = self.net.subnet_for(opclass)
        candidates = [
            t
            for t in self.net.transitions
            if t.source is place and t.subnet is subnet
        ]
        candidates.sort(key=lambda t: t.priority)
        return candidates
