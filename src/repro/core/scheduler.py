"""Static pre-simulation analysis of an RCPN model.

This module implements the two engine optimisations the paper derives from
RCPN structure (Section 4):

1. :func:`calculate_sorted_transitions` — the ``CalculateSortedTransitions``
   pseudo-code of Figure 6: for every (place, operation class) pair the list
   of candidate output transitions, sorted by arc priority, is extracted
   once before simulation starts.
2. :func:`place_evaluation_order` / :func:`mark_feedback_places` — places are
   ordered in reverse topological order of the instruction flow so tokens of
   the previous cycle are read before being overwritten; only places on
   feedback edges need the two-list (master/slave) storage scheme.

Both analyses are pure functions of the model *structure*.  Models built by
the declarative layer carry a stable content hash (``net.spec_fingerprint``,
from :meth:`repro.describe.PipelineSpec.fingerprint`), which keys
:data:`SCHEDULE_CACHE`: rebuilding the same spec re-uses the first build's
analysis as a name-level :class:`ScheduleBlueprint`, rehydrated against the
new net's objects instead of being re-derived.
"""

from __future__ import annotations

from collections import defaultdict


def calculate_sorted_transitions(net):
    """Build the ``sorted_transitions[place, opclass]`` dispatch table.

    Only transitions belonging to the sub-net that handles the operation
    class are candidates, mirroring the paper's observation that "an
    instruction token only goes through transitions of the sub-net
    corresponding to its type".
    """
    table = {}
    transitions_by_source = defaultdict(list)
    for transition in net.transitions:
        if transition.source is not None:
            transitions_by_source[transition.source.name].append(transition)

    for place in net.places.values():
        candidates = transitions_by_source.get(place.name, [])
        for opclass in net.operation_classes:
            subnet = net.subnet_for(opclass)
            selected = [t for t in candidates if t.subnet is subnet]
            selected.sort(key=lambda t: t.priority)
            table[(place.name, opclass)] = tuple(selected)
    return table


def place_flow_graph(net):
    """Directed graph over places induced by instruction-token movement.

    There is an edge ``p -> q`` when some transition consumes its instruction
    token from ``p`` and deposits it into ``q``.  Reservation-token arcs are
    ignored: reservation tokens cannot enable a transition by themselves
    (paper Section 4) and therefore do not constrain the evaluation order.
    """
    edges = defaultdict(set)
    for place in net.places.values():
        edges[place.name]  # ensure every place appears as a node
    for transition in net.transitions:
        if transition.source is not None and transition.target is not None:
            edges[transition.source.name].add(transition.target.name)
    return dict(edges)


def place_evaluation_order(net):
    """Places in reverse topological order of the instruction flow.

    Downstream places come first so that, within one cycle, a stage drains
    before the upstream stage refills it — the same-cycle ripple advance of a
    real pipeline.  Cycles in the flow graph (feedback paths) are broken
    arbitrarily; the places targeted by the broken edges are the ones
    :func:`mark_feedback_places` flags for two-list storage.
    """
    graph = place_flow_graph(net)
    visited = {}
    order = []

    def visit(node):
        state = visited.get(node)
        if state == "done":
            return
        if state == "active":
            return  # feedback edge; ignore for ordering purposes
        visited[node] = "active"
        for successor in sorted(graph.get(node, ())):
            visit(successor)
        visited[node] = "done"
        order.append(node)

    for node in sorted(graph):
        visit(node)

    # ``order`` is post-order: successors (downstream places) appear before
    # their predecessors, which is exactly the reverse-topological evaluation
    # order the engine needs.
    return [net.places[name] for name in order]


def mark_feedback_places(net, order=None):
    """Identify places that need two-list (master/slave) storage.

    A place needs it when some transition deposits tokens into it although
    it has already been evaluated earlier in the same cycle — i.e. the edge
    goes against the evaluation order (a feedback edge or a self loop).
    Model authors may additionally mark places explicitly via
    ``two_list=True``.
    """
    if order is None:
        order = place_evaluation_order(net)
    position = {place.name: index for index, place in enumerate(order)}
    feedback = set()
    for transition in net.transitions:
        source, target = transition.source, transition.target
        if source is None or target is None:
            continue
        # The engine evaluates places in ``order``; an edge whose target is
        # evaluated before (or at the same position as) its source would let
        # a token be seen again in the cycle it was written.
        if position[target.name] >= position[source.name]:
            feedback.add(target.name)
        # Reservation-token outputs into already-evaluated places also need
        # buffering so the producing cycle cannot consume them immediately.
    for transition in net.transitions:
        for arc in transition.reservation_outputs:
            if (
                arc.place is not None
                and transition.source is not None
                and position[arc.place.name] >= position[transition.source.name]
            ):
                feedback.add(arc.place.name)
    return [net.places[name] for name in sorted(feedback)]


def structure_signature(net):
    """A cheap digest of everything the cached blueprints depend on.

    Covers stages (capacity/delay), places (stage binding), and transitions
    (endpoints, priority, reservation arcs, capacity stages) — the inputs of
    the schedule derivation and of the compiled capacity-shape analysis.
    Guards and actions are deliberately excluded: the blueprints never
    encode behaviour, only structure.  Building the signature is O(model
    size), far cheaper than the analyses it validates.
    """
    stages = tuple(
        (stage.name, stage.capacity, stage.delay) for stage in net.stages.values()
    )
    places = tuple(
        (place.name, place.stage.name, place.delay) for place in net.places.values()
    )
    transitions = tuple(
        (
            transition.name,
            transition.source.name if transition.source is not None else None,
            transition.target_place.name if transition.target_place is not None else None,
            transition.priority,
            transition.consumes_token,
            tuple((arc.place.name, arc.count) for arc in transition.reservation_inputs),
            tuple((arc.place.name, arc.count) for arc in transition.reservation_outputs),
            tuple(stage.name for stage in transition.capacity_stages),
            transition.max_firings_per_cycle,
        )
        for transition in net.transitions
    )
    return (stages, places, transitions)


class ScheduleBlueprint:
    """A :class:`StaticSchedule` reduced to names (net-object free).

    Blueprints are what :data:`SCHEDULE_CACHE` stores: place/transition
    *names* instead of objects, so a blueprint derived from one build of a
    spec can be rehydrated against any later build of the same spec.
    """

    __slots__ = ("place_order", "feedback_places", "dispatch", "generators", "signature")

    def __init__(self, place_order, feedback_places, dispatch, generators, signature):
        self.place_order = tuple(place_order)
        self.feedback_places = frozenset(feedback_places)
        #: ``(place_name, opclass) -> tuple of transition names``, or None.
        self.dispatch = dispatch
        self.generators = tuple(generators)
        #: :func:`structure_signature` of the net the blueprint came from.
        self.signature = signature


class GenerationCache:
    """Fingerprint-keyed cache of generation-time blueprints, with counters.

    Used once for static-schedule blueprints (:data:`SCHEDULE_CACHE`) and
    once for compiled-plan blueprints
    (:data:`repro.compiled.plan.PLAN_CACHE`); both key by the spec content
    hash so only identical declarative models share entries.  Entries are
    evicted least-recently-used beyond ``max_entries`` so design-space
    sweeps over thousands of spec variants cannot grow memory unboundedly.
    """

    def __init__(self, max_entries=256):
        self._entries = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def lookup(self, key):
        blueprint = self._entries.get(key)
        if blueprint is None:
            self.misses += 1
        else:
            self.hits += 1
            # Refresh recency (dicts iterate in insertion order).
            self._entries[key] = self._entries.pop(key)
        return blueprint

    def store(self, key, blueprint):
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = blueprint

    def clear(self):
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self):
        return {"entries": len(self._entries), "hits": self.hits, "misses": self.misses}


#: Process-wide schedule cache keyed by (spec fingerprint, schedule options).
SCHEDULE_CACHE = GenerationCache()


class StaticSchedule:
    """The result of the pre-simulation analysis, consumed by the engine.

    For nets elaborated from a spec (``net.spec_fingerprint`` set) the
    analysis is served from :data:`SCHEDULE_CACHE` when an identical spec
    was scheduled before; ``from_cache`` records which way this instance
    was built.
    """

    def __init__(self, net, use_sorted_transitions=True, two_list_everywhere=False):
        self.net = net
        self.use_sorted_transitions = use_sorted_transitions
        fingerprint = getattr(net, "spec_fingerprint", None)
        key = (
            (fingerprint, use_sorted_transitions, two_list_everywhere)
            if fingerprint is not None
            else None
        )
        blueprint = SCHEDULE_CACHE.lookup(key) if key is not None else None
        if blueprint is not None and not self._blueprint_matches(net, blueprint):
            # The net does not have the structure the blueprint describes
            # (someone mutated an elaborated net, or a mutated net poisoned
            # the entry): re-derive and overwrite the cached blueprint.
            blueprint = None
        self.from_cache = blueprint is not None
        if blueprint is not None:
            self._rehydrate(net, blueprint, two_list_everywhere)
        else:
            self._derive(net, use_sorted_transitions, two_list_everywhere)
            if key is not None:
                transition_names = [t.name for t in net.transitions]
                if len(set(transition_names)) == len(transition_names):
                    SCHEDULE_CACHE.store(key, self._to_blueprint())
        self.generator_transitions = (
            [self._transition_by_name[name] for name in blueprint.generators]
            if blueprint is not None
            else net.generator_transitions()
        )

    @staticmethod
    def _blueprint_matches(net, blueprint):
        """Structural sanity check before rehydrating a blueprint.

        The fingerprint describes the *spec*; if the net was mutated after
        elaboration (extra transitions, changed priorities or capacities,
        rewired arcs) rehydration would silently replay stale analysis.
        Comparing :func:`structure_signature` catches every mutation the
        blueprint encodes.
        """
        names = {t.name for t in net.transitions}
        if len(names) != len(net.transitions):
            return False
        return structure_signature(net) == blueprint.signature

    # -- fresh derivation ----------------------------------------------------
    def _derive(self, net, use_sorted_transitions, two_list_everywhere):
        self.order = place_evaluation_order(net)
        feedback_places = mark_feedback_places(net, self.order)
        self.feedback_place_names = {p.name for p in feedback_places}
        for place in net.places.values():
            if two_list_everywhere:
                place.two_list = True
            elif place.name in self.feedback_place_names:
                place.two_list = True
        self.two_list_places = [p for p in net.places.values() if p.two_list]
        self.sorted_transitions = (
            calculate_sorted_transitions(net) if use_sorted_transitions else None
        )
        for place in net.places.values():
            if self.sorted_transitions is None:
                place.dispatch = None
            else:
                place.dispatch = {
                    opclass: self.sorted_transitions[(place.name, opclass)]
                    for opclass in net.operation_classes
                }

    def _to_blueprint(self):
        dispatch = None
        if self.sorted_transitions is not None:
            dispatch = {
                key: tuple(t.name for t in transitions)
                for key, transitions in self.sorted_transitions.items()
            }
        return ScheduleBlueprint(
            place_order=(place.name for place in self.order),
            feedback_places=self.feedback_place_names,
            dispatch=dispatch,
            generators=(t.name for t in self.net.generator_transitions()),
            signature=structure_signature(self.net),
        )

    # -- rehydration from a cached blueprint ---------------------------------
    def _rehydrate(self, net, blueprint, two_list_everywhere):
        places = net.places
        by_name = {t.name: t for t in net.transitions}
        self._transition_by_name = by_name
        self.order = [places[name] for name in blueprint.place_order]
        self.feedback_place_names = set(blueprint.feedback_places)
        for place in places.values():
            if two_list_everywhere or place.name in self.feedback_place_names:
                place.two_list = True
        self.two_list_places = [p for p in places.values() if p.two_list]
        if blueprint.dispatch is None:
            self.sorted_transitions = None
            for place in places.values():
                place.dispatch = None
        else:
            self.sorted_transitions = {
                key: tuple(by_name[name] for name in names)
                for key, names in blueprint.dispatch.items()
            }
            for place in places.values():
                place.dispatch = {
                    opclass: self.sorted_transitions[(place.name, opclass)]
                    for opclass in net.operation_classes
                }

    def transitions_for(self, place, opclass):
        """Candidate transitions for an instruction token, in priority order."""
        if place.dispatch is not None:
            return place.dispatch.get(opclass, ())
        # Unoptimised path (ablation): search and sort at every call.
        subnet = self.net.subnet_for(opclass)
        candidates = [
            t
            for t in self.net.transitions
            if t.source is place and t.subnet is subnet
        ]
        candidates.sort(key=lambda t: t.priority)
        return candidates
