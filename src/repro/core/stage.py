"""Pipeline stages: the storage elements instructions reside in.

A pipeline stage is "a latch, reservation station or any other storage
element in the pipeline that an instruction can reside in" (paper
Section 3).  Stages have a capacity shared by every place assigned to them
and a default delay inherited by those places.
"""

from __future__ import annotations

#: Name of the virtual final stage every instruction retires into.
END_STAGE_NAME = "end"


class PipelineStage:
    """A named storage element with a capacity and a default residence delay.

    ``capacity`` of ``None`` means unlimited (used by the virtual ``end``
    stage).  Occupancy is tracked by the engine as tokens move between the
    places assigned to the stage.
    """

    __slots__ = ("name", "capacity", "delay", "places", "_occupancy", "occupancy_accumulator")

    def __init__(self, name, capacity=1, delay=1):
        if capacity is not None and capacity < 1:
            raise ValueError("stage capacity must be at least 1 (or None for unlimited)")
        if delay < 0:
            raise ValueError("stage delay must be non-negative")
        self.name = name
        self.capacity = capacity
        self.delay = delay
        self.places = []
        self._occupancy = 0
        self.occupancy_accumulator = 0

    @property
    def is_end(self):
        return self.name == END_STAGE_NAME

    @property
    def unlimited(self):
        return self.capacity is None

    @property
    def occupancy(self):
        """Number of tokens currently stored in any place of this stage."""
        return self._occupancy

    def has_room(self, count=1):
        """True if ``count`` more tokens fit into this stage."""
        if self.unlimited:
            return True
        return self._occupancy + count <= self.capacity

    def acquire(self, count=1):
        self._occupancy += count

    def release(self, count=1):
        self._occupancy -= count
        if self._occupancy < 0:
            raise RuntimeError("stage %r occupancy went negative" % self.name)

    def reset(self):
        self._occupancy = 0
        self.occupancy_accumulator = 0

    def __repr__(self):
        cap = "inf" if self.unlimited else str(self.capacity)
        return "<PipelineStage %s capacity=%s occupancy=%d>" % (self.name, cap, self._occupancy)
