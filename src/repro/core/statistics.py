"""Statistics collected by the cycle-accurate simulation engine."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class SimulationStatistics:
    """Counters a cycle-accurate simulator reports after a run.

    ``cycles`` and ``instructions`` give CPI; ``transition_firings`` and the
    stall/squash counters support micro-architectural analysis; wall-clock
    fields are filled in by the engine so simulation throughput
    (cycles per host second — the paper's Figure 10 metric) can be computed.
    """

    cycles: int = 0
    instructions: int = 0
    retired_by_class: Counter = field(default_factory=Counter)
    transition_firings: Counter = field(default_factory=Counter)
    stalls: int = 0
    squashed: int = 0
    generated_tokens: int = 0
    wall_time_seconds: float = 0.0
    finished: bool = False
    finish_reason: str = ""
    stage_occupancy: dict = field(default_factory=dict)

    @property
    def cpi(self):
        """Cycles per instruction."""
        if self.instructions == 0:
            return float("inf")
        return self.cycles / self.instructions

    @property
    def ipc(self):
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cycles_per_second(self):
        """Simulated cycles per host second (Figure 10's metric)."""
        if self.wall_time_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_time_seconds

    @property
    def instructions_per_second(self):
        if self.wall_time_seconds <= 0:
            return 0.0
        return self.instructions / self.wall_time_seconds

    def merge_unit_statistics(self, units):
        """Attach statistics of non-pipeline units (caches, predictors)."""
        collected = {}
        for name, unit in units.items():
            stats = getattr(unit, "statistics", None)
            if callable(stats):
                collected[name] = stats()
            elif stats is not None:
                collected[name] = stats
        return collected

    def summary(self):
        """A plain dictionary convenient for reports and assertions."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cpi": self.cpi if self.instructions else None,
            "stalls": self.stalls,
            "squashed": self.squashed,
            "wall_time_seconds": self.wall_time_seconds,
            "cycles_per_second": self.cycles_per_second,
            "finished": self.finished,
            "finish_reason": self.finish_reason,
        }
