"""Sub-nets: one per operation class plus the instruction-independent net.

"In any RCPN, there is one instruction independent sub-net that generates
the instruction tokens, and for each instruction type, there is a
corresponding sub-net that distinctively describes the behavior of
instruction tokens of that type." (paper Section 3)
"""

from __future__ import annotations


class SubNet:
    """A named group of places and transitions.

    ``opclasses`` lists the operation-class names whose tokens flow through
    this sub-net; the instruction-independent sub-net has an empty list.
    ``entry_place`` is where newly generated tokens of those classes are
    deposited.
    """

    def __init__(self, name, opclasses=(), entry_place=None):
        self.name = name
        self.opclasses = tuple(opclasses)
        self.entry_place = entry_place
        self.places = []
        self.transitions = []

    @property
    def is_instruction_independent(self):
        return not self.opclasses

    def add_place(self, place):
        self.places.append(place)

    def add_transition(self, transition):
        self.transitions.append(transition)

    def handles(self, opclass):
        return opclass in self.opclasses

    def __repr__(self):
        kind = "instruction-independent" if self.is_instruction_independent else ",".join(self.opclasses)
        return "<SubNet %s (%s) places=%d transitions=%d>" % (
            self.name,
            kind,
            len(self.places),
            len(self.transitions),
        )
