"""Tokens of the RCPN model.

The paper distinguishes two token groups (Section 3):

* *reservation tokens* carry no data; their presence marks a pipeline stage
  as occupied (used, e.g., to stall the fetch unit while a branch resolves);
* *instruction tokens* carry the decoded instruction and its operands; one
  instruction token represents one dynamic instruction flowing through the
  pipeline.
"""

from __future__ import annotations

import itertools

_sequence = itertools.count()


class Token:
    """Base token: a delay-carrying object residing in a place."""

    __slots__ = ("ready_cycle", "delay_override", "place", "seq")

    is_instruction = False

    def __init__(self):
        self.ready_cycle = 0
        self.delay_override = None
        self.place = None
        self.seq = next(_sequence)

    @property
    def delay(self):
        """Pending token-delay override (paper: 'delay of a token')."""
        return self.delay_override

    @delay.setter
    def delay(self, value):
        self.delay_override = value

    def __repr__(self):
        return "<%s #%d in %s>" % (
            type(self).__name__,
            self.seq,
            self.place.name if self.place is not None else "limbo",
        )


class ReservationToken(Token):
    """A dataless token marking its place's pipeline stage as occupied.

    ``producer_seq`` records the sequence number of the instruction token
    whose transition deposited the reservation (``None`` for generator
    transitions).  It is the provenance the program-order squash
    (:meth:`~repro.core.engine.SimulationEngine.flush_younger`) needs: when
    a deep redirect squashes a wrong-path branch that already parked a
    fetch-stall reservation, the reservation must be withdrawn with it or
    the fetch guard it disables would block forever.
    """

    __slots__ = ("tag", "producer_seq")

    def __init__(self, tag=None, producer_seq=None):
        super().__init__()
        self.tag = tag
        self.producer_seq = producer_seq


class InstructionToken(Token):
    """A decoded dynamic instruction and its bound operands.

    ``operands`` maps the symbols of the instruction's operation class to
    operand objects (:class:`~repro.core.operands.RegRef`,
    :class:`~repro.core.operands.Const`, plain Python values).  Symbols are
    also exposed as attributes so model code can be written exactly like the
    paper's examples: ``t.s1.can_read()``, ``t.d.reserve_write()`` ...
    """

    __slots__ = ("instr", "opclass", "pc", "operands", "annotations", "squashed")

    is_instruction = True

    def __init__(self, instr, opclass, pc=0, operands=None):
        super().__init__()
        self.instr = instr
        self.opclass = opclass
        self.pc = pc
        self.operands = dict(operands or {})
        self.annotations = {}
        self.squashed = False

    def __getattr__(self, name):
        # Only called when normal attribute lookup fails: resolve operation
        # class symbols (t.s1, t.d, ...) from the operand binding.
        try:
            operands = object.__getattribute__(self, "operands")
        except AttributeError:
            raise AttributeError(name) from None
        if name in operands:
            return operands[name]
        raise AttributeError(
            "%r is neither a token attribute nor a symbol of operation class %r"
            % (name, object.__getattribute__(self, "opclass"))
        )

    @property
    def type(self):
        """The operation class name (paper notation: ``t.type``)."""
        return self.opclass

    def symbol(self, name):
        """Explicit symbol lookup (same as attribute access)."""
        return self.operands[name]

    def register_operands(self):
        """All operands that participate in the register-hazard protocol.

        Operands bound to lists (block-transfer register lists) are
        flattened so every RegRef is covered by squash/release handling.
        """
        from repro.core.operands import RegRef

        found = []
        for operand in self.operands.values():
            if isinstance(operand, RegRef):
                found.append(operand)
            elif isinstance(operand, (list, tuple)):
                found.extend(item for item in operand if isinstance(item, RegRef))
        return found

    def release_reservations(self):
        """Drop any write reservations held by this token's operands.

        Called when a token is squashed (wrong-path flush) so that younger
        correct-path instructions are not blocked forever.
        """
        for operand in self.register_operands():
            operand.release()

    def __repr__(self):
        where = self.place.name if self.place is not None else "limbo"
        return "<InstructionToken #%d %s pc=%#x in %s>" % (self.seq, self.opclass, self.pc, where)
