"""Transitions: the work an instruction performs when changing state.

"A transition represents the functionality that must be executed when the
instruction changes its state (place). [...] A transition is enabled if its
guard condition is true and there are enough tokens of proper types on its
input arcs AND the pipeline stages of the output places have enough capacity
to accept new tokens." (paper Section 3)
"""

from __future__ import annotations

from repro.core.arc import InputArc, OutputArc, TokenKind


class Transition:
    """A guarded state change of an instruction token.

    Parameters
    ----------
    name:
        Display name (``D``, ``E``, ``We`` ... in the paper's figures).
    subnet:
        The sub-net the transition belongs to.
    source:
        The place the instruction token is consumed from, or ``None`` for
        generator transitions (the instruction-independent sub-net's fetch).
    target:
        The place the instruction token is deposited into; ``None`` routes
        the token to the entry place of the sub-net matching its operation
        class (only meaningful for generator transitions), and the string
        ``"consume"`` destroys the token.
    guard:
        ``guard(token, ctx) -> bool``; ``None`` means always true.
    action:
        ``action(token, ctx)``; executed when the transition fires.
    delay:
        Execution delay of the transition's functionality, added to the
        residence delay of the token in the target place.
    priority:
        Priority of the arc from ``source`` (lower values are tried first).
    consumes:
        Places a reservation token is consumed from when firing.
    produces:
        Places a reservation token is deposited into when firing.
    capacity_stages:
        Extra stages that must have free capacity for the transition to be
        enabled (used by generator transitions whose concrete target place
        is only known after decoding).
    max_firings_per_cycle:
        Upper bound on firings per cycle for generator transitions (1 models
        single-issue fetch; larger values model multi-issue fetch).
    """

    CONSUME = "consume"

    def __init__(
        self,
        name,
        subnet,
        source=None,
        target=None,
        guard=None,
        action=None,
        delay=0,
        priority=0,
        consumes=(),
        produces=(),
        capacity_stages=(),
        max_firings_per_cycle=1,
    ):
        self.name = name
        self.subnet = subnet
        self.guard = guard
        self.action = action
        self.delay = delay
        self.priority = priority
        self.max_firings_per_cycle = max_firings_per_cycle

        self.source_arc = None
        if source is not None:
            self.source_arc = InputArc(source, TokenKind.INSTRUCTION, priority=priority)

        self.target_place = None
        self.consumes_token = False
        if target == Transition.CONSUME:
            self.consumes_token = True
        elif target is not None:
            self.target_place = target

        self.reservation_inputs = [InputArc(p, TokenKind.RESERVATION) for p in consumes]
        self.reservation_outputs = [OutputArc(p, TokenKind.RESERVATION) for p in produces]
        self.capacity_stages = list(capacity_stages)

    # -- structural queries ----------------------------------------------
    @property
    def source(self):
        return self.source_arc.place if self.source_arc is not None else None

    @property
    def target(self):
        return self.target_place

    @property
    def is_generator(self):
        """True for transitions of the instruction-independent sub-net that
        create instruction tokens rather than moving an existing one."""
        return self.source_arc is None

    def input_arcs(self):
        arcs = []
        if self.source_arc is not None:
            arcs.append(self.source_arc)
        arcs.extend(self.reservation_inputs)
        return arcs

    def output_arcs(self):
        arcs = []
        if self.target_place is not None:
            arcs.append(OutputArc(self.target_place, TokenKind.INSTRUCTION))
        elif self.is_generator and not self.consumes_token:
            arcs.append(OutputArc(None, TokenKind.INSTRUCTION))
        arcs.extend(self.reservation_outputs)
        return arcs

    def arc_count(self):
        return len(self.input_arcs()) + len(self.output_arcs())

    # -- behaviour ---------------------------------------------------------
    def evaluate_guard(self, token, ctx):
        if self.guard is None:
            return True
        return bool(self.guard(token, ctx))

    def run_action(self, token, ctx):
        if self.action is not None:
            self.action(token, ctx)

    def __repr__(self):
        src = self.source.name if self.source is not None else "∅"
        if self.consumes_token:
            dst = "∅"
        elif self.target_place is not None:
            dst = self.target_place.name
        else:
            dst = "<routed>"
        return "<Transition %s: %s -> %s>" % (self.name, src, dst)
