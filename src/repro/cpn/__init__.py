"""Colored Petri Net substrate.

RCPN is defined as a restriction/re-interpretation of Colored Petri Nets;
the paper argues that an RCPN model "can be converted to standard CPN and
use all the tools and algorithms that are available for CPN".  This package
provides that substrate:

* a general Colored Petri Net with multiset markings, binding enumeration
  and the occurrence rule (:mod:`repro.cpn.net`),
* analysis algorithms over the reachability graph: boundedness, deadlock
  and liveness checks (:mod:`repro.cpn.analysis`),
* the RCPN -> CPN structural conversion, which makes the capacity
  constraints explicit as complement places and thereby reproduces the
  circular loops of the paper's Figure 2(b) (:mod:`repro.cpn.convert`).
"""

from repro.cpn.multiset import Multiset
from repro.cpn.net import CPN, CPNPlace, CPNTransition, InputPattern, OutputProduction
from repro.cpn.simulator import CPNSimulator
from repro.cpn.analysis import ReachabilityGraph, analyze_boundedness, find_deadlocks
from repro.cpn.convert import rcpn_to_cpn

__all__ = [
    "Multiset",
    "CPN",
    "CPNPlace",
    "CPNTransition",
    "InputPattern",
    "OutputProduction",
    "CPNSimulator",
    "ReachabilityGraph",
    "analyze_boundedness",
    "find_deadlocks",
    "rcpn_to_cpn",
]
