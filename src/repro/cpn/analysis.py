"""Analysis algorithms over Colored Petri Nets.

Building the reachability graph lets the standard CPN questions be answered
for the (small) converted processor models: boundedness of every place,
presence of deadlock markings, and which transitions are live.  This is the
"reuse the rich varieties of analysis techniques proposed for CPN" part of
the paper's argument.
"""

from __future__ import annotations

from collections import deque


class ReachabilityGraph:
    """The reachability (occurrence) graph of a CPN from its initial marking."""

    def __init__(self, net, max_markings=10_000):
        self.net = net
        self.max_markings = max_markings
        self.markings = []
        self.edges = []
        self.truncated = False
        self._index = {}
        self._build()

    def _build(self):
        net = self.net
        initial = net.marking()
        self._index[initial] = 0
        self.markings.append(initial)
        frontier = deque([initial])
        while frontier:
            marking = frontier.popleft()
            source = self._index[marking]
            for transition in net.transitions:
                net.set_marking(marking)
                for binding in net.bindings(transition):
                    net.set_marking(marking)
                    net.fire(transition, binding)
                    successor = net.marking()
                    if successor not in self._index:
                        if len(self.markings) >= self.max_markings:
                            self.truncated = True
                            continue
                        self._index[successor] = len(self.markings)
                        self.markings.append(successor)
                        frontier.append(successor)
                    self.edges.append((source, transition.name, self._index.get(successor)))
            net.set_marking(marking)
        net.set_marking(initial)

    # -- queries ------------------------------------------------------------
    def marking_count(self):
        return len(self.markings)

    def place_bounds(self):
        """Maximum number of tokens observed in each place."""
        bounds = {name: 0 for name in self.net.places}
        for marking in self.markings:
            for name, frozen in marking:
                total = sum(count for _, count in frozen)
                bounds[name] = max(bounds[name], total)
        return bounds

    def deadlock_markings(self):
        """Markings with no enabled transition."""
        dead = []
        for marking in self.markings:
            self.net.set_marking(marking)
            if not self.net.enabled_transitions():
                dead.append(marking)
        self.net.set_marking(self.markings[0])
        return dead

    def fired_transitions(self):
        return {name for _, name, _ in self.edges}

    def dead_transitions(self):
        """Transitions that never fire anywhere in the reachability graph."""
        fired = self.fired_transitions()
        return [t.name for t in self.net.transitions if t.name not in fired]


def analyze_boundedness(net, max_markings=10_000):
    """Return ``(is_bounded_within_limit, place_bounds)`` for ``net``."""
    graph = ReachabilityGraph(net, max_markings=max_markings)
    return (not graph.truncated), graph.place_bounds()


def find_deadlocks(net, max_markings=10_000):
    """Return the deadlock markings reachable from the initial marking."""
    graph = ReachabilityGraph(net, max_markings=max_markings)
    return graph.deadlock_markings()
