"""Structural conversion of an RCPN model into a standard Colored Petri Net.

The conversion follows the paper's argument (Sections 1 and 3): RCPN hides
two things that a plain CPN must spell out —

1. the *capacity* of every pipeline stage.  In the CPN each finite-capacity
   stage gets a complement ("free slot") place initially marked with as many
   black tokens as the stage has capacity; every transition that moves an
   instruction into the stage consumes a free slot and every transition that
   moves it out returns one.  These complement places and their return arcs
   are exactly the circular back-edges of the paper's Figure 2(b);
2. the *enable rule*.  The RCPN rule "output stages must have room" becomes
   ordinary token availability on the complement places.

The conversion abstracts data (guards and actions) away: instruction tokens
are represented by their operation class, which is sufficient for the
structural analyses (boundedness, deadlock, liveness) the CPN substrate
provides, and for quantifying the structural blow-up in the Figure 1/2
experiment.
"""

from __future__ import annotations

from repro.cpn.net import CPN, InputPattern, OutputProduction


def _free_place_name(stage):
    return "free[%s]" % stage.name


def rcpn_to_cpn(net, token_classes=None):
    """Convert an RCPN model into a structural CPN.

    ``token_classes`` optionally restricts which operation classes are
    represented as token colors (all registered classes by default).
    """
    classes = tuple(token_classes or net.operation_classes or ("instruction",))
    cpn = CPN("%s (as CPN)" % net.name)

    # Every RCPN place becomes a CPN place.
    for place in net.places.values():
        cpn.add_place(place.name)

    # Every finite-capacity stage gets a complement place holding its free slots.
    complement = {}
    for stage in net.stages.values():
        if stage.unlimited:
            continue
        free = cpn.add_place(_free_place_name(stage), initial=[InputPattern.BLACK] * stage.capacity)
        complement[stage.name] = free

    for transition in net.transitions:
        inputs = []
        outputs = []

        source = transition.source
        target = transition.target
        if source is not None:
            inputs.append(InputPattern(source.name, variable="t"))
            if source.stage.name in complement:
                # Leaving the stage returns one free slot.
                outputs.append(OutputProduction(complement[source.stage.name].name))
        if target is not None:
            expression = (lambda b: b["t"]) if source is not None else (lambda b: classes[0])
            outputs.append(OutputProduction(target.name, expression=expression))
            if target.stage.name in complement:
                inputs.append(InputPattern(complement[target.stage.name].name))
        elif transition.is_generator and not transition.consumes_token:
            # Generator transitions route by operation class; structurally we
            # send the token to every entry place guarded by its class color.
            for opclass in classes:
                try:
                    entry = net.entry_place_for(opclass)
                except Exception:
                    continue
                outputs.append(
                    OutputProduction(entry.name, expression=lambda b, c=opclass: c)
                )
                if entry.stage.name in complement:
                    inputs.append(InputPattern(complement[entry.stage.name].name))

        for arc in transition.reservation_inputs:
            inputs.append(InputPattern(arc.place.name, variable=None, count=arc.count))
            if arc.place.stage.name in complement:
                outputs.append(OutputProduction(complement[arc.place.stage.name].name))
        for arc in transition.reservation_outputs:
            outputs.append(OutputProduction(arc.place.name, count=arc.count))
            if arc.place.stage.name in complement:
                inputs.append(InputPattern(complement[arc.place.stage.name].name, count=arc.count))

        guard = None
        if transition.subnet is not None and transition.subnet.opclasses and source is not None:
            allowed = frozenset(transition.subnet.opclasses)

            def guard(binding, _allowed=allowed):
                return binding.get("t") in _allowed

        cpn.add_transition(transition.name, inputs=inputs, outputs=outputs, guard=guard)

    return cpn
