"""Multisets of colored tokens (the markings of CPN places)."""

from __future__ import annotations

from collections import Counter


class Multiset:
    """A multiset over hashable token colors."""

    def __init__(self, items=()):
        self._counts = Counter(items)

    def add(self, color, count=1):
        if count < 0:
            raise ValueError("cannot add a negative number of tokens")
        self._counts[color] += count

    def remove(self, color, count=1):
        have = self._counts.get(color, 0)
        if have < count:
            raise KeyError("multiset holds %d of %r, cannot remove %d" % (have, color, count))
        if have == count:
            del self._counts[color]
        else:
            self._counts[color] = have - count

    def count(self, color):
        return self._counts.get(color, 0)

    def contains(self, color, count=1):
        return self.count(color) >= count

    def colors(self):
        return list(self._counts)

    def items(self):
        return self._counts.items()

    def __len__(self):
        return sum(self._counts.values())

    def __iter__(self):
        for color, count in self._counts.items():
            for _ in range(count):
                yield color

    def __contains__(self, color):
        return self.count(color) > 0

    def __eq__(self, other):
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def copy(self):
        clone = Multiset()
        clone._counts = Counter(self._counts)
        return clone

    def frozen(self):
        """Hashable snapshot used as part of a marking key."""
        return tuple(sorted(self._counts.items(), key=repr))

    def __repr__(self):
        return "Multiset(%r)" % (dict(self._counts),)
