"""A general Colored Petri Net with binding enumeration.

This is a deliberately small but genuine CPN implementation: places hold
multisets of colored tokens, input arcs bind variables to token colors,
transition guards constrain bindings, and output arcs produce colors
computed from the binding (Jensen's occurrence rule).
"""

from __future__ import annotations

from itertools import product

from repro.cpn.multiset import Multiset


class CPNPlace:
    """A place holding a multiset of colored tokens."""

    def __init__(self, name, initial=()):
        self.name = name
        self.initial = Multiset(initial)
        self.marking = self.initial.copy()

    def reset(self):
        self.marking = self.initial.copy()

    def __repr__(self):
        return "<CPNPlace %s %r>" % (self.name, dict(self.marking.items()))


class InputPattern:
    """An input arc: consumes one token from ``place`` bound to ``variable``.

    ``variable`` of ``None`` matches (and consumes) the anonymous black
    token ``"•"`` used by place/transition nets.
    """

    BLACK = "•"

    def __init__(self, place, variable=None, count=1):
        self.place = place
        self.variable = variable
        self.count = count


class OutputProduction:
    """An output arc: produces tokens for ``place``.

    ``expression(binding)`` computes the produced color; ``None`` produces
    the anonymous black token.
    """

    def __init__(self, place, expression=None, count=1):
        self.place = place
        self.expression = expression
        self.count = count


class CPNTransition:
    """A transition with input patterns, a guard and output productions."""

    def __init__(self, name, inputs=(), outputs=(), guard=None):
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.guard = guard

    def __repr__(self):
        return "<CPNTransition %s>" % self.name


class CPN:
    """A Colored Petri Net: places, transitions and the occurrence rule."""

    def __init__(self, name):
        self.name = name
        self.places = {}
        self.transitions = []

    # -- construction -----------------------------------------------------
    def add_place(self, name, initial=()):
        if name in self.places:
            raise ValueError("duplicate place %r" % name)
        place = CPNPlace(name, initial)
        self.places[name] = place
        return place

    def place(self, name):
        return self.places[name]

    def add_transition(self, name, inputs=(), outputs=(), guard=None):
        resolved_inputs = [
            InputPattern(self._resolve(arc.place), arc.variable, arc.count) for arc in inputs
        ]
        resolved_outputs = [
            OutputProduction(self._resolve(arc.place), arc.expression, arc.count) for arc in outputs
        ]
        transition = CPNTransition(name, resolved_inputs, resolved_outputs, guard)
        self.transitions.append(transition)
        return transition

    def _resolve(self, place):
        if isinstance(place, CPNPlace):
            return place
        return self.places[place]

    # -- occurrence rule ------------------------------------------------------
    def bindings(self, transition):
        """Enumerate the enabled bindings of ``transition`` in the current marking."""
        choice_lists = []
        for arc in transition.inputs:
            marking = arc.place.marking
            if arc.variable is None:
                if marking.count(InputPattern.BLACK) >= arc.count:
                    choice_lists.append([(arc, InputPattern.BLACK)])
                else:
                    return []
            else:
                colors = [c for c in marking.colors()]
                if not colors:
                    return []
                choice_lists.append([(arc, color) for color in colors])

        enabled = []
        for combination in product(*choice_lists):
            binding = {}
            consumption = {}
            consistent = True
            for arc, color in combination:
                if arc.variable is not None:
                    if arc.variable in binding and binding[arc.variable] != color:
                        consistent = False
                        break
                    binding[arc.variable] = color
                key = (arc.place.name, color)
                consumption[key] = consumption.get(key, 0) + arc.count
            if not consistent:
                continue
            # Enough tokens of each chosen color must be present.
            if any(
                self.places[place].marking.count(color) < needed
                for (place, color), needed in consumption.items()
            ):
                continue
            if transition.guard is not None and not transition.guard(binding):
                continue
            enabled.append(binding)
        return enabled

    def is_enabled(self, transition):
        return bool(self.bindings(transition))

    def enabled_transitions(self):
        return [t for t in self.transitions if self.is_enabled(t)]

    def fire(self, transition, binding=None):
        """Fire ``transition`` under ``binding`` (the first enabled one by default)."""
        if binding is None:
            candidates = self.bindings(transition)
            if not candidates:
                raise ValueError("transition %r is not enabled" % transition.name)
            binding = candidates[0]
        for arc in transition.inputs:
            color = InputPattern.BLACK if arc.variable is None else binding[arc.variable]
            arc.place.marking.remove(color, arc.count)
        for arc in transition.outputs:
            if arc.expression is None:
                color = InputPattern.BLACK
            else:
                color = arc.expression(binding)
            arc.place.marking.add(color, arc.count)
        return binding

    # -- marking bookkeeping --------------------------------------------------
    def marking(self):
        """A hashable snapshot of the whole net's marking."""
        return tuple((name, place.marking.frozen()) for name, place in sorted(self.places.items()))

    def set_marking(self, marking):
        for name, frozen in marking:
            place = self.places[name]
            place.marking = Multiset()
            for color, count in frozen:
                place.marking.add(color, count)

    def reset(self):
        for place in self.places.values():
            place.reset()

    def complexity(self):
        """Structural size, comparable with :meth:`repro.core.RCPN.complexity`."""
        arcs = sum(len(t.inputs) + len(t.outputs) for t in self.transitions)
        return {
            "places": len(self.places),
            "transitions": len(self.transitions),
            "arcs": arcs,
        }

    def __repr__(self):
        size = self.complexity()
        return "<CPN %s: %d places, %d transitions, %d arcs>" % (
            self.name, size["places"], size["transitions"], size["arcs"],
        )
