"""Occurrence-rule simulator for Colored Petri Nets.

This is the generic, *slow* way of executing a Petri-net model: every step
searches all transitions for enabled bindings (interleaving semantics).  The
paper's point is that RCPN structure makes this search unnecessary; the
ablation benchmark quantifies the difference on the same model.
"""

from __future__ import annotations

import random


class CPNSimulator:
    """Interleaving-semantics simulator with a deterministic or random policy."""

    def __init__(self, net, seed=0):
        self.net = net
        self.rng = random.Random(seed)
        self.steps = 0
        self.trace = []

    def step(self, record_trace=False):
        """Fire one enabled transition; returns False when none is enabled."""
        enabled = self.net.enabled_transitions()
        if not enabled:
            return False
        transition = self.rng.choice(enabled)
        binding = self.rng.choice(self.net.bindings(transition))
        self.net.fire(transition, binding)
        self.steps += 1
        if record_trace:
            self.trace.append((transition.name, dict(binding)))
        return True

    def run(self, max_steps=10_000, record_trace=False):
        """Fire transitions until quiescence or ``max_steps``."""
        while self.steps < max_steps:
            if not self.step(record_trace=record_trace):
                break
        return self.steps
