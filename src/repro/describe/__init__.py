"""Declarative pipeline-description layer.

The paper's pitch is *generic* pipelined-processor modeling: a designer
writes a compact description of the pipeline and the framework elaborates
it into an RCPN and generates a fast cycle-accurate simulator.  This
package is that description layer:

* :mod:`repro.describe.spec` — the pure-data vocabulary
  (:class:`PipelineSpec`, :class:`StageSpec`, :class:`OpClassPathSpec`,
  :class:`TransitionSpec`, :class:`HazardSpec`, :class:`FetchSpec`,
  :class:`PredictorSpec`, :class:`IssueSpec`/:class:`IssuePortSpec` for
  multi-issue pipelines, :class:`MemorySpec`/:class:`CacheLevelSpec` for
  the cache hierarchy) plus validation and a stable content
  :meth:`~spec.PipelineSpec.fingerprint`;
* :mod:`repro.describe.semantics` — the shared ARM guard/action hook
  factories the specs reference by name;
* :mod:`repro.describe.elaborate` — the elaborator turning a validated
  spec into the same RCPN structures
  :func:`repro.core.generator.generate_simulator` consumes.

Every shipped processor model (``repro.processors``) is now a spec; see
``repro/processors/variants.py`` for how little a new pipeline costs.
"""

from repro.describe.elaborate import elaborate, elaborate_net
from repro.describe.semantics import ArmSemantics, Hook
from repro.describe.spec import (
    CacheLevelSpec,
    FetchSpec,
    HazardSpec,
    IssuePortSpec,
    IssueSpec,
    MemorySpec,
    OpClassPathSpec,
    PipelineSpec,
    PlaceSpec,
    PredictorSpec,
    SpecError,
    StageSpec,
    TransitionSpec,
    linear_path,
)
from repro.describe.substrate import IssueControl, build_memory_config

__all__ = [
    "ArmSemantics",
    "CacheLevelSpec",
    "FetchSpec",
    "HazardSpec",
    "Hook",
    "IssueControl",
    "IssuePortSpec",
    "IssueSpec",
    "MemorySpec",
    "OpClassPathSpec",
    "PipelineSpec",
    "PlaceSpec",
    "PredictorSpec",
    "SpecError",
    "StageSpec",
    "TransitionSpec",
    "build_memory_config",
    "elaborate",
    "elaborate_net",
    "linear_path",
]
