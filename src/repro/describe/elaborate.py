"""Elaboration: turn a :class:`PipelineSpec` into an executable RCPN model.

This is the bridge between the declarative layer and the simulator
generator: :func:`elaborate` validates the spec, instantiates the shared
ARM substrate (register files, operation classes, memory system, fetch
control), builds every place and transition the spec describes — resolving
hook names through :class:`~repro.describe.semantics.ArmSemantics` — and
wraps the result in the familiar :class:`~repro.describe.substrate.Processor`
facade.  The spec's :meth:`~repro.describe.spec.PipelineSpec.fingerprint`
is stamped onto the net (``net.spec_fingerprint``) so the static-schedule
and compiled-plan caches can recognise repeated builds of the same model.
"""

from __future__ import annotations

from repro.describe.semantics import ArmSemantics
from repro.describe.spec import PipelineSpec
from repro.describe.substrate import (
    IssueControl,
    Processor,
    build_memory_config,
    make_arm_model_parts,
    make_decoder,
    resolve_engine_options,
)
from repro.memory.branch_predictor import BranchTargetBuffer, StaticNotTakenPredictor


def _build_predictor(spec, net):
    kind = spec.predictor.kind
    if kind is None:
        return None
    if kind == "static_not_taken":
        predictor = StaticNotTakenPredictor()
        net.add_unit(spec.predictor.unit_name or "predictor", predictor)
    elif kind == "btb":
        predictor = BranchTargetBuffer(entries=spec.predictor.btb_entries)
        net.add_unit(spec.predictor.unit_name or "btb", predictor)
    else:  # pragma: no cover - validate() rejects this earlier
        raise ValueError("unknown predictor kind %r" % kind)
    return predictor


def elaborate_net(spec, memory_config=None, use_decode_cache=True, semantics_class=ArmSemantics):
    """Elaborate ``spec`` into ``(net, decoder, core, memory, semantics)``.

    The memory hierarchy is built from the spec's declarative
    :class:`~repro.describe.spec.MemorySpec` unless an explicit
    ``memory_config`` (a runtime
    :class:`~repro.memory.memory_system.MemorySystemConfig`) overrides it —
    the escape hatch the hand-written baselines and a few tests use.  The
    returned net is fully wired and validated-by-construction; callers
    that want the usual facade should use :func:`elaborate` instead.
    """
    if not isinstance(spec, PipelineSpec):
        raise TypeError("elaborate expects a PipelineSpec, got %r" % (spec,))
    spec.validate()
    if memory_config is None:
        memory_config = build_memory_config(spec.memory)

    net, context, core, memory = make_arm_model_parts(
        spec.name, memory_config, operation_classes=spec.opclasses
    )
    predictor = _build_predictor(spec, net)

    for stage in spec.stages:
        net.add_stage(stage.name, capacity=stage.capacity, delay=stage.delay)

    decoder = make_decoder(net, context, use_cache=use_decode_cache)

    # -- multi-issue arbitration ------------------------------------------
    issue = spec.issue
    issue_control = None
    if issue.multi:
        issue_control = IssueControl(
            issue.width, in_order=issue.in_order, port_limits=issue.port_limits()
        )
        net.add_unit("issue_control", issue_control)
    port_of = issue.port_of()

    semantics = semantics_class(
        spec,
        net=net,
        core=core,
        memory=memory,
        decoder=decoder,
        predictor=predictor,
        issue_control=issue_control,
    )

    # -- instruction-independent sub-net: fetch ---------------------------
    fetch_spec = spec.fetch
    fetch_net = net.add_subnet(fetch_spec.subnet)
    fetch_guard, fetch_action = semantics.fetch_hook(fetch_spec)
    capacity_stage = fetch_spec.capacity_stage or spec.stages[0].name
    net.add_transition(
        fetch_spec.name,
        fetch_net,
        guard=fetch_guard,
        action=fetch_action,
        capacity_stages=[capacity_stage],
        max_firings_per_cycle=issue.width,
    )

    # -- one sub-net per operation-class path -----------------------------
    for path in spec.paths:
        subnet = net.add_subnet(path.subnet_name, opclasses=(path.opclass,))
        places = {}
        for index, stage in enumerate(path.stages):
            places[stage] = net.add_place(stage, subnet, entry=(index == 0))
        places["end"] = net.add_place("end", subnet)
        for extra in path.extra_places:
            places[extra.key] = net.add_place(extra.stage, subnet, name=extra.name)
        pre_issue = (
            set(path.stages[: path.stages.index(issue.stage)])
            if issue_control is not None
            else set()
        )
        for tspec in path.transitions:
            guard, action = semantics.resolve(tspec.hooks)
            if issue_control is not None:
                source_stage = places[tspec.source].stage
                if source_stage.name == issue.stage:
                    # Every transition leaving the issue stage is an issue
                    # point: gate it on the per-cycle issue bandwidth (and
                    # the class's port, if one constrains it).
                    guard, action = semantics.issue_gate(
                        guard, action, port_of.get(path.opclass)
                    )
                elif source_stage.name in pre_issue:
                    # Front-end transfers must not overtake an older
                    # instruction (in-order issue).
                    guard = semantics.advance_gate(guard, source_stage)
            net.add_transition(
                tspec.name,
                subnet,
                source=places[tspec.source],
                target=places[tspec.target],
                guard=guard,
                action=action,
                priority=tspec.priority,
                produces=[places[key] for key in tspec.produces],
                consumes=[places[key] for key in tspec.consumes],
            )

    fingerprint = spec.fingerprint()
    if semantics_class is not ArmSemantics:
        # Custom semantics change behaviour without changing the spec text;
        # keep their cache entries separate.
        fingerprint = "%s:%s.%s" % (
            fingerprint,
            semantics_class.__module__,
            semantics_class.__qualname__,
        )
    net.spec_fingerprint = fingerprint
    net.spec = spec
    return net, decoder, core, memory, semantics


def elaborate(
    spec,
    memory_config=None,
    engine_options=None,
    use_decode_cache=True,
    backend=None,
    semantics_class=ArmSemantics,
):
    """Elaborate ``spec`` and generate its cycle-accurate simulator.

    Returns a :class:`~repro.describe.substrate.Processor`; ``backend``
    selects the engine ("interpreted"/"compiled"/"generated", see
    :data:`~repro.core.engine.ENGINE_BACKENDS`), overriding
    ``engine_options.backend`` when given — the same contract as the
    hand-written model builders it replaces.  The stamped
    ``net.spec_fingerprint`` is what the generated backend's source cache
    keys on, so rebuilding the same spec re-uses its emitted module.
    """
    net, decoder, core, memory, _ = elaborate_net(
        spec,
        memory_config=memory_config,
        use_decode_cache=use_decode_cache,
        semantics_class=semantics_class,
    )
    options = resolve_engine_options(engine_options, backend)
    return Processor(net, decoder, core, memory, engine_options=options)
