"""Shared transition semantics for ARM-family pipeline descriptions.

Before this layer existed every processor model hand-wrote its guard/action
closures; StrongARM and XScale each carried ~400 near-identical lines.  The
:class:`ArmSemantics` object owns those closures once, bound to one
elaborated model and parameterised by the spec's :class:`HazardSpec`
(bypass states, flush sets), fetch discipline and predictor.  Transition
specs reference them by *hook name* (``"alu.issue"``, ``"mem.access"`` ...)
and the elaborator attaches them to the generated transitions.

The hooks reproduce the original hand-wired models' observable behaviour
exactly — the golden-statistics regression test
(``tests/integration/test_golden_stats.py``) pins cycle, instruction and
stall counts captured before the refactor.

Hook catalogue (``guard``/``action`` contribution in parentheses):

========================  =====================================================
``alu.issue`` (g+a)        operand/flag readiness, write reservation, latch
``alu.issue_bypass``(g+a)  Figure 5 restricted ``s1`` bypass arc
``alu.execute`` (a)        compute result/flags, note PC redirects
``alu.writeback`` (a)      architectural writeback, back-end redirect
``mul.issue`` (g+a)        like ``alu.issue`` plus the accumulator operand
``mul.execute`` (a)        early-termination multiply, data-dependent delay
``mul.buffer`` (a)         move result/flags into the destination refs
``mul.writeback`` (a)      architectural writeback
``mem.issue`` (g+a)        address/store-data readiness, load reservation
``mem.agen`` (a)           effective address + base update value
``mem.access`` (a)         cache access delay, stores performed
``mem.writeback`` (a)      loads read + written back, base written back
``mem.access_combined``(a) Figure 5 single-transition memory access
``mem.writeback_simple``(a) writeback for the combined-access variant
``memm.issue`` (g+a)       block-transfer readiness over the register list
``memm.agen`` (a)          burst address list + base update value
``memm.access`` (a)        per-beat delays, stores performed
``memm.writeback`` (a)     loads written back, PC loads redirect
``branch.taken`` (g+a)     resolved-taken arc (stall-style models)
``branch.not_taken``(g+a)  resolved-not-taken arc (stall-style models)
``branch.resolve`` (g+a)   BTB-predicted resolution with misprediction flush
``branch.decode_fig5``(g+a) Figure 5 decode parking a reservation token
``branch.resolve_fig5``(a) Figure 5 resolution consuming it
``branch.link_writeback``(a) BL link-register writeback
``system.issue`` (g+a)     condition check, HALT/SWI effects
``system.retire`` (a)      syscall side effects, simulation stop
========================  =====================================================
"""

from __future__ import annotations

from collections import namedtuple

from repro.isa.instructions import SystemOp
from repro.describe.substrate import (
    block_transfer_addresses,
    compute_alu,
    compute_memory_address,
    compute_multiply,
    condition_holds,
    operand_read,
    operand_ready,
    operands_ready,
    token_flags_ready,
)

#: A resolved hook: either field may be ``None``.
Hook = namedtuple("Hook", ("guard", "action"))


class ArmSemantics:
    """The shared ARM hook factories, bound to one elaborated model.

    Subclasses may :meth:`register` additional hooks (or override existing
    ones) before the elaborator resolves the spec's transitions; the
    elaborator accepts the class via its ``semantics_class`` argument.
    """

    def __init__(self, spec, net, core, memory, decoder, predictor=None, issue_control=None):
        self.spec = spec
        self.net = net
        self.core = core
        self.memory = memory
        self.decoder = decoder
        self.predictor = predictor
        self.issue_control = issue_control
        self.forward_states = tuple(spec.hazards.forward_states)
        self.front_flush_stages = tuple(spec.hazards.front_flush_stages)
        self.redirect_flush_stages = tuple(spec.hazards.redirect_flush_stages)
        self.s1_forward_state = spec.hazards.s1_forward_state
        #: BTB-predicted models recover from alias redirects at issue time.
        self.predict_recovery = spec.predictor.kind == "btb"
        self._hooks = {}
        self._install_hooks()

    # -- registry ------------------------------------------------------------
    def register(self, name, guard=None, action=None):
        self._hooks[name] = Hook(guard, action)

    def hook(self, name):
        try:
            return self._hooks[name]
        except KeyError:
            raise KeyError(
                "unknown semantic hook %r; known hooks: %s"
                % (name, ", ".join(sorted(self._hooks)))
            ) from None

    def resolve(self, hook_names):
        """Combine hooks into one ``(guard, action)`` pair for a transition.

        At most one hook may contribute a guard; actions are chained in the
        order the hooks are listed (the StrongARM model runs issue and
        execute semantics on one transition this way).
        """
        guards = [h.guard for h in map(self.hook, hook_names) if h.guard is not None]
        actions = [h.action for h in map(self.hook, hook_names) if h.action is not None]
        if len(guards) > 1:
            raise ValueError(
                "hooks %r contribute more than one guard" % (tuple(hook_names),)
            )
        guard = guards[0] if guards else None
        if not actions:
            action = None
        elif len(actions) == 1:
            action = actions[0]
        else:
            chain = tuple(actions)

            def action(token, ctx, _chain=chain):
                for act in _chain:
                    act(token, ctx)

        return guard, action

    # -- control-transfer helpers -------------------------------------------
    def front_flush(self, ctx):
        """Squash the front end (taken branch / misprediction / halt)."""
        for stage in self.front_flush_stages:
            ctx.flush_stage(stage)

    def backend_redirect(self, ctx, target, token=None):
        """Redirect fetching after a PC write deep in the pipeline.

        Every instruction younger than the redirecting ``token`` is on the
        wrong path, wherever it got to — including a fetch-stall
        reservation a squashed wrong-path branch already parked — so the
        squash is by program order (:meth:`EngineContext.flush_younger`),
        not by stage.  No static stage set fits every redirect: the BTB
        alias recovery redirects at *issue*, where everything downstream is
        older and must survive, while a PC-writing writeback redirects at
        the *back* of the pipe, where stage-mates may already be younger
        (multi-issue).  ``redirect_flush_stages`` remains the fallback for
        redirects with no originating token.
        """
        if token is not None:
            ctx.flush_younger(token.seq)
        else:
            for stage in self.redirect_flush_stages:
                ctx.flush_stage(stage)
        self.core.redirect(target)

    def _with_recovery(self, action):
        """Prefix an issue action with BTB-alias recovery when predicted."""
        if not self.predict_recovery:
            return action
        backend_redirect = self.backend_redirect

        def recovered(t, ctx, _action=action):
            if t.annotations.get("predicted_taken"):
                # A BTB alias redirected fetch after a non-branch: recover.
                backend_redirect(ctx, (t.pc + 4) & 0xFFFFFFFF, t)
            _action(t, ctx)

        return recovered

    # -- multi-issue gating ---------------------------------------------------
    def issue_gate(self, guard, action, port=None):
        """Wrap a resolved ``(guard, action)`` pair with the issue arbiter.

        The elaborator applies this to every transition leaving the issue
        stage of a multi-issue spec: the guard additionally requires
        :meth:`~repro.describe.substrate.IssueControl.may_issue` and the
        action books the slot via ``note_issue`` before the original
        behaviour runs.  The wrapped guard carries an ``issue_gate`` marker
        so the compiled planner can report how many transitions were gated,
        plus the unwrapped parts (``base_guard``/``base_action``, the
        arbiter and the port) so the source-emitting backend
        (:mod:`repro.codegen`) can specialise the gate away at emit time —
        calling the arbiter and the original hook directly instead of
        through this wrapper.
        """
        control = self.issue_control

        if guard is None:
            def gated_guard(t, ctx):
                return control.may_issue(t, ctx, port)
        else:
            def gated_guard(t, ctx, _guard=guard):
                return control.may_issue(t, ctx, port) and _guard(t, ctx)

        if action is None:
            def gated_action(t, ctx):
                control.note_issue(t, ctx, port)
        else:
            def gated_action(t, ctx, _action=action):
                control.note_issue(t, ctx, port)
                _action(t, ctx)

        gated_guard.issue_gate = True
        gated_guard.base_guard = guard
        gated_guard.control = control
        gated_guard.port = port
        gated_action.issue_gate = True
        gated_action.base_action = action
        gated_action.control = control
        gated_action.port = port
        return gated_guard, gated_action

    def advance_gate(self, guard, source_stage):
        """Wrap a pre-issue transfer guard with the order-preserving rule.

        Applied by the elaborator to every transition of a multi-issue spec
        whose source stage precedes the issue stage on its path; see
        :meth:`~repro.describe.substrate.IssueControl.may_advance`.
        """
        control = self.issue_control

        if guard is None:
            def gated_guard(t, _ctx):
                return control.may_advance(t, source_stage)
        else:
            def gated_guard(t, ctx, _guard=guard):
                return control.may_advance(t, source_stage) and _guard(t, ctx)

        gated_guard.advance_gate = True
        gated_guard.base_guard = guard
        gated_guard.control = control
        gated_guard.stage = source_stage
        return gated_guard

    # -- fetch ---------------------------------------------------------------
    def fetch_hook(self, fetch_spec):
        """The instruction-independent fetch transition's (guard, action)."""
        core = self.core
        memory = self.memory
        decoder = self.decoder
        issue_control = self.issue_control

        if fetch_spec.style == "btb":
            btb = self.predictor

            def fetch_guard(_token, _ctx):
                return not core.halted

            def fetch_action(_token, ctx):
                pc = core.fetch_pc
                hit, predicted_taken, predicted_target = btb.lookup(pc)
                word = memory.read_word(pc)
                token = decoder.decode_word(word, pc=pc)
                token.delay = memory.instruction_delay(pc)
                token.annotations["predicted_taken"] = bool(hit and predicted_taken)
                if hit and predicted_taken:
                    core.redirect(predicted_target)
                else:
                    core.redirect(pc + 4)
                core.sequence += 1
                if issue_control is not None:
                    issue_control.note_fetch(token)
                ctx.emit(token)

            return fetch_guard, fetch_action

        stall_stage = (
            self.net.stage(fetch_spec.stall_stage) if fetch_spec.stall_stage else None
        )

        if stall_stage is None:

            def fetch_guard(_token, _ctx):
                return not core.halted

        else:

            def fetch_guard(_token, _ctx):
                return not core.halted and stall_stage.occupancy == 0

        def fetch_action(_token, ctx):
            pc = core.next_fetch()
            word = memory.read_word(pc)
            token = decoder.decode_word(word, pc=pc)
            token.delay = memory.instruction_delay(pc)
            if issue_control is not None:
                issue_control.note_fetch(token)
            ctx.emit(token)

        return fetch_guard, fetch_action

    # -- hook installation ---------------------------------------------------
    def _install_hooks(self):
        from repro.isa.registers import PC

        FWD = self.forward_states
        core = self.core
        memory = self.memory
        predictor = self.predictor
        net = self.net
        front_flush = self.front_flush
        backend_redirect = self.backend_redirect
        register = self.register
        gpr = net.register_files["gpr"]

        def pc_free():
            """Control interlock: no issue while a PC write is in flight.

            A PC-writing instruction (``mov pc``, load-to-PC) holds a write
            reservation on r15 from issue to writeback; everything fetched
            behind it is wrong-path and will be squashed by the writeback
            redirect.  Blocking younger *issue* until then keeps short-path
            instructions (branch resolution, system ops) from completing —
            or performing side effects — before the redirect reaches them.
            The check is free on PC-write-free code: r15 simply never has a
            pending writer.
            """
            return gpr.writers[PC] is None

        # ---- alu ----------------------------------------------------------
        def alu_issue_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            if not operands_ready((t.s1, t.s2), FWD):
                return False
            if not t.d.can_write():
                return False
            if t.writes_flags and not t.fl.can_write():
                return False
            return True

        def alu_issue_action(t, _ctx):
            executed = condition_holds(t, FWD)
            t.annotations["executed"] = executed
            if not executed:
                return
            operand_read(t.s1, FWD)
            operand_read(t.s2, FWD)
            t.d.reserve_write()
            if t.writes_flags:
                t.fl.reserve_write()

        def alu_execute_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            result, flags = compute_alu(t)
            if result is not None:
                t.d.value = result
            if flags is not None:
                t.fl.value = flags
            if t.writes_pc and result is not None:
                t.annotations["redirect"] = result

        def alu_writeback_action(t, ctx):
            if not t.annotations.get("executed"):
                return
            if t.d.has_value:
                t.d.writeback()
            if t.writes_flags and t.fl.has_value:
                t.fl.writeback()
            if "redirect" in t.annotations:
                backend_redirect(ctx, t.annotations["redirect"], t)

        register("alu.issue", alu_issue_guard, self._with_recovery(alu_issue_action))
        register("alu.execute", action=alu_execute_action)
        register("alu.writeback", action=alu_writeback_action)

        # Figure 5 restricted bypass: only s1, only from one state.
        s1_state = self.s1_forward_state

        def alu_bypass_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            if not t.s2.can_read():
                return False
            if not t.d.can_write():
                return False
            if t.writes_flags and not t.fl.can_write():
                return False
            if not t.s1.can_read(s1_state):
                return False
            writer = t.s1.register.writer
            return writer is not None and writer.has_value

        def alu_bypass_action(t, _ctx):
            executed = condition_holds(t, FWD)
            t.annotations["executed"] = executed
            if not executed:
                return
            t.s1.read(s1_state)
            t.s2.read()
            t.d.reserve_write()
            if t.writes_flags:
                t.fl.reserve_write()

        register("alu.issue_bypass", alu_bypass_guard, alu_bypass_action)

        # ---- mul ----------------------------------------------------------
        def mul_issue_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            if not operands_ready((t.s1, t.s2, t.acc), FWD):
                return False
            if not t.d.can_write():
                return False
            if t.writes_flags and not t.fl.can_write():
                return False
            return True

        def mul_issue_action(t, _ctx):
            executed = condition_holds(t, FWD)
            t.annotations["executed"] = executed
            if not executed:
                return
            operand_read(t.s1, FWD)
            operand_read(t.s2, FWD)
            operand_read(t.acc, FWD)
            t.d.reserve_write()
            if t.writes_flags:
                t.fl.reserve_write()

        def mul_execute_action(t, _ctx):
            # The token delay models the data-dependent latency of the
            # early-termination multiplier.
            if not t.annotations.get("executed"):
                return
            result, flags, cycles = compute_multiply(t)
            t.annotations["result"] = result
            t.annotations["flags"] = flags
            t.delay = cycles

        def mul_buffer_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            t.d.value = t.annotations["result"]
            if t.annotations["flags"] is not None:
                t.fl.value = t.annotations["flags"]

        def mul_writeback_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            t.d.writeback()
            if t.writes_flags and t.fl.has_value:
                t.fl.writeback()

        register("mul.issue", mul_issue_guard, self._with_recovery(mul_issue_action))
        register("mul.execute", action=mul_execute_action)
        register("mul.buffer", action=mul_buffer_action)
        register("mul.writeback", action=mul_writeback_action)

        # ---- mem ----------------------------------------------------------
        def mem_issue_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            sources = [t.base, t.offset]
            if not t.L:
                sources.append(t.r)
            if not operands_ready(sources, FWD):
                return False
            if t.L and not t.r.can_write():
                return False
            if t.updates_base and not t.base.can_write():
                return False
            return True

        def mem_issue_action(t, _ctx):
            executed = condition_holds(t, FWD)
            t.annotations["executed"] = executed
            if not executed:
                return
            operand_read(t.base, FWD)
            operand_read(t.offset, FWD)
            if t.L:
                t.r.reserve_write()
            else:
                operand_read(t.r, FWD)
            if t.updates_base:
                t.base.reserve_write()

        def mem_agen_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            address, updated = compute_memory_address(t)
            t.annotations["address"] = address
            if t.updates_base:
                # The updated base is an ALU-style result: make it available
                # to dependents through the bypass network right away.
                t.annotations["updated_base"] = updated
                t.base.value = updated

        def mem_access_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            address = t.annotations["address"]
            t.delay = memory.data_delay(address, is_write=not t.L)
            if not t.L:
                value = t.r.value or 0
                if t.byte:
                    memory.write_byte(address, value & 0xFF)
                else:
                    memory.write_word(address, value)

        def mem_writeback_action(t, ctx):
            if not t.annotations.get("executed"):
                return
            if t.L:
                address = t.annotations["address"]
                value = memory.read_byte(address) if t.byte else memory.read_word(address)
                t.r.value = value
                t.r.writeback()
                if t.writes_pc:
                    backend_redirect(ctx, value, t)
            if t.updates_base:
                t.base.value = t.annotations["updated_base"]
                t.base.writeback()

        register("mem.issue", mem_issue_guard, self._with_recovery(mem_issue_action))
        register("mem.agen", action=mem_agen_action)
        register("mem.access", action=mem_access_action)
        register("mem.writeback", action=mem_writeback_action)

        # Figure 5 variant: one transition performs address generation and
        # the memory access; writeback only publishes the latched values.
        def mem_access_combined_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            address, updated = compute_memory_address(t)
            t.annotations["address"] = address
            t.annotations["updated_base"] = updated
            t.delay = memory.data_delay(address, is_write=not t.L)
            if t.L:
                t.r.value = memory.read_byte(address) if t.byte else memory.read_word(address)
            else:
                value = t.r.value or 0
                if t.byte:
                    memory.write_byte(address, value & 0xFF)
                else:
                    memory.write_word(address, value)

        def mem_writeback_simple_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            if t.L:
                t.r.writeback()
            if t.updates_base:
                t.base.value = t.annotations["updated_base"]
                t.base.writeback()

        register("mem.access_combined", action=mem_access_combined_action)
        register("mem.writeback_simple", action=mem_writeback_simple_action)

        # ---- memm ---------------------------------------------------------
        def memm_issue_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            if not operand_ready(t.base, FWD):
                return False
            if t.L:
                if not all(reg.can_write() for reg in t.regs):
                    return False
            else:
                if not operands_ready(t.regs, FWD):
                    return False
            if t.updates_base and not t.base.can_write():
                return False
            return True

        def memm_issue_action(t, _ctx):
            executed = condition_holds(t, FWD)
            t.annotations["executed"] = executed
            if not executed:
                return
            operand_read(t.base, FWD)
            if t.L:
                for reg in t.regs:
                    reg.reserve_write()
            else:
                for reg in t.regs:
                    operand_read(reg, FWD)
            if t.updates_base:
                t.base.reserve_write()

        def memm_agen_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            addresses, new_base = block_transfer_addresses(t)
            t.annotations["addresses"] = addresses
            if t.updates_base:
                t.annotations["updated_base"] = new_base
                t.base.value = new_base

        def memm_access_action(t, _ctx):
            if not t.annotations.get("executed"):
                return
            addresses = t.annotations["addresses"]
            latency = 0
            for index, address in enumerate(addresses):
                latency += memory.data_delay(address, is_write=not t.L)
                if not t.L:
                    memory.write_word(address, t.regs[index].value or 0)
            # One transfer per cycle: the block occupies the memory stage
            # for at least one cycle per register.
            t.delay = max(latency, len(addresses))

        def memm_writeback_action(t, ctx):
            if not t.annotations.get("executed"):
                return
            if t.L:
                redirect = None
                for index, address in enumerate(t.annotations["addresses"]):
                    value = memory.read_word(address)
                    reg = t.regs[index]
                    reg.value = value
                    reg.writeback()
                    if t.reg_indices[index] == 15:
                        redirect = value
                if redirect is not None:
                    backend_redirect(ctx, redirect, t)
            if t.updates_base:
                t.base.value = t.annotations["updated_base"]
                t.base.writeback()

        register("memm.issue", memm_issue_guard, self._with_recovery(memm_issue_action))
        register("memm.agen", action=memm_agen_action)
        register("memm.access", action=memm_access_action)
        register("memm.writeback", action=memm_writeback_action)

        # ---- branch -------------------------------------------------------
        def branch_taken_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            if t.link and not t.lr.can_write():
                return False
            return condition_holds(t, FWD)

        def branch_taken_action(t, ctx):
            t.annotations["executed"] = True
            t.annotations["taken"] = True
            target = (t.pc + 8 + 4 * t.offset.value) & 0xFFFFFFFF
            if predictor is not None:
                predictor.record(t.pc, True)
            front_flush(ctx)
            core.redirect(target)
            if t.link:
                t.lr.reserve_write()
                t.lr.value = (t.pc + 4) & 0xFFFFFFFF

        def branch_not_taken_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            if t.link and not t.lr.can_write():
                return False
            return True

        def branch_not_taken_action(t, _ctx):
            executed = condition_holds(t, FWD)
            t.annotations["executed"] = executed
            t.annotations["taken"] = False
            if predictor is not None:
                predictor.record(t.pc, False)

        def branch_resolve_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            if t.link and not t.lr.can_write():
                return False
            return True

        def branch_resolve_action(t, ctx):
            executed = condition_holds(t, FWD)
            taken = executed
            target = (t.pc + 8 + 4 * t.offset.value) & 0xFFFFFFFF
            fallthrough = (t.pc + 4) & 0xFFFFFFFF
            predicted_taken = bool(t.annotations.get("predicted_taken"))
            t.annotations["executed"] = executed
            t.annotations["taken"] = taken

            predictor.record_outcome(predicted_taken, taken)
            predictor.update(t.pc, taken, target)
            mispredicted = predicted_taken != taken
            if mispredicted:
                front_flush(ctx)
                core.redirect(target if taken else fallthrough)
            if taken and t.link:
                t.lr.reserve_write()
                t.lr.value = (t.pc + 4) & 0xFFFFFFFF

        def branch_decode_fig5_guard(t, _ctx):
            if not pc_free():
                return False
            if not token_flags_ready(t, FWD):
                return False
            if t.link and not t.lr.can_write():
                return False
            return True

        def branch_decode_fig5_action(t, _ctx):
            taken = condition_holds(t, FWD)
            t.annotations["executed"] = True
            t.annotations["taken"] = taken
            if taken and t.link:
                t.lr.reserve_write()
                t.lr.value = (t.pc + 4) & 0xFFFFFFFF

        def branch_resolve_fig5_action(t, ctx):
            if t.annotations.get("taken"):
                target = (t.pc + 8 + 4 * t.offset.value) & 0xFFFFFFFF
                front_flush(ctx)
                core.redirect(target)
                if t.link:
                    t.lr.writeback()

        def branch_link_writeback_action(t, _ctx):
            if t.annotations.get("taken") and t.link:
                t.lr.writeback()

        register("branch.taken", branch_taken_guard, branch_taken_action)
        register("branch.not_taken", branch_not_taken_guard, branch_not_taken_action)
        register("branch.resolve", branch_resolve_guard, branch_resolve_action)
        register("branch.decode_fig5", branch_decode_fig5_guard, branch_decode_fig5_action)
        register("branch.resolve_fig5", action=branch_resolve_fig5_action)
        register("branch.link_writeback", action=branch_link_writeback_action)

        # ---- system -------------------------------------------------------
        def system_issue_guard(t, _ctx):
            return pc_free() and token_flags_ready(t, FWD)

        def system_issue_action(t, ctx):
            executed = condition_holds(t, FWD)
            t.annotations["executed"] = executed
            if not executed:
                return
            if t.op == SystemOp.HALT:
                core.halt()
                front_flush(ctx)
                t.annotations["halt"] = True
            elif t.op == SystemOp.SWI:
                t.annotations["syscall"] = t.imm

        def system_retire_action(t, ctx):
            if not t.annotations.get("executed"):
                return
            if t.annotations.get("syscall") == 1:
                output = getattr(core, "output", None)
                if output is None:
                    core.output = output = []
                output.append(net.register_files["gpr"].data[0])
            if t.annotations.get("halt"):
                ctx.stop("halt")

        register("system.issue", system_issue_guard, self._with_recovery(system_issue_action))
        register("system.retire", action=system_retire_action)
