"""Declarative pipeline descriptions (the paper's "compact model" layer).

A :class:`PipelineSpec` is a pure-data description of a pipelined processor:
its stages, the per-operation-class paths through them, the hazard/bypass
configuration, the fetch discipline and the branch predictor.  The spec
carries *no* callables — transition behaviour is referenced by hook name and
resolved against :class:`repro.describe.semantics.ArmSemantics` (or a
user-supplied subclass) when :func:`repro.describe.elaborate.elaborate`
turns the spec into an executable RCPN.

Because a spec is plain data it can be validated before elaboration
(:meth:`PipelineSpec.validate`) and hashed into a stable
:meth:`PipelineSpec.fingerprint` that keys the simulator-generation caches
(:mod:`repro.core.scheduler`, :mod:`repro.compiled.plan`): rebuilding the
same spec reuses the static analysis of the first build.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field


class SpecError(ValueError):
    """A pipeline description is inconsistent (bad stage/hook/place reference)."""


def _tuple(value):
    if value is None:
        return ()
    if isinstance(value, str):
        return (value,)
    return tuple(value)


def _suggest(name, candidates):
    """A ``; did you mean 'x'?`` suffix when ``name`` is close to a candidate."""
    import difflib

    matches = difflib.get_close_matches(str(name), [str(c) for c in candidates], n=1)
    return "; did you mean %r?" % matches[0] if matches else ""


def known_operation_classes():
    """The operation-class vocabulary paths may use (the ARM six)."""
    from repro.describe.substrate import arm_operation_classes

    return tuple(opclass.name for opclass in arm_operation_classes())


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage (latch / buffer): its capacity and residence delay."""

    name: str
    capacity: int = 1
    delay: int = 1


@dataclass(frozen=True)
class PlaceSpec:
    """An extra place inside one sub-net (e.g. a branch-stall latch).

    ``key`` is how the path's transitions refer to it (``produces`` /
    ``consumes`` / ``source`` / ``target``); ``stage`` is the pipeline stage
    the place belongs to; ``name`` overrides the default
    ``<subnet>.<stage>`` place name.
    """

    key: str
    stage: str
    name: str = None


@dataclass(frozen=True)
class TransitionSpec:
    """One transition of an operation-class path.

    ``source`` and ``target`` are stage names, extra-place keys or the
    literal ``"end"``.  ``hooks`` names the guard/action factories (resolved
    by the semantics object); at most one hook may contribute a guard, and
    all hook actions are chained in order.
    """

    name: str
    source: str
    target: str
    hooks: tuple = ()
    priority: int = 0
    produces: tuple = ()
    consumes: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "hooks", _tuple(self.hooks))
        object.__setattr__(self, "produces", _tuple(self.produces))
        object.__setattr__(self, "consumes", _tuple(self.consumes))


@dataclass(frozen=True)
class OpClassPathSpec:
    """The path one operation class takes through the pipeline.

    ``stages`` is the ordered tuple of stage names the instruction token
    passes through; the first stage's place is the sub-net's entry place and
    a final ``end`` place is always appended.  ``transitions`` lists the
    edges (usually built with :func:`linear_path`).
    """

    opclass: str
    stages: tuple
    transitions: tuple
    extra_places: tuple = ()
    subnet: str = None

    def __post_init__(self):
        object.__setattr__(self, "stages", _tuple(self.stages))
        object.__setattr__(self, "transitions", tuple(self.transitions))
        object.__setattr__(self, "extra_places", tuple(self.extra_places))

    @property
    def subnet_name(self):
        return self.subnet or self.opclass


@dataclass(frozen=True)
class IssuePortSpec:
    """One issue port: a per-cycle issue budget shared by some classes.

    ``classes`` lists the operation classes that must issue through this
    port; ``count`` is how many of them may issue per cycle.  A single
    data-cache port (``IssuePortSpec("dmem", classes=("mem", "memm"))``) is
    the canonical example: a dual-issue front end may pair an ALU operation
    with a load, but never two memory operations.
    """

    name: str
    classes: tuple
    count: int = 1

    def __post_init__(self):
        object.__setattr__(self, "classes", _tuple(self.classes))


@dataclass(frozen=True)
class IssueSpec:
    """The issue discipline of the pipeline (single- or multi-issue).

    * ``width`` — instructions issued (and fetched) per cycle.  The default
      of 1 keeps the classic single-issue elaboration: no arbiter unit is
      built and the generated net is identical to a pre-multi-issue spec.
    * ``stage`` — the stage instructions issue *out of* (required when
      ``width > 1``); every transition leaving a place of this stage is an
      issue point and consumes one slot of the per-cycle issue bandwidth.
    * ``in_order`` — enforce program-order issue: a younger instruction may
      not issue while an older one is still waiting, even when the two sit
      in different places of the issue stage.  This is what generalises the
      RegRef reservation protocol beyond the single-issue structural
      guarantee (see :class:`HazardSpec`): reservations are taken in fetch
      order at the gate, so a young instruction can never read registers or
      flags before a stalled older writer has reserved them.
    * ``ports`` — per-class structural issue constraints
      (:class:`IssuePortSpec`).
    """

    width: int = 1
    stage: str = None
    in_order: bool = True
    ports: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "ports", tuple(self.ports))

    @property
    def multi(self):
        """True when this spec actually requests multi-issue elaboration."""
        return self.width > 1

    def port_of(self):
        """Operation class -> port name, derived from :attr:`ports`."""
        return {cls: port.name for port in self.ports for cls in port.classes}

    def port_limits(self):
        """Port name -> per-cycle issue budget."""
        return {port.name: port.count for port in self.ports}


@dataclass(frozen=True)
class HazardSpec:
    """Data-hazard and control-hazard configuration.

    With the default single-issue :class:`IssueSpec`, the RegRef
    reservation protocol assumes in-order issue at a single pipeline depth:
    every path's issue/resolve hook should attach at the same distance from
    fetch (as in all shipped models), otherwise a young instruction can
    read registers or flags before a *stalled* older writer has reserved
    them.  Multi-issue specs (``IssueSpec(width>1, in_order=True)``)
    replace that structural assumption with an explicit program-order gate
    at the issue stage, so reservations are taken in fetch order no matter
    how the paths interleave.

    * ``forward_states`` — pipeline states whose pending results the bypass
      network may forward to the issue stage;
    * ``front_flush_stages`` — stages squashed when the front end is
      redirected at resolution time (taken branch / misprediction / halt);
    * ``redirect_flush_stages`` — fallback stage set for PC writes deep in
      the pipe (load-to-PC and friends).  Redirects that know their
      originating token squash by *program order* instead
      (``ctx.flush_younger``), which also withdraws fetch-stall
      reservations parked by squashed wrong-path branches; the stage list
      only serves token-less redirects from custom semantics;
    * ``s1_forward_state`` — the paper's Figure 5 restricted bypass: only
      the first ALU source may forward, and only from this state.
    """

    forward_states: tuple = ()
    front_flush_stages: tuple = ()
    redirect_flush_stages: tuple = ()
    s1_forward_state: str = None

    def __post_init__(self):
        object.__setattr__(self, "forward_states", _tuple(self.forward_states))
        object.__setattr__(self, "front_flush_stages", _tuple(self.front_flush_stages))
        object.__setattr__(
            self, "redirect_flush_stages", _tuple(self.redirect_flush_stages)
        )


@dataclass(frozen=True)
class FetchSpec:
    """The instruction-independent fetch sub-net.

    ``style`` selects the fetch discipline:

    * ``"sequential"`` — fetch the next sequential word each cycle
      (optionally gated on ``stall_stage`` being empty, the StrongARM /
      Figure 5 reservation-token stall);
    * ``"btb"`` — look the PC up in the branch target buffer and follow the
      predicted target (XScale).
    """

    style: str = "sequential"
    capacity_stage: str = None
    stall_stage: str = None
    subnet: str = "fetch"
    name: str = "fetch"


@dataclass(frozen=True)
class PredictorSpec:
    """The branch predictor unit attached to the model (if any)."""

    kind: str = None  # None | "static_not_taken" | "btb"
    unit_name: str = None
    btb_entries: int = 128


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry and timing of one cache level, as pure description data.

    The runtime mirror is :class:`repro.memory.cache.CacheConfig`; this
    spec exists so the memory hierarchy participates in validation and in
    the pipeline fingerprint like every other declarative knob.  The
    ``miss_penalty`` defaults to zero because the full miss cost is charged
    as the backing level's latency (see :class:`MemorySpec`).
    """

    name: str = "L1"
    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    associativity: int = 32
    hit_latency: int = 1
    miss_penalty: int = 0

    def problems(self):
        """Geometry/timing inconsistencies of this level, as strings."""
        from repro.memory.cache import cache_geometry_problems

        return [
            "cache %r: %s" % (self.name, problem)
            for problem in cache_geometry_problems(
                size_bytes=self.size_bytes,
                line_bytes=self.line_bytes,
                associativity=self.associativity,
                hit_latency=self.hit_latency,
                miss_penalty=self.miss_penalty,
            )
        ]


def _default_icache():
    return CacheLevelSpec(name="I$")


def _default_dcache():
    return CacheLevelSpec(name="D$")


@dataclass(frozen=True)
class MemorySpec:
    """The memory hierarchy of a pipeline description.

    * ``l1_instruction`` / ``l1_data`` — the split first-level caches (the
      StrongARM/XScale organisation, and the default);
    * ``l1_unified`` — when set, one cache serves instruction fetch and
      data access; the split fields must then be left at their defaults
      (they are ignored, and silently-ignored customisation is an error);
    * ``l2`` — an optional second level shared by the L1s: L1 misses fill
      from it and dirty L1 victims write back into it, so only L2 misses
      and L2 writebacks reach the fixed-latency memory;
    * ``memory_latency`` — the flat backing-memory latency in cycles;
    * ``perfect_caches`` — every access hits (and is *counted* as a hit).

    The default ``MemorySpec()`` elaborates to exactly the memory system
    every pre-existing model was built with, so specs that do not mention
    memory keep bit-identical timing.
    """

    l1_instruction: CacheLevelSpec = field(default_factory=_default_icache)
    l1_data: CacheLevelSpec = field(default_factory=_default_dcache)
    l1_unified: CacheLevelSpec = None
    l2: CacheLevelSpec = None
    memory_latency: int = 30
    perfect_caches: bool = False

    def problems(self):
        """Every inconsistency of the hierarchy, as strings."""
        problems = []
        for level_name in ("l1_instruction", "l1_data", "l1_unified", "l2"):
            level = getattr(self, level_name)
            if level is None:
                continue
            if not isinstance(level, CacheLevelSpec):
                problems.append(
                    "%s: memory level must be a CacheLevelSpec, got %r" % (level_name, level)
                )
                continue
            problems.extend("%s: %s" % (level_name, problem) for problem in level.problems())
        if self.l1_unified is not None and (
            self.l1_instruction != _default_icache() or self.l1_data != _default_dcache()
        ):
            problems.append(
                "l1_unified: a unified L1 replaces the split caches; leave "
                "l1_instruction/l1_data at their defaults"
            )
        if not isinstance(self.memory_latency, int) or self.memory_latency < 0:
            problems.append(
                "memory_latency: memory latency %r must be a non-negative integer"
                % (self.memory_latency,)
            )
        return problems

    def validate(self):
        """Check internal consistency; raises :class:`SpecError` on problems."""
        problems = self.problems()
        if problems:
            raise SpecError(
                "invalid memory spec:\n  - %s" % "\n  - ".join(problems)
            )
        return True


@dataclass(frozen=True)
class PipelineSpec:
    """A complete declarative pipeline description."""

    name: str
    stages: tuple
    paths: tuple
    hazards: HazardSpec = field(default_factory=HazardSpec)
    fetch: FetchSpec = field(default_factory=FetchSpec)
    predictor: PredictorSpec = field(default_factory=PredictorSpec)
    issue: IssueSpec = field(default_factory=IssueSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    description: str = ""

    def __post_init__(self):
        object.__setattr__(self, "stages", tuple(self.stages))
        object.__setattr__(self, "paths", tuple(self.paths))

    # -- convenience queries -------------------------------------------------
    @property
    def opclasses(self):
        return tuple(path.opclass for path in self.paths)

    def stage_names(self):
        return tuple(stage.name for stage in self.stages)

    def path(self, opclass):
        for path in self.paths:
            if path.opclass == opclass:
                return path
        raise SpecError("spec %r has no path for operation class %r" % (self.name, opclass))

    # -- validation ----------------------------------------------------------
    def validate(self):
        """Check internal consistency; raises :class:`SpecError` on problems."""
        problems = []
        stage_names = self.stage_names()
        duplicate_stages = sorted(
            {name for name in stage_names if stage_names.count(name) > 1}
        )
        if duplicate_stages:
            problems.append(
                "stages: duplicate stage name(s) %s"
                % ", ".join(repr(name) for name in duplicate_stages)
            )
        for stage in self.stages:
            if stage.capacity is not None and (
                not isinstance(stage.capacity, int)
                or isinstance(stage.capacity, bool)
                or stage.capacity < 1
            ):
                problems.append(
                    "stages: stage %r capacity %r must be a positive integer "
                    "or None (unlimited)" % (stage.name, stage.capacity)
                )
            if (
                not isinstance(stage.delay, int)
                or isinstance(stage.delay, bool)
                or stage.delay < 0
            ):
                problems.append(
                    "stages: stage %r delay %r must be a non-negative integer"
                    % (stage.name, stage.delay)
                )
        if not self.paths:
            problems.append("paths: spec %r declares no operation-class paths" % self.name)

        known_opclasses = known_operation_classes()
        seen_opclasses = set()
        seen_subnets = {self.fetch.subnet}
        # Transition names must be globally unique (they key the statistics
        # counters and the fingerprint-keyed generation caches); the fetch
        # transition's name is taken before any path is examined.
        seen_transitions = {self.fetch.name}
        for path in self.paths:
            if path.opclass not in known_opclasses:
                problems.append(
                    "paths: path declares unknown operation class %r%s "
                    "(known classes: %s)"
                    % (
                        path.opclass,
                        _suggest(path.opclass, known_opclasses),
                        ", ".join(known_opclasses),
                    )
                )
            if path.opclass in seen_opclasses:
                problems.append("paths: duplicate path for operation class %r" % path.opclass)
            seen_opclasses.add(path.opclass)
            if path.subnet_name in seen_subnets:
                problems.append("paths: duplicate sub-net name %r" % path.subnet_name)
            seen_subnets.add(path.subnet_name)
            if not path.stages:
                problems.append("paths: path %r has no stages" % path.opclass)
            keys = set(path.stages) | {"end"}
            for stage in path.stages:
                if stage not in stage_names:
                    problems.append(
                        "paths: path %r uses unknown stage %r%s"
                        % (path.opclass, stage, _suggest(stage, stage_names))
                    )
            for extra in path.extra_places:
                if extra.stage not in stage_names:
                    problems.append(
                        "paths: extra place %r of path %r uses unknown stage %r%s"
                        % (extra.key, path.opclass, extra.stage, _suggest(extra.stage, stage_names))
                    )
                if extra.key in keys:
                    problems.append(
                        "paths: extra place key %r of path %r collides with a stage"
                        % (extra.key, path.opclass)
                    )
                keys.add(extra.key)
            for transition in path.transitions:
                if transition.name in seen_transitions:
                    problems.append(
                        "paths: duplicate transition name %r (in path %r)"
                        % (transition.name, path.opclass)
                    )
                seen_transitions.add(transition.name)
                for ref in (
                    (transition.source, transition.target)
                    + transition.produces
                    + transition.consumes
                ):
                    if ref not in keys:
                        problems.append(
                            "paths: transition %r of path %r references unknown place %r%s"
                            % (transition.name, path.opclass, ref, _suggest(ref, sorted(keys)))
                        )

        for stage in self.hazards.front_flush_stages:
            if stage not in stage_names:
                problems.append(
                    "hazards.front_flush_stages: flush stage %r is not a declared stage%s"
                    % (stage, _suggest(stage, stage_names))
                )
        for stage in self.hazards.redirect_flush_stages:
            if stage not in stage_names:
                problems.append(
                    "hazards.redirect_flush_stages: flush stage %r is not a declared stage%s"
                    % (stage, _suggest(stage, stage_names))
                )
        for stage in self.hazards.forward_states:
            # A typo here would not fail at elaboration: can_read(state)
            # simply never matches and the bypass network silently vanishes.
            if stage not in stage_names:
                problems.append(
                    "hazards.forward_states: forward state %r is not a declared stage%s"
                    % (stage, _suggest(stage, stage_names))
                )
        if (
            self.hazards.s1_forward_state is not None
            and self.hazards.s1_forward_state not in stage_names
        ):
            problems.append(
                "hazards.s1_forward_state: s1 forward state %r is not a declared stage%s"
                % (self.hazards.s1_forward_state, _suggest(self.hazards.s1_forward_state, stage_names))
            )
        hooks_used = {
            hook
            for path in self.paths
            for transition in path.transitions
            for hook in transition.hooks
        }
        if "branch.resolve" in hooks_used and self.predictor.kind != "btb":
            problems.append(
                'predictor.kind: the "branch.resolve" hook resolves against a branch '
                'target buffer; declare PredictorSpec(kind="btb")'
            )
        if self.fetch.style not in ("sequential", "btb"):
            problems.append(
                "fetch.style: unknown fetch style %r (expected 'sequential' or 'btb')"
                % self.fetch.style
            )
        if self.fetch.style == "btb" and self.predictor.kind != "btb":
            problems.append('fetch.style: fetch style "btb" requires predictor kind "btb"')
        if self.fetch.capacity_stage and self.fetch.capacity_stage not in stage_names:
            problems.append(
                "fetch.capacity_stage: fetch capacity stage %r is not declared%s"
                % (self.fetch.capacity_stage, _suggest(self.fetch.capacity_stage, stage_names))
            )
        if self.fetch.stall_stage and self.fetch.stall_stage not in stage_names:
            problems.append(
                "fetch.stall_stage: fetch stall stage %r is not declared%s"
                % (self.fetch.stall_stage, _suggest(self.fetch.stall_stage, stage_names))
            )
        if self.predictor.kind not in (None, "static_not_taken", "btb"):
            problems.append(
                "predictor.kind: unknown predictor kind %r (expected None, "
                "'static_not_taken' or 'btb')" % self.predictor.kind
            )

        issue = self.issue
        if not isinstance(issue.width, int) or isinstance(issue.width, bool) or issue.width < 1:
            problems.append("issue.width: issue width %r is not a positive integer" % (issue.width,))
        elif not issue.multi:
            if issue.stage is not None or issue.ports:
                problems.append(
                    "issue.stage/issue.ports: only meaningful with issue width > 1"
                )
        else:
            if issue.stage is None:
                problems.append("issue.stage: multi-issue specs must declare the issue stage")
            elif issue.stage not in stage_names:
                problems.append(
                    "issue.stage: issue stage %r is not a declared stage%s"
                    % (issue.stage, _suggest(issue.stage, stage_names))
                )
            else:
                for path in self.paths:
                    # The in-order gate blocks younger instructions until every
                    # older one has issued; a path that bypasses the issue
                    # stage would starve the gate and deadlock the pipeline.
                    if issue.stage not in path.stages:
                        problems.append(
                            "issue.stage: path %r never visits issue stage %r"
                            % (path.opclass, issue.stage)
                        )
            port_names = set()
            ported_classes = set()
            for port in issue.ports:
                if port.name in port_names:
                    problems.append("issue.ports: duplicate issue port %r" % port.name)
                port_names.add(port.name)
                if (
                    not isinstance(port.count, int)
                    or isinstance(port.count, bool)
                    or not 1 <= port.count
                ):
                    problems.append(
                        "issue.ports: issue port %r count %r is not a positive integer"
                        % (port.name, port.count)
                    )
                elif port.count > issue.width:
                    problems.append(
                        "issue.ports: issue port %r count %d exceeds the issue width %d"
                        % (port.name, port.count, issue.width)
                    )
                if not port.classes:
                    problems.append(
                        "issue.ports: issue port %r constrains no operation class" % port.name
                    )
                for cls in port.classes:
                    if cls not in seen_opclasses:
                        problems.append(
                            "issue.ports: issue port %r names unknown operation class %r%s"
                            % (port.name, cls, _suggest(cls, sorted(seen_opclasses)))
                        )
                    if cls in ported_classes:
                        problems.append(
                            "issue.ports: operation class %r is constrained by more than "
                            "one issue port" % cls
                        )
                    ported_classes.add(cls)

        if isinstance(self.memory, MemorySpec):
            problems.extend("memory: %s" % problem for problem in self.memory.problems())
        else:
            problems.append("memory: must be a MemorySpec, got %r" % (self.memory,))

        if problems:
            raise SpecError(
                "invalid pipeline spec %r:\n  - %s" % (self.name, "\n  - ".join(problems))
            )
        return True

    # -- identity ------------------------------------------------------------
    def describe(self):
        """The spec as plain nested data (the canonical form that is hashed)."""
        return asdict(self)

    def fingerprint(self):
        """Stable content hash of the description.

        Two specs share a fingerprint exactly when their declarative content
        is identical, so the hash can key caches of structure-derived
        artefacts (static schedules, compiled-plan blueprints) across
        repeated elaborations of the same model.
        """
        canonical = json.dumps(self.describe(), sort_keys=True, default=str)
        return hashlib.sha256(("rcpn-spec-v1:" + canonical).encode("utf-8")).hexdigest()


def linear_path(opclass, stages, hooks=None, names=None, subnet=None):
    """Build an :class:`OpClassPathSpec` whose transitions form a linear chain.

    ``hooks`` maps a destination (stage name or ``"end"``) to the hook name
    (or tuple of hook names) attached to the transition entering it;
    ``names`` overrides per-destination transition names.  The default name
    is ``<subnet>.<source>_<destination>`` (the XScale naming idiom).
    """
    subnet_name = subnet or opclass
    hooks = hooks or {}
    names = names or {}
    stages = _tuple(stages)
    transitions = []
    route = list(stages) + ["end"]
    for source, destination in zip(route, route[1:]):
        transitions.append(
            TransitionSpec(
                name=names.get(destination) or "%s.%s_%s" % (subnet_name, source, destination),
                source=source,
                target=destination,
                hooks=hooks.get(destination, ()),
            )
        )
    return OpClassPathSpec(
        opclass=opclass,
        stages=stages,
        transitions=tuple(transitions),
        subnet=subnet_name,
    )
