"""Shared ARM substrate every elaborated processor model builds on.

This module provides what every ARM7-family model needs:

* :class:`ProcessorCore` — the non-pipeline "fetch control" unit holding the
  fetch program counter and halt state;
* flag packing helpers (the CPSR is modeled as a one-entry register file so
  that flag hazards go through the same RegRef protocol as data hazards);
* operand-readiness helpers combining ``can_read()`` with the forwarding
  interfaces ``can_read(state)`` / ``read(state)``;
* the six ARM operation classes (alu, mul, mem, memm, branch, system) and
  their symbol binders;
* the :class:`Processor` facade that wires a model, its decoder and the
  generated simulation engine together.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace

from repro.core.decoder import InstructionDecoder
from repro.core.engine import EngineOptions
from repro.core.generator import generate_simulator
from repro.core.operands import Const, RegRef
from repro.core.operation_class import DecodeContext, OperationClass, SymbolKind
from repro.isa.alu import alu_operate, apply_shift, multiply, multiply_early_termination_cycles
from repro.isa.conditions import Condition, condition_passes
from repro.isa.encoding import decode as isa_decode
from repro.isa.flags import ConditionFlags
from repro.isa.instructions import DataOpcode, DataProcessing, Multiply
from repro.isa.registers import LR, NUM_REGISTERS, PC
from repro.memory.cache import CacheConfig
from repro.memory.memory_system import MemorySystem, MemorySystemConfig


# ---------------------------------------------------------------------------
# Flags packing
# ---------------------------------------------------------------------------

def pack_flags(n, z, c, v):
    """Pack the four condition flags into an integer nibble (N Z C V)."""
    return (8 if n else 0) | (4 if z else 0) | (2 if c else 0) | (1 if v else 0)


def unpack_flags(value):
    """Unpack a flags nibble into a :class:`ConditionFlags` object."""
    value = int(value or 0)
    return ConditionFlags(n=bool(value & 8), z=bool(value & 4), c=bool(value & 2), v=bool(value & 1))


# ---------------------------------------------------------------------------
# Fetch-control unit
# ---------------------------------------------------------------------------

class ProcessorCore:
    """Non-pipeline unit owning the fetch PC and the halt state.

    RCPN transitions reference it exactly like they reference the memory
    system or the branch predictor (paper Section 3: "A transition can
    directly reference non-pipeline units").
    """

    def __init__(self):
        self.fetch_pc = 0
        self.halted = False
        self.sequence = 0  # fetch order, stamped into token annotations

    def reset(self, entry=0):
        self.fetch_pc = entry
        self.halted = False
        self.sequence = 0

    def next_fetch(self):
        """Return the current fetch address and advance it sequentially."""
        pc = self.fetch_pc
        self.fetch_pc = (pc + 4) & 0xFFFFFFFF
        self.sequence += 1
        return pc

    def redirect(self, target):
        """Redirect fetching (taken branch / misprediction recovery)."""
        self.fetch_pc = target & 0xFFFFFFFF

    def halt(self):
        self.halted = True


# ---------------------------------------------------------------------------
# Multi-issue arbitration
# ---------------------------------------------------------------------------

class IssueControl:
    """Per-cycle issue-bandwidth arbiter of a multi-issue pipeline.

    Like :class:`ProcessorCore`, this is a non-pipeline unit referenced by
    transition guards/actions (paper Section 3).  The elaborator attaches
    one to every model whose :class:`~repro.describe.spec.IssueSpec` has
    ``width > 1`` and wraps each issue-stage transition with
    :meth:`~repro.describe.semantics.ArmSemantics.issue_gate`, which pairs
    :meth:`may_issue` in the guard with :meth:`note_issue` in the action.

    Three constraints are arbitrated:

    * at most ``width`` instructions issue per cycle;
    * each issue port's per-cycle budget (``port_limits``) is respected;
    * with ``in_order``, an instruction may issue only when it is the
      oldest live un-issued instruction in the machine — the fetch hooks
      register every instruction token in fetch order via
      :meth:`note_fetch`, and squashed tokens fall out of the queue lazily.

    All state is cycle-stamped and refreshed lazily from ``ctx.cycle``, so
    the interpreted and compiled engines (which share guards and actions)
    observe identical arbitration — the bit-identical-statistics contract
    between backends holds with no engine-specific code.
    """

    #: :meth:`repro.core.net.RCPN.reset` clears units carrying this flag,
    #: so a bare engine reset cannot leak stale issue-window state.
    clears_with_net = True

    def __init__(self, width, in_order=True, port_limits=None):
        self.width = width
        self.in_order = in_order
        self.port_limits = dict(port_limits or {})
        self.reset()

    def reset(self):
        self._cycle = -1
        self._issued = 0
        self._port_issued = {}
        self._program_order = deque()

    def note_fetch(self, token):
        """Record a freshly fetched instruction token (program order)."""
        if self.in_order:
            self._program_order.append(token)

    def _refresh(self, cycle):
        if cycle != self._cycle:
            self._cycle = cycle
            self._issued = 0
            self._port_issued = {}

    def _oldest_live(self):
        order = self._program_order
        while order and (order[0].squashed or "issued" in order[0].annotations):
            order.popleft()
        return order[0] if order else None

    def may_issue(self, token, ctx, port=None):
        """Guard half of the gate: may ``token`` issue this cycle?"""
        self._refresh(ctx.cycle)
        if self._issued >= self.width:
            return False
        if port is not None and self._port_issued.get(port, 0) >= self.port_limits[port]:
            return False
        if self.in_order and self._oldest_live() is not token:
            return False
        return True

    def may_advance(self, token, source_stage):
        """Pre-issue transfer rule: no overtaking in the front end.

        A token may leave a front-end stage only while no *older*
        instruction still resides in that stage.  Anything weaker
        deadlocks the in-order issue gate: a younger instruction that
        overtakes a stalled elder (e.g. one waiting out an i-cache miss)
        can saturate the downstream stages, none of which may issue before
        the stranded elder, which in turn cannot advance into the stages
        the youngsters hold.  Keeping every stage order-preserving makes
        the front end behave like a real in-order machine — fetch backs up
        behind the miss — and guarantees the oldest un-issued instruction
        always has a clear path to the issue stage.

        Within one cycle the rule still transfers up to ``width``
        instructions across a stage boundary: once the elder's place fires
        (places are evaluated in a fixed structural order), a younger
        co-resident evaluated later in the same cycle sees the stage clear
        and follows immediately.
        """
        if not self.in_order:
            return True
        seq = token.seq
        for place in source_stage.places:
            for resident in place.tokens:
                if resident.is_instruction and resident.seq < seq:
                    return False
            for resident in place.pending:
                if resident.is_instruction and resident.seq < seq:
                    return False
        return True

    def note_issue(self, token, ctx, port=None):
        """Action half of the gate: account for ``token`` issuing now."""
        self._refresh(ctx.cycle)
        self._issued += 1
        if port is not None:
            self._port_issued[port] = self._port_issued.get(port, 0) + 1
        if self.in_order:
            token.annotations["issued"] = True
            self._oldest_live()  # opportunistically drop the retired front


# ---------------------------------------------------------------------------
# Operand readiness with forwarding
# ---------------------------------------------------------------------------

def operand_ready(operand, forward_states=()):
    """True when an operand can be obtained now.

    Either the architectural register is free of pending writers
    (``can_read()``) or the pending writer currently resides in one of the
    ``forward_states`` *and* has already produced its value (the bypass
    network has something to forward).
    """
    if operand.can_read():
        return True
    for state in forward_states:
        if operand.can_read(state):
            writer = operand.register.writer
            if writer is not None and writer.has_value:
                return True
    return False


def operand_read(operand, forward_states=()):
    """Latch an operand value, using the bypass path when necessary."""
    if operand.can_read():
        return operand.read()
    for state in forward_states:
        if operand.can_read(state):
            writer = operand.register.writer
            if writer is not None and writer.has_value:
                return operand.read(state)
    raise RuntimeError(
        "operand %r was read although operand_ready() is false; "
        "guard the transition with operand_ready()" % (operand,)
    )


def operands_ready(operands, forward_states=()):
    """Readiness of a collection of operands."""
    return all(operand_ready(op, forward_states) for op in operands)


# ---------------------------------------------------------------------------
# ARM operation classes
# ---------------------------------------------------------------------------

class ArmDecodeContext(DecodeContext):
    """Decode context exposing the GPR and CPSR register objects."""

    def __init__(self, gpr_registers, cpsr_register, units=None):
        super().__init__(registers=gpr_registers, units=units)
        self.cpsr = cpsr_register

    def gpr(self, index):
        return self.registers[index]


def _reads_flags(instr):
    if instr.cond != Condition.AL:
        return True
    if isinstance(instr, DataProcessing):
        return instr.opcode in (DataOpcode.ADC, DataOpcode.SBC, DataOpcode.RSC)
    return False


def _writes_flags(instr):
    if isinstance(instr, DataProcessing):
        return instr.set_flags or not instr.opcode.writes_rd
    if isinstance(instr, Multiply):
        return instr.set_flags
    return False


def _bind_alu(instr, context):
    op2 = instr.operand2
    if op2.is_immediate:
        s2 = Const(op2.immediate_value)
        shift_type, shift_amount = None, 0
    else:
        s2 = RegRef(context.gpr(op2.rm))
        shift_type, shift_amount = op2.shift_type, op2.shift_amount
    return {
        "op": instr.opcode,
        "d": RegRef(context.gpr(instr.rd)) if instr.opcode.writes_rd else Const(0),
        "s1": RegRef(context.gpr(instr.rn)) if instr.opcode.uses_rn else Const(0),
        "s2": s2,
        "shift_type": shift_type,
        "shift_amount": shift_amount,
        "set_flags": instr.set_flags or not instr.opcode.writes_rd,
        "cond": instr.cond,
        # Flag writers also read the previous flags so the shifter carry-in
        # and the preserved V bit of logical operations are modeled exactly.
        "reads_flags": _reads_flags(instr) or _writes_flags(instr),
        "writes_flags": _writes_flags(instr),
        "fl": RegRef(context.cpsr),
        "writes_pc": instr.opcode.writes_rd and instr.rd == PC,
    }


def _bind_mul(instr, context):
    return {
        "d": RegRef(context.gpr(instr.rd)),
        "s1": RegRef(context.gpr(instr.rm)),
        "s2": RegRef(context.gpr(instr.rs)),
        "acc": RegRef(context.gpr(instr.rn)) if instr.accumulate else Const(0),
        "accumulate": instr.accumulate,
        "set_flags": instr.set_flags,
        "cond": instr.cond,
        "reads_flags": _reads_flags(instr) or _writes_flags(instr),
        "writes_flags": _writes_flags(instr),
        "fl": RegRef(context.cpsr),
        "writes_pc": False,
    }


def _bind_mem(instr, context):
    if instr.has_register_offset:
        offset = RegRef(context.gpr(instr.offset_register))
        shift_type, shift_amount = instr.shift_type, instr.shift_amount
    else:
        offset = Const(instr.offset_immediate or 0)
        shift_type, shift_amount = None, 0
    return {
        "L": instr.load,
        "byte": instr.byte,
        "r": RegRef(context.gpr(instr.rd)),
        "base": RegRef(context.gpr(instr.rn)),
        "offset": offset,
        "shift_type": shift_type,
        "shift_amount": shift_amount,
        "pre_index": instr.pre_index,
        "up": instr.up,
        "updates_base": instr.writeback or not instr.pre_index,
        "cond": instr.cond,
        "reads_flags": _reads_flags(instr),
        "writes_flags": False,
        "fl": RegRef(context.cpsr),
        "writes_pc": instr.load and instr.rd == PC,
    }


def _bind_memm(instr, context):
    return {
        "L": instr.load,
        "base": RegRef(context.gpr(instr.rn)),
        "regs": [RegRef(context.gpr(r)) for r in sorted(instr.register_list)],
        "reg_indices": tuple(sorted(instr.register_list)),
        "updates_base": instr.writeback,
        "before": instr.before,
        "up": instr.up,
        "cond": instr.cond,
        "reads_flags": _reads_flags(instr),
        "writes_flags": False,
        "fl": RegRef(context.cpsr),
        "writes_pc": instr.load and PC in instr.register_list,
    }


def _bind_branch(instr, context):
    return {
        "offset": Const(instr.offset),
        "link": instr.link,
        "lr": RegRef(context.gpr(LR)) if instr.link else Const(0),
        "cond": instr.cond,
        "reads_flags": _reads_flags(instr),
        "writes_flags": False,
        "fl": RegRef(context.cpsr),
    }


def _bind_system(instr, context):
    return {
        "op": instr.op,
        "imm": instr.imm,
        "cond": instr.cond,
        "reads_flags": _reads_flags(instr),
        "writes_flags": False,
        "fl": RegRef(context.cpsr),
    }


def arm_operation_classes():
    """The six ARM operation classes used by the StrongARM and XScale models."""
    return [
        OperationClass(
            "alu",
            symbols={
                "op": SymbolKind.MICRO_OPERATION,
                "d": SymbolKind.REGISTER_OR_CONSTANT,
                "s1": SymbolKind.REGISTER_OR_CONSTANT,
                "s2": SymbolKind.REGISTER_OR_CONSTANT,
                "fl": SymbolKind.REGISTER,
            },
            binder=_bind_alu,
            description="data-processing instructions executed by the ALU",
        ),
        OperationClass(
            "mul",
            symbols={
                "d": SymbolKind.REGISTER,
                "s1": SymbolKind.REGISTER,
                "s2": SymbolKind.REGISTER,
                "acc": SymbolKind.REGISTER_OR_CONSTANT,
                "fl": SymbolKind.REGISTER,
            },
            binder=_bind_mul,
            description="multiply / multiply-accumulate instructions",
        ),
        OperationClass(
            "mem",
            symbols={
                "L": SymbolKind.VALUE,
                "r": SymbolKind.REGISTER,
                "base": SymbolKind.REGISTER,
                "offset": SymbolKind.REGISTER_OR_CONSTANT,
                "fl": SymbolKind.REGISTER,
            },
            binder=_bind_mem,
            description="single-word/byte loads and stores",
        ),
        OperationClass(
            "memm",
            symbols={
                "L": SymbolKind.VALUE,
                "base": SymbolKind.REGISTER,
                "regs": SymbolKind.REGISTER,
                "fl": SymbolKind.REGISTER,
            },
            binder=_bind_memm,
            description="block transfers (LDM/STM)",
        ),
        OperationClass(
            "branch",
            symbols={
                "offset": SymbolKind.CONSTANT,
                "lr": SymbolKind.REGISTER_OR_CONSTANT,
                "fl": SymbolKind.REGISTER,
            },
            binder=_bind_branch,
            description="PC-relative branches (B/BL)",
        ),
        OperationClass(
            "system",
            symbols={
                "op": SymbolKind.VALUE,
                "imm": SymbolKind.VALUE,
                "fl": SymbolKind.REGISTER,
            },
            binder=_bind_system,
            description="software interrupts, halt and no-op",
        ),
    ]


# ---------------------------------------------------------------------------
# Shared per-class behaviour helpers (used inside transition actions)
# ---------------------------------------------------------------------------

def condition_holds(token, forward_states=()):
    """Evaluate the token's condition code, reading flags if needed."""
    if not token.reads_flags:
        return True
    flags_value = operand_read(token.fl, forward_states)
    return condition_passes(token.cond, unpack_flags(flags_value))


def token_flags_ready(token, forward_states=()):
    if not token.reads_flags:
        return True
    return operand_ready(token.fl, forward_states)


_LOGICAL_OPCODES = frozenset(
    (
        DataOpcode.AND,
        DataOpcode.EOR,
        DataOpcode.TST,
        DataOpcode.TEQ,
        DataOpcode.ORR,
        DataOpcode.MOV,
        DataOpcode.BIC,
        DataOpcode.MVN,
    )
)


def compute_alu(token):
    """Compute an ALU token's result and flags from its latched operands.

    Returns ``(result_or_None, flags_nibble_or_None)``.  Flag-setting ALU
    tokens always read the previous flags (the binder forces
    ``reads_flags``), so the carry-in and the preserved overflow bit are
    available here.
    """
    previous = unpack_flags(token.fl.value) if token.reads_flags else ConditionFlags()
    carry_in = previous.c
    s1 = token.s1.value or 0
    s2 = token.s2.value or 0
    shifter_carry = carry_in
    if token.shift_type is not None:
        s2, shifter_carry = apply_shift(s2, token.shift_type, token.shift_amount, carry_in)
    result, n, z, c, v, writes = alu_operate(token.op, s1, s2, carry_in)
    flags = None
    if token.set_flags or not writes:
        is_logical = token.op in _LOGICAL_OPCODES
        carry_flag = shifter_carry if is_logical else c
        overflow = previous.v if is_logical else v
        flags = pack_flags(n, z, carry_flag, overflow)
    return (result if writes else None), flags


def compute_multiply(token):
    """Compute a multiply token's result; returns (result, flags_or_None, cycles)."""
    accumulator = token.acc.value if not isinstance(token.acc, Const) else 0
    result = multiply(token.s1.value or 0, token.s2.value or 0, accumulator or 0)
    cycles = multiply_early_termination_cycles(token.s2.value or 0)
    flags = None
    if token.set_flags:
        previous = unpack_flags(token.fl.value) if token.reads_flags else ConditionFlags()
        flags = pack_flags(bool(result & 0x80000000), result == 0, previous.c, previous.v)
    return result, flags, cycles


def compute_memory_address(token, carry_in=False):
    """Effective address and updated base of a load/store token."""
    base = token.base.value or 0
    offset = token.offset.value or 0
    if token.shift_type is not None:
        offset, _ = apply_shift(offset, token.shift_type, token.shift_amount, carry_in)
    signed = offset if token.up else -offset
    updated = (base + signed) & 0xFFFFFFFF
    effective = updated if token.pre_index else base
    return effective, updated


def block_transfer_addresses(token):
    """Word addresses touched by a block transfer and the updated base."""
    count = len(token.reg_indices)
    base = token.base.value or 0
    if token.up:
        start = base + (4 if token.before else 0)
        new_base = base + 4 * count
    else:
        start = base - 4 * count + (0 if token.before else 4)
        new_base = base - 4 * count
    addresses = [(start + 4 * i) & 0xFFFFFFFF for i in range(count)]
    return addresses, new_base & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Processor facade
# ---------------------------------------------------------------------------

def resolve_engine_options(engine_options, backend=None):
    """Merge a builder's ``engine_options`` and ``backend`` arguments.

    Every model builder accepts both an :class:`EngineOptions` object and a
    ``backend`` shortcut string (``"interpreted"`` / ``"compiled"`` /
    ``"generated"``); the shortcut, when given, overrides the backend
    recorded in the options.
    The caller's options object is never mutated.
    """
    options = engine_options or EngineOptions()
    if backend is not None and backend != options.backend:
        options = replace(options, backend=backend)
    return options


class Processor:
    """A complete generated simulator: model + decoder + engine + memory.

    Model builders return instances of this class; users interact with it
    exactly like with the fixed baseline simulator (``load_program``,
    ``run``, ``register`` ...), which is what the cross-validation tests and
    the benchmark harness rely on.  The engine is produced by
    :func:`repro.core.generator.generate_simulator` and may be either
    backend; ``processor.backend`` reports which one.
    """

    def __init__(self, net, decoder, core, memory, engine_options=None):
        self.net = net
        self.decoder = decoder
        self.core = core
        self.memory = memory
        self.engine, self.generation_report = generate_simulator(
            net, options=engine_options or EngineOptions()
        )

    @property
    def backend(self):
        """Execution strategy of the engine ("interpreted"/"compiled"/"generated")."""
        return self.engine.backend

    @property
    def stats(self):
        return self.engine.stats

    @property
    def tracer(self):
        """The engine's :class:`repro.observe.trace.Tracer`, or ``None``.

        Present when the engine options carried an enabled ``trace``
        config (``EngineOptions(trace=TraceConfig(...))``).
        """
        return getattr(self.engine, "tracer", None)

    def load_program(self, program):
        self.memory.load_program(program)
        self.core.reset(entry=program.entry)

    def run(self, max_cycles=None, max_instructions=None):
        return self.engine.run(max_cycles=max_cycles, max_instructions=max_instructions)

    def reset(self):
        """Reset every piece of dynamic state for a bit-reproducible re-run.

        Engine state, cache contents/statistics and learned predictor/BTB
        state are cleared; the generated engine (including the compiled
        plan, when the compiled backend is selected) is kept.  Call
        :meth:`load_program` afterwards to restore the program image and
        the fetch PC.  The memory system gets a *full* reset — cold tags,
        not just zeroed counters — so a reused processor never starts its
        second run with a warm cache.
        """
        self.engine.reset()
        self.memory.reset()
        for unit in self.net.units.values():
            if unit is self.memory or unit is self.core:
                continue  # handled above / by load_program
            reset = getattr(unit, "reset", None)
            if callable(reset):
                reset()

    def register(self, index):
        """Architectural value of general-purpose register ``index``."""
        return self.net.register_files["gpr"].data[index]

    def flags(self):
        return unpack_flags(self.net.register_files["cpsr"].data[0])

    def cache_statistics(self):
        return self.memory.statistics()

    def complexity(self):
        return self.net.complexity()


def build_memory_config(memory_spec):
    """Elaborate a declarative :class:`~repro.describe.spec.MemorySpec` into
    the runtime :class:`~repro.memory.memory_system.MemorySystemConfig`.

    Levels translate one-to-one; the spec's validation has already run by
    the time the elaborator calls this, so the ``CacheConfig`` constructors
    cannot reject anything the spec accepted.
    """

    def cache_config(level):
        return CacheConfig(
            name=level.name,
            size_bytes=level.size_bytes,
            line_bytes=level.line_bytes,
            associativity=level.associativity,
            hit_latency=level.hit_latency,
            miss_penalty=level.miss_penalty,
        )

    if memory_spec.l1_unified is not None:
        unified = cache_config(memory_spec.l1_unified)
        icache = dcache = unified
    else:
        icache = cache_config(memory_spec.l1_instruction)
        dcache = cache_config(memory_spec.l1_data)
    return MemorySystemConfig(
        icache=icache,
        dcache=dcache,
        memory_latency=memory_spec.memory_latency,
        perfect_caches=memory_spec.perfect_caches,
        l2=cache_config(memory_spec.l2) if memory_spec.l2 is not None else None,
        unified_l1=memory_spec.l1_unified is not None,
    )


def make_arm_model_parts(name, memory_config=None, operation_classes=None):
    """Common skeleton shared by the ARM-family models.

    Returns ``(net, context, core, memory)`` with the GPR/CPSR register
    files, the ARM operation classes, the memory system and the fetch
    control unit already registered.  ``operation_classes`` restricts the
    registered classes (the Figure 4/5 example model only implements a
    subset of the ISA).
    """
    from repro.core.net import RCPN

    net = RCPN(name)
    gpr_file = net.add_register_file("gpr", NUM_REGISTERS)
    cpsr_file = net.add_register_file("cpsr", 1)
    gpr_registers = gpr_file.registers()
    cpsr_register = cpsr_file.register(0, name="cpsr")

    memory = MemorySystem(memory_config)
    core = ProcessorCore()
    net.add_unit("memory", memory)
    net.add_unit("core", core)

    for opclass in arm_operation_classes():
        if operation_classes is None or opclass.name in operation_classes:
            net.add_operation_class(opclass)

    context = ArmDecodeContext(gpr_registers, cpsr_register, units=net.units)
    return net, context, core, memory


def make_decoder(net, context, use_cache=True):
    """An :class:`InstructionDecoder` for the ARM ISA over ``net``."""
    return InstructionDecoder(net, isa_decode, context, use_cache=use_cache)
