"""ARM7-inspired instruction-set substrate.

The paper evaluates RCPN on the ARM7 instruction set (StrongARM / XScale
processors, binaries produced by ``arm-linux-gcc``).  This package provides a
self-contained substitute: a 32-bit RISC instruction set whose binary
encoding, register file, condition codes and instruction classes closely
follow ARM7, together with a two-pass assembler, a disassembler and
functional execution semantics.

The six instruction classes (data processing, multiply, load/store,
load/store multiple, branch, system) map one-to-one onto the six *operation
classes* used by the paper's StrongARM and XScale models.
"""

from repro.isa.registers import (
    NUM_REGISTERS,
    PC,
    LR,
    SP,
    RegisterNames,
    register_name,
    register_number,
)
from repro.isa.flags import ConditionFlags
from repro.isa.conditions import Condition, condition_passes
from repro.isa.instructions import (
    Instruction,
    DataProcessing,
    Multiply,
    LoadStore,
    LoadStoreMultiple,
    Branch,
    System,
    DataOpcode,
    ShiftType,
    SystemOp,
)
from repro.isa.encoding import encode, decode, DecodeError
from repro.isa.assembler import assemble, assemble_file, AssemblerError
from repro.isa.disassembler import disassemble
from repro.isa.program import Program
from repro.isa.semantics import ExecutionResult, execute, CPUState

__all__ = [
    "NUM_REGISTERS",
    "PC",
    "LR",
    "SP",
    "RegisterNames",
    "register_name",
    "register_number",
    "ConditionFlags",
    "Condition",
    "condition_passes",
    "Instruction",
    "DataProcessing",
    "Multiply",
    "LoadStore",
    "LoadStoreMultiple",
    "Branch",
    "System",
    "DataOpcode",
    "ShiftType",
    "SystemOp",
    "encode",
    "decode",
    "DecodeError",
    "assemble",
    "assemble_file",
    "AssemblerError",
    "disassemble",
    "Program",
    "ExecutionResult",
    "execute",
    "CPUState",
]
