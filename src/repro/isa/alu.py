"""Arithmetic/logic helpers shared by the functional simulator and the RCPN
processor models.

Keeping the datapath functions here guarantees that cycle-accurate models
and the reference instruction-set simulator compute identical results.
"""

from __future__ import annotations

from repro.isa.flags import MASK32, to_signed, to_unsigned
from repro.isa.instructions import DataOpcode, ShiftType


def apply_shift(value, shift_type, amount, carry_in):
    """Apply a barrel-shifter operation.

    Returns ``(result, carry_out)``.  The ARM special cases for a shift
    amount of zero are simplified: amount 0 always passes the value through
    with the incoming carry (the encoding used by the assembler never emits
    the RRX special case).
    """
    value = to_unsigned(value)
    amount = int(amount) & 0xFF
    if amount == 0:
        return value, carry_in
    shift_type = ShiftType(shift_type)
    if shift_type is ShiftType.LSL:
        if amount >= 32:
            carry = bool(value & 1) if amount == 32 else False
            return 0, carry
        result = (value << amount) & MASK32
        carry = bool((value >> (32 - amount)) & 1)
        return result, carry
    if shift_type is ShiftType.LSR:
        if amount >= 32:
            carry = bool(value >> 31) if amount == 32 else False
            return 0, carry
        result = value >> amount
        carry = bool((value >> (amount - 1)) & 1)
        return result, carry
    if shift_type is ShiftType.ASR:
        signed = to_signed(value)
        if amount >= 32:
            result = to_unsigned(-1 if signed < 0 else 0)
            return result, bool(value >> 31)
        result = to_unsigned(signed >> amount)
        carry = bool((value >> (amount - 1)) & 1)
        return result, carry
    # ROR
    amount %= 32
    if amount == 0:
        return value, bool(value >> 31)
    result = ((value >> amount) | (value << (32 - amount))) & MASK32
    carry = bool((result >> 31) & 1)
    return result, carry


def alu_operate(opcode, a, b, carry_in):
    """Execute a data-processing opcode.

    Returns ``(result, n, z, c, v, writes_result)`` where the flag values are
    what an S-suffixed instruction would write.  ``result`` is ``None`` for
    the test/compare opcodes (they produce flags only).
    """
    opcode = DataOpcode(opcode)
    a = to_unsigned(a)
    b = to_unsigned(b)
    carry_bit = 1 if carry_in else 0

    def logical(result, carry=carry_in):
        result &= MASK32
        return result, bool(result >> 31), result == 0, bool(carry), None

    def add(x, y, cin):
        full = x + y + cin
        result = full & MASK32
        carry = full > MASK32
        overflow = (to_signed(x) + to_signed(y) + cin) != to_signed(result)
        return result, bool(result >> 31), result == 0, carry, overflow

    if opcode is DataOpcode.AND or opcode is DataOpcode.TST:
        result, n, z, c, v = logical(a & b)
    elif opcode is DataOpcode.EOR or opcode is DataOpcode.TEQ:
        result, n, z, c, v = logical(a ^ b)
    elif opcode is DataOpcode.SUB or opcode is DataOpcode.CMP:
        result, n, z, c, v = add(a, (~b) & MASK32, 1)
    elif opcode is DataOpcode.RSB:
        result, n, z, c, v = add(b, (~a) & MASK32, 1)
    elif opcode is DataOpcode.ADD or opcode is DataOpcode.CMN:
        result, n, z, c, v = add(a, b, 0)
    elif opcode is DataOpcode.ADC:
        result, n, z, c, v = add(a, b, carry_bit)
    elif opcode is DataOpcode.SBC:
        result, n, z, c, v = add(a, (~b) & MASK32, carry_bit)
    elif opcode is DataOpcode.RSC:
        result, n, z, c, v = add(b, (~a) & MASK32, carry_bit)
    elif opcode is DataOpcode.ORR:
        result, n, z, c, v = logical(a | b)
    elif opcode is DataOpcode.MOV:
        result, n, z, c, v = logical(b)
    elif opcode is DataOpcode.BIC:
        result, n, z, c, v = logical(a & ~b & MASK32)
    elif opcode is DataOpcode.MVN:
        result, n, z, c, v = logical((~b) & MASK32)
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError("unknown data-processing opcode: %r" % (opcode,))

    writes_result = opcode.writes_rd
    return result, n, z, c, v, writes_result


def multiply(rm, rs, accumulator=0):
    """32x32 -> low 32-bit multiply (optionally accumulating)."""
    return (to_unsigned(rm) * to_unsigned(rs) + to_unsigned(accumulator)) & MASK32


def multiply_early_termination_cycles(rs):
    """Iterations of the ARM7 early-termination multiplier.

    The StrongARM/XScale multiplier examines the multiplier operand 8 bits
    per cycle and stops once the remaining bits are all zeros or all ones;
    this data-dependent latency is what the RCPN token delay models.
    """
    value = to_unsigned(rs)
    for cycles in range(1, 5):
        remaining = value >> (8 * cycles)
        if remaining == 0 or remaining == (MASK32 >> (8 * cycles)):
            return cycles
    return 4
