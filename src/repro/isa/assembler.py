"""Two-pass assembler for the ARM7-inspired ISA.

The assembler accepts a practical subset of the ARM assembly syntax:

* labels (``loop:``) and label references in branches and ``.word``,
* directives: ``.org``, ``.word``, ``.space``, ``.align``, ``.equ``,
* data processing: ``add r0, r1, r2`` / ``adds r0, r1, #5`` /
  ``add r0, r1, r2, lsl #2`` / ``mov r0, #1`` / ``cmp r0, r1``,
* multiply: ``mul r0, r1, r2`` and ``mla r0, r1, r2, r3``,
* loads/stores: ``ldr r0, [r1, #4]``, ``str r0, [r1, r2, lsl #2]``,
  post-indexed ``ldr r0, [r1], #4`` and writeback ``ldr r0, [r1, #4]!``,
* block transfers: ``ldmia r0!, {r1, r2-r5}`` / ``stmdb sp!, {r4-r11, lr}``,
* branches: ``b label``, ``bl label`` with condition suffixes,
* system: ``swi #n``, ``halt``, ``nop``,
* condition suffixes on every mnemonic (``addeq``, ``bne`` ...).
"""

from __future__ import annotations

import contextlib
import re
from dataclasses import dataclass, field

from repro.isa.conditions import Condition, condition_from_suffix
from repro.isa.encoding import encode
from repro.isa.instructions import (
    Branch,
    DataOpcode,
    DataProcessing,
    LoadStore,
    LoadStoreMultiple,
    Multiply,
    Operand2,
    ShiftType,
    System,
    SystemOp,
)
from repro.isa.program import Program
from repro.isa.registers import register_number


class AssemblerError(ValueError):
    """Raised on a syntax or encoding error, annotated with the line number."""

    def __init__(self, message, line_number=None, line=None):
        location = "" if line_number is None else " (line %d: %r)" % (line_number, line)
        super().__init__(message + location)
        self.line_number = line_number
        self.line = line


_DATA_OPCODES = {op.name.lower(): op for op in DataOpcode}
_SHIFT_NAMES = {s.name.lower(): s for s in ShiftType}
_CONDITION_SUFFIXES = sorted(
    (c.mnemonic_suffix for c in Condition if c is not Condition.AL), key=len, reverse=True
)
_LSM_MODES = {"ia": (False, True), "ib": (True, True), "da": (False, False), "db": (True, False)}
# Stack aliases: full/empty descending/ascending for LDM/STM.
_STACK_ALIASES_LDM = {"fd": "ia", "ed": "ib", "fa": "da", "ea": "db"}
_STACK_ALIASES_STM = {"fd": "db", "ed": "da", "fa": "ib", "ea": "ia"}


def encode_rotated_immediate(value):
    """Find an (imm8, rotate) pair encoding ``value``.

    Returns ``None`` when the value cannot be expressed as an 8-bit constant
    rotated right by an even amount.
    """
    value &= 0xFFFFFFFF
    for rotate in range(16):
        amount = rotate * 2
        rotated = ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF if amount else value
        if rotated <= 0xFF:
            return rotated, rotate
    return None


@dataclass
class _Statement:
    """One assembled item: an instruction or literal data word(s)."""

    address: int
    line_number: int
    text: str
    kind: str  # "instruction" | "word" | "space"
    payload: object = None
    size: int = 4


@dataclass
class _ParserState:
    origin: int = 0
    location: int = 0
    symbols: dict = field(default_factory=dict)
    statements: list = field(default_factory=list)
    entry: int = None


def _strip_comment(line):
    for marker in (";", "//", "@"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_integer(token, symbols, line_number, line):
    token = token.strip()
    if token.startswith("#"):
        token = token[1:].strip()
    sign = 1
    if token.startswith("-"):
        sign = -1
        token = token[1:].strip()
    with contextlib.suppress(ValueError):
        if token.lower().startswith("0x"):
            return sign * int(token, 16)
        return sign * int(token, 10)
    if token in symbols:
        return sign * symbols[token]
    raise AssemblerError("cannot parse integer or symbol %r" % token, line_number, line)


def _split_mnemonic(mnemonic):
    """Split a full mnemonic into (base, condition, flags-dict)."""
    mnemonic = mnemonic.lower()

    def try_cond(rest):
        for suffix in _CONDITION_SUFFIXES:
            if rest.startswith(suffix):
                return condition_from_suffix(suffix), rest[len(suffix):]
        return Condition.AL, rest

    # Block transfers: ldm/stm + cond + addressing mode.
    for base in ("ldm", "stm"):
        if mnemonic.startswith(base) and len(mnemonic) > 3:
            cond, rest = try_cond(mnemonic[3:])
            if rest in _LSM_MODES:
                return base, cond, {"mode": rest}
            aliases = _STACK_ALIASES_LDM if base == "ldm" else _STACK_ALIASES_STM
            if rest in aliases:
                return base, cond, {"mode": aliases[rest]}

    # Single transfers: ldr/str + cond + optional b.
    for base in ("ldr", "str"):
        if mnemonic.startswith(base):
            cond, rest = try_cond(mnemonic[3:])
            if rest == "":
                return base, cond, {"byte": False}
            if rest == "b":
                return base, cond, {"byte": True}

    # Multiply.
    for base in ("mla", "mul"):
        if mnemonic.startswith(base):
            cond, rest = try_cond(mnemonic[3:])
            if rest == "":
                return base, cond, {"set_flags": False}
            if rest == "s":
                return base, cond, {"set_flags": True}

    # System.
    for base in ("swi", "halt", "nop"):
        if mnemonic.startswith(base):
            cond, rest = try_cond(mnemonic[len(base):])
            if rest == "":
                return base, cond, {}

    # Data processing.
    for name, opcode in _DATA_OPCODES.items():
        if mnemonic.startswith(name):
            cond, rest = try_cond(mnemonic[len(name):])
            if rest == "":
                return "dp", cond, {"opcode": opcode, "set_flags": not opcode.writes_rd}
            if rest == "s":
                return "dp", cond, {"opcode": opcode, "set_flags": True}

    # Branches last so that "bl"/"bls"/"blt" resolve correctly: prefer the
    # longest meaningful interpretation ("blt" is B with LT, "bls" is B with
    # LS, "bleq" is BL with EQ, bare "bl" is branch-and-link).
    if mnemonic.startswith("b"):
        rest = mnemonic[1:]
        cond, leftover = try_cond(rest)
        if leftover == "":
            return "b", cond, {"link": False}
        if rest.startswith("l"):
            cond, leftover = try_cond(rest[1:])
            if leftover == "":
                return "b", cond, {"link": True}

    return None, None, None


def _parse_register(token, line_number, line):
    try:
        return register_number(token)
    except ValueError:
        raise AssemblerError(
            "expected a register, got %r" % token, line_number, line
        ) from None


def _split_operands(text):
    """Split an operand string on commas that are not inside brackets/braces."""
    parts, depth, current = [], 0, ""
    for char in text:
        if char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def _parse_shift(parts, start, symbols, line_number, line):
    """Parse an optional ``lsl #n`` trailing shift specification."""
    if start >= len(parts):
        return ShiftType.LSL, 0
    tokens = parts[start].split()
    if len(tokens) != 2 or tokens[0].lower() not in _SHIFT_NAMES:
        raise AssemblerError("cannot parse shift %r" % parts[start], line_number, line)
    amount = _parse_integer(tokens[1], symbols, line_number, line)
    if not 0 <= amount <= 31:
        raise AssemblerError("shift amount out of range: %d" % amount, line_number, line)
    return _SHIFT_NAMES[tokens[0].lower()], amount


def _parse_operand2(parts, start, symbols, line_number, line):
    token = parts[start]
    if token.startswith("#") or token[0].isdigit() or token.startswith("-"):
        value = _parse_integer(token, symbols, line_number, line)
        encoded = encode_rotated_immediate(value)
        if encoded is None:
            raise AssemblerError(
                "immediate %d is not encodable as a rotated 8-bit constant" % value,
                line_number,
                line,
            )
        imm8, rotate = encoded
        return Operand2.from_immediate(imm8, rotate)
    rm = _parse_register(token, line_number, line)
    shift_type, shift_amount = _parse_shift(parts, start + 1, symbols, line_number, line)
    return Operand2.from_register(rm, shift_type, shift_amount)


def _parse_register_list(text, line_number, line):
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise AssemblerError("expected a register list in braces, got %r" % text, line_number, line)
    registers = set()
    for item in text[1:-1].split(","):
        item = item.strip()
        if not item:
            continue
        if "-" in item:
            low, high = item.split("-", 1)
            low_index = _parse_register(low.strip(), line_number, line)
            high_index = _parse_register(high.strip(), line_number, line)
            if high_index < low_index:
                raise AssemblerError("register range is reversed: %r" % item, line_number, line)
            registers.update(range(low_index, high_index + 1))
        else:
            registers.add(_parse_register(item, line_number, line))
    if not registers:
        raise AssemblerError("empty register list", line_number, line)
    return tuple(sorted(registers))


_ADDRESS_PRE = re.compile(r"^\[(?P<inside>[^\]]+)\](?P<bang>!?)$")
_ADDRESS_POST = re.compile(r"^\[(?P<base>[^\]]+)\]\s*,\s*(?P<offset>.+)$")


def _parse_load_store(base, cond, flags, operands, symbols, line_number, line):
    parts = _split_operands(operands)
    if len(parts) < 2:
        raise AssemblerError("load/store needs a register and an address", line_number, line)
    rd = _parse_register(parts[0], line_number, line)
    address = ", ".join(parts[1:])

    pre_index, writeback = True, False
    post_match = _ADDRESS_POST.match(address)
    if post_match:
        pre_index = False
        writeback = False
        base_text = post_match.group("base").strip()
        offset_text = post_match.group("offset").strip()
        inner_parts = [base_text] + _split_operands(offset_text)
    else:
        pre_match = _ADDRESS_PRE.match(address)
        if not pre_match:
            raise AssemblerError("cannot parse address %r" % address, line_number, line)
        writeback = bool(pre_match.group("bang"))
        inner_parts = _split_operands(pre_match.group("inside"))

    rn = _parse_register(inner_parts[0], line_number, line)
    up = True
    offset_immediate = 0
    offset_register = None
    shift_type, shift_amount = ShiftType.LSL, 0
    if len(inner_parts) > 1:
        offset_token = inner_parts[1]
        if offset_token.startswith("#") or offset_token.lstrip("-").isdigit() or offset_token.startswith("-"):
            value = _parse_integer(offset_token, symbols, line_number, line)
            up = value >= 0
            offset_immediate = abs(value)
        else:
            negative = offset_token.startswith("-")
            offset_register = _parse_register(offset_token.lstrip("-"), line_number, line)
            up = not negative
            shift_type, shift_amount = _parse_shift(inner_parts, 2, symbols, line_number, line)

    return LoadStore(
        cond=cond,
        load=(base == "ldr"),
        byte=flags["byte"],
        rd=rd,
        rn=rn,
        offset_immediate=None if offset_register is not None else offset_immediate,
        offset_register=offset_register,
        shift_type=shift_type,
        shift_amount=shift_amount,
        pre_index=pre_index,
        up=up,
        writeback=writeback,
    )


def _parse_load_store_multiple(base, cond, flags, operands, line_number, line):
    parts = _split_operands(operands)
    if len(parts) != 2:
        raise AssemblerError("ldm/stm needs a base register and a register list", line_number, line)
    base_token = parts[0]
    writeback = base_token.endswith("!")
    rn = _parse_register(base_token.rstrip("!"), line_number, line)
    register_list = _parse_register_list(parts[1], line_number, line)
    before, up = _LSM_MODES[flags["mode"]]
    return LoadStoreMultiple(
        cond=cond,
        load=(base == "ldm"),
        rn=rn,
        register_list=register_list,
        writeback=writeback,
        before=before,
        up=up,
    )


def _parse_instruction(mnemonic, operands, symbols, address, line_number, line):
    base, cond, flags = _split_mnemonic(mnemonic)
    if base is None:
        raise AssemblerError("unknown mnemonic %r" % mnemonic, line_number, line)

    if base == "dp":
        opcode = flags["opcode"]
        parts = _split_operands(operands)
        if opcode in (DataOpcode.MOV, DataOpcode.MVN):
            if len(parts) < 2:
                raise AssemblerError("%s needs two operands" % mnemonic, line_number, line)
            rd = _parse_register(parts[0], line_number, line)
            operand2 = _parse_operand2(parts, 1, symbols, line_number, line)
            return DataProcessing(cond=cond, opcode=opcode, rd=rd, rn=0,
                                  operand2=operand2, set_flags=flags["set_flags"])
        if not opcode.writes_rd:
            if len(parts) < 2:
                raise AssemblerError("%s needs two operands" % mnemonic, line_number, line)
            rn = _parse_register(parts[0], line_number, line)
            operand2 = _parse_operand2(parts, 1, symbols, line_number, line)
            return DataProcessing(cond=cond, opcode=opcode, rd=0, rn=rn,
                                  operand2=operand2, set_flags=True)
        if len(parts) < 3:
            raise AssemblerError("%s needs three operands" % mnemonic, line_number, line)
        rd = _parse_register(parts[0], line_number, line)
        rn = _parse_register(parts[1], line_number, line)
        operand2 = _parse_operand2(parts, 2, symbols, line_number, line)
        return DataProcessing(cond=cond, opcode=opcode, rd=rd, rn=rn,
                              operand2=operand2, set_flags=flags["set_flags"])

    if base in ("mul", "mla"):
        parts = _split_operands(operands)
        needed = 4 if base == "mla" else 3
        if len(parts) != needed:
            raise AssemblerError("%s needs %d operands" % (mnemonic, needed), line_number, line)
        regs = [_parse_register(p, line_number, line) for p in parts]
        return Multiply(
            cond=cond,
            rd=regs[0],
            rm=regs[1],
            rs=regs[2],
            rn=regs[3] if base == "mla" else 0,
            accumulate=(base == "mla"),
            set_flags=flags["set_flags"],
        )

    if base in ("ldr", "str"):
        return _parse_load_store(base, cond, flags, operands, symbols, line_number, line)

    if base in ("ldm", "stm"):
        return _parse_load_store_multiple(base, cond, flags, operands, line_number, line)

    if base == "b":
        target_token = operands.strip()
        if target_token in symbols:
            target = symbols[target_token]
        else:
            target = _parse_integer(target_token, symbols, line_number, line)
        delta = target - (address + 8)
        if delta % 4 != 0:
            raise AssemblerError("branch target %r is not word aligned" % target_token, line_number, line)
        return Branch(cond=cond, link=flags["link"], offset=delta // 4)

    if base == "swi":
        imm = _parse_integer(operands.strip() or "#0", symbols, line_number, line)
        return System(cond=cond, op=SystemOp.SWI, imm=imm)
    if base == "halt":
        return System(cond=cond, op=SystemOp.HALT)
    if base == "nop":
        return System(cond=cond, op=SystemOp.NOP)

    raise AssemblerError("unhandled mnemonic %r" % mnemonic, line_number, line)  # pragma: no cover


def _first_pass(source):
    """Collect labels, ``.equ`` symbols and statement addresses."""
    state = _ParserState()
    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
            if not match:
                break
            label, line = match.group(1), match.group(2).strip()
            if label in state.symbols:
                raise AssemblerError("duplicate label %r" % label, line_number, raw_line)
            state.symbols[label] = state.location
        if not line:
            continue

        lowered = line.lower()
        if lowered.startswith(".org"):
            state.location = _parse_integer(line.split(None, 1)[1], state.symbols, line_number, raw_line)
            if state.origin == 0 and not state.statements:
                state.origin = state.location
            continue
        if lowered.startswith(".equ"):
            body = line.split(None, 1)[1]
            name, value = [part.strip() for part in body.split(",", 1)]
            state.symbols[name] = _parse_integer(value, state.symbols, line_number, raw_line)
            continue
        if lowered.startswith(".align"):
            while state.location % 4:
                state.location += 1
            continue
        if lowered.startswith(".entry"):
            state.entry = line.split(None, 1)[1].strip()
            continue
        if lowered.startswith(".word"):
            values = _split_operands(line.split(None, 1)[1])
            statement = _Statement(state.location, line_number, raw_line, "word", values, 4 * len(values))
            state.statements.append(statement)
            state.location += statement.size
            continue
        if lowered.startswith(".space"):
            size = _parse_integer(line.split(None, 1)[1], state.symbols, line_number, raw_line)
            statement = _Statement(state.location, line_number, raw_line, "space", None, size)
            state.statements.append(statement)
            state.location += size
            continue
        if lowered.startswith("."):
            raise AssemblerError("unknown directive", line_number, raw_line)

        tokens = line.split(None, 1)
        mnemonic = tokens[0]
        operands = tokens[1] if len(tokens) > 1 else ""
        statement = _Statement(state.location, line_number, raw_line, "instruction", (mnemonic, operands))
        state.statements.append(statement)
        state.location += 4
    return state


def assemble(source, origin=0):
    """Assemble source text into a :class:`Program`.

    ``origin`` is the load address of the first statement unless the source
    overrides it with ``.org``.
    """
    state = _first_pass(source)
    if not state.statements:
        raise AssemblerError("no statements in source")
    base_address = state.statements[0].address or origin
    if origin and not state.statements[0].address:
        # Shift everything to the requested origin.
        for statement in state.statements:
            statement.address += origin
        state.symbols = {name: value + origin for name, value in state.symbols.items()}
        base_address = origin

    end = max(s.address + s.size for s in state.statements)
    words = [0] * ((end - base_address + 3) // 4)

    for statement in state.statements:
        index = (statement.address - base_address) // 4
        if statement.kind == "instruction":
            mnemonic, operands = statement.payload
            instr = _parse_instruction(
                mnemonic, operands, state.symbols, statement.address,
                statement.line_number, statement.text,
            )
            words[index] = encode(instr)
        elif statement.kind == "word":
            for offset, token in enumerate(statement.payload):
                token = token.strip()
                if token in state.symbols:
                    value = state.symbols[token]
                else:
                    value = _parse_integer(token, state.symbols, statement.line_number, statement.text)
                words[index + offset] = value & 0xFFFFFFFF
        # "space" leaves zero-filled words in place.

    entry = base_address
    if state.entry is not None:
        if state.entry not in state.symbols:
            raise AssemblerError("unknown entry label %r" % state.entry)
        entry = state.symbols[state.entry]
    elif "_start" in state.symbols:
        entry = state.symbols["_start"]
    elif "main" in state.symbols:
        entry = state.symbols["main"]

    return Program(words=tuple(words), origin=base_address, entry=entry, symbols=dict(state.symbols))


def assemble_file(path, origin=0):
    """Assemble a file on disk; see :func:`assemble`."""
    with open(path) as handle:
        return assemble(handle.read(), origin=origin)
