"""Condition codes controlling conditional execution of instructions."""

from __future__ import annotations

from enum import IntEnum


class Condition(IntEnum):
    """ARM-style 4-bit condition codes (subset: ``NV`` is unused)."""

    EQ = 0x0  # equal (Z set)
    NE = 0x1  # not equal (Z clear)
    CS = 0x2  # carry set / unsigned higher or same
    CC = 0x3  # carry clear / unsigned lower
    MI = 0x4  # minus / negative
    PL = 0x5  # plus / positive or zero
    VS = 0x6  # overflow set
    VC = 0x7  # overflow clear
    HI = 0x8  # unsigned higher
    LS = 0x9  # unsigned lower or same
    GE = 0xA  # signed greater or equal
    LT = 0xB  # signed less than
    GT = 0xC  # signed greater than
    LE = 0xD  # signed less or equal
    AL = 0xE  # always

    @property
    def mnemonic_suffix(self):
        """Assembly suffix; the always condition has no suffix."""
        if self is Condition.AL:
            return ""
        return self.name.lower()


_SUFFIXES = {cond.name.lower(): cond for cond in Condition}


def condition_from_suffix(suffix):
    """Map an assembly condition suffix (``eq``, ``ne`` ...) to a Condition."""
    if not suffix:
        return Condition.AL
    try:
        return _SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError("unknown condition suffix: %r" % (suffix,)) from None


def condition_passes(condition, flags):
    """Evaluate a condition code against a :class:`ConditionFlags` value."""
    cond = Condition(condition)
    n, z, c, v = flags.n, flags.z, flags.c, flags.v
    if cond is Condition.EQ:
        return z
    if cond is Condition.NE:
        return not z
    if cond is Condition.CS:
        return c
    if cond is Condition.CC:
        return not c
    if cond is Condition.MI:
        return n
    if cond is Condition.PL:
        return not n
    if cond is Condition.VS:
        return v
    if cond is Condition.VC:
        return not v
    if cond is Condition.HI:
        return c and not z
    if cond is Condition.LS:
        return (not c) or z
    if cond is Condition.GE:
        return n == v
    if cond is Condition.LT:
        return n != v
    if cond is Condition.GT:
        return (not z) and n == v
    if cond is Condition.LE:
        return z or n != v
    return True  # AL
