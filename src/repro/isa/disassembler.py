"""Disassembler: turn 32-bit words back into readable assembly text."""

from __future__ import annotations

from repro.isa.encoding import DecodeError, decode
from repro.isa.instructions import Branch


def disassemble(word, address=None):
    """Disassemble one instruction word.

    When ``address`` is given, branch targets are shown as absolute
    addresses; otherwise the raw instruction text is returned.  Words that do
    not decode are rendered as ``.word 0x...``.
    """
    try:
        instr = decode(word)
    except DecodeError:
        return ".word 0x%08x" % word
    if isinstance(instr, Branch) and address is not None:
        return "%s 0x%x" % (instr.mnemonic, instr.target(address))
    return str(instr)


def disassemble_program(program):
    """Yield ``(address, word, text)`` triples for every word of a program."""
    for index, word in enumerate(program.words):
        address = program.origin + 4 * index
        yield address, word, disassemble(word, address)
