"""Binary encoding and decoding of the ARM7-inspired instruction set.

Every instruction is a 32-bit word:

====  =======================================================================
bits  meaning
====  =======================================================================
31-28 condition code
27-25 instruction class: 000/001 data processing (register/immediate
      operand2), 010/011 load-store (immediate/register offset), 100
      load-store multiple, 101 branch, 110 multiply, 111 system
24-0  class-specific fields (documented per encoder below)
====  =======================================================================
"""

from __future__ import annotations

from repro.isa.conditions import Condition
from repro.isa.instructions import (
    Branch,
    DataOpcode,
    DataProcessing,
    LoadStore,
    LoadStoreMultiple,
    Multiply,
    Operand2,
    ShiftType,
    System,
    SystemOp,
)

CLASS_DP_REG = 0b000
CLASS_DP_IMM = 0b001
CLASS_LS_IMM = 0b010
CLASS_LS_REG = 0b011
CLASS_LSM = 0b100
CLASS_BRANCH = 0b101
CLASS_MUL = 0b110
CLASS_SYSTEM = 0b111


class DecodeError(ValueError):
    """Raised when a 32-bit word is not a valid instruction."""


class EncodeError(ValueError):
    """Raised when an instruction cannot be represented in 32 bits."""


def _check_register(value, what):
    if not 0 <= value <= 15:
        raise EncodeError("%s out of range: %r" % (what, value))
    return value


def _encode_shifted_register(rm, shift_type, shift_amount):
    if not 0 <= shift_amount <= 31:
        raise EncodeError("shift amount out of range: %r" % (shift_amount,))
    return (
        (shift_amount & 0x1F) << 7
        | (int(shift_type) & 0x3) << 5
        | _check_register(rm, "rm")
    )


def _encode_data_processing(instr):
    word = (int(instr.opcode) & 0xF) << 21
    word |= (1 << 20) if instr.set_flags else 0
    word |= _check_register(instr.rn, "rn") << 16
    word |= _check_register(instr.rd, "rd") << 12
    op2 = instr.operand2
    if op2.is_immediate:
        if not 0 <= op2.immediate <= 0xFF:
            raise EncodeError("immediate out of range: %r" % (op2.immediate,))
        if not 0 <= op2.rotate <= 0xF:
            raise EncodeError("rotate out of range: %r" % (op2.rotate,))
        word |= (op2.rotate & 0xF) << 8 | (op2.immediate & 0xFF)
        return CLASS_DP_IMM, word
    word |= _encode_shifted_register(op2.rm, op2.shift_type, op2.shift_amount)
    return CLASS_DP_REG, word


def _encode_load_store(instr):
    word = 0
    word |= (1 << 24) if instr.pre_index else 0
    word |= (1 << 23) if instr.up else 0
    word |= (1 << 22) if instr.byte else 0
    word |= (1 << 21) if instr.writeback else 0
    word |= (1 << 20) if instr.load else 0
    word |= _check_register(instr.rn, "rn") << 16
    word |= _check_register(instr.rd, "rd") << 12
    if instr.has_register_offset:
        word |= _encode_shifted_register(
            instr.offset_register, instr.shift_type, instr.shift_amount
        )
        return CLASS_LS_REG, word
    offset = instr.offset_immediate or 0
    if not 0 <= offset <= 0xFFF:
        raise EncodeError("load/store offset out of range: %r" % (offset,))
    word |= offset
    return CLASS_LS_IMM, word


def _encode_load_store_multiple(instr):
    word = 0
    word |= (1 << 24) if instr.before else 0
    word |= (1 << 23) if instr.up else 0
    word |= (1 << 21) if instr.writeback else 0
    word |= (1 << 20) if instr.load else 0
    word |= _check_register(instr.rn, "rn") << 16
    if not instr.register_list:
        raise EncodeError("load/store multiple requires a non-empty register list")
    mask = 0
    for reg in instr.register_list:
        mask |= 1 << _check_register(reg, "register list entry")
    word |= mask
    return CLASS_LSM, word


def _encode_branch(instr):
    if not -(1 << 23) <= instr.offset < (1 << 23):
        raise EncodeError("branch offset out of range: %r" % (instr.offset,))
    word = (1 << 24) if instr.link else 0
    word |= instr.offset & 0xFFFFFF
    return CLASS_BRANCH, word


def _encode_multiply(instr):
    word = 0
    word |= (1 << 21) if instr.accumulate else 0
    word |= (1 << 20) if instr.set_flags else 0
    word |= _check_register(instr.rd, "rd") << 16
    word |= _check_register(instr.rn, "rn") << 12
    word |= _check_register(instr.rs, "rs") << 8
    word |= _check_register(instr.rm, "rm")
    return CLASS_MUL, word


def _encode_system(instr):
    if not 0 <= instr.imm < (1 << 20):
        raise EncodeError("system immediate out of range: %r" % (instr.imm,))
    word = (int(instr.op) & 0x1F) << 20
    word |= instr.imm & 0xFFFFF
    return CLASS_SYSTEM, word


def encode(instr):
    """Encode a decoded instruction into its 32-bit binary word."""
    if isinstance(instr, DataProcessing):
        klass, word = _encode_data_processing(instr)
    elif isinstance(instr, LoadStore):
        klass, word = _encode_load_store(instr)
    elif isinstance(instr, LoadStoreMultiple):
        klass, word = _encode_load_store_multiple(instr)
    elif isinstance(instr, Branch):
        klass, word = _encode_branch(instr)
    elif isinstance(instr, Multiply):
        klass, word = _encode_multiply(instr)
    elif isinstance(instr, System):
        klass, word = _encode_system(instr)
    else:
        raise EncodeError("cannot encode object of type %s" % type(instr).__name__)
    return (int(instr.cond) & 0xF) << 28 | klass << 25 | (word & 0x1FFFFFF)


def _decode_operand2_register(word):
    return Operand2.from_register(
        rm=word & 0xF,
        shift_type=ShiftType((word >> 5) & 0x3),
        shift_amount=(word >> 7) & 0x1F,
    )


def _decode_data_processing(cond, word, immediate):
    if immediate:
        operand2 = Operand2.from_immediate(word & 0xFF, (word >> 8) & 0xF)
    else:
        operand2 = _decode_operand2_register(word)
    return DataProcessing(
        cond=cond,
        opcode=DataOpcode((word >> 21) & 0xF),
        set_flags=bool(word & (1 << 20)),
        rn=(word >> 16) & 0xF,
        rd=(word >> 12) & 0xF,
        operand2=operand2,
    )


def _decode_load_store(cond, word, register_offset):
    common = dict(
        cond=cond,
        pre_index=bool(word & (1 << 24)),
        up=bool(word & (1 << 23)),
        byte=bool(word & (1 << 22)),
        writeback=bool(word & (1 << 21)),
        load=bool(word & (1 << 20)),
        rn=(word >> 16) & 0xF,
        rd=(word >> 12) & 0xF,
    )
    if register_offset:
        return LoadStore(
            offset_register=word & 0xF,
            shift_type=ShiftType((word >> 5) & 0x3),
            shift_amount=(word >> 7) & 0x1F,
            **common,
        )
    return LoadStore(offset_immediate=word & 0xFFF, **common)


def _decode_load_store_multiple(cond, word):
    mask = word & 0xFFFF
    registers = tuple(i for i in range(16) if mask & (1 << i))
    if not registers:
        raise DecodeError("load/store multiple with empty register list")
    return LoadStoreMultiple(
        cond=cond,
        before=bool(word & (1 << 24)),
        up=bool(word & (1 << 23)),
        writeback=bool(word & (1 << 21)),
        load=bool(word & (1 << 20)),
        rn=(word >> 16) & 0xF,
        register_list=registers,
    )


def _decode_branch(cond, word):
    offset = word & 0xFFFFFF
    if offset & 0x800000:
        offset -= 0x1000000
    return Branch(cond=cond, link=bool(word & (1 << 24)), offset=offset)


def _decode_multiply(cond, word):
    return Multiply(
        cond=cond,
        accumulate=bool(word & (1 << 21)),
        set_flags=bool(word & (1 << 20)),
        rd=(word >> 16) & 0xF,
        rn=(word >> 12) & 0xF,
        rs=(word >> 8) & 0xF,
        rm=word & 0xF,
    )


def _decode_system(cond, word):
    op_value = (word >> 20) & 0x1F
    try:
        op = SystemOp(op_value)
    except ValueError:
        raise DecodeError("unknown system opcode: %d" % op_value) from None
    return System(cond=cond, op=op, imm=word & 0xFFFFF)


def decode(word):
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`DecodeError` for words that are not valid instructions.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise DecodeError("instruction word out of 32-bit range: %r" % (word,))
    cond_bits = (word >> 28) & 0xF
    if cond_bits == 0xF:
        raise DecodeError("reserved condition field 0b1111")
    cond = Condition(cond_bits)
    klass = (word >> 25) & 0x7
    if klass == CLASS_DP_REG:
        return _decode_data_processing(cond, word, immediate=False)
    if klass == CLASS_DP_IMM:
        return _decode_data_processing(cond, word, immediate=True)
    if klass == CLASS_LS_IMM:
        return _decode_load_store(cond, word, register_offset=False)
    if klass == CLASS_LS_REG:
        return _decode_load_store(cond, word, register_offset=True)
    if klass == CLASS_LSM:
        return _decode_load_store_multiple(cond, word)
    if klass == CLASS_BRANCH:
        return _decode_branch(cond, word)
    if klass == CLASS_MUL:
        return _decode_multiply(cond, word)
    return _decode_system(cond, word)
