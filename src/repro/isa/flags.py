"""Condition flags (NZCV) of the processor status register."""

from __future__ import annotations

from dataclasses import dataclass

MASK32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit unsigned value as a signed integer."""
    value &= MASK32
    if value & 0x80000000:
        return value - 0x100000000
    return value


def to_unsigned(value):
    """Truncate a Python integer to its 32-bit unsigned representation."""
    return value & MASK32


@dataclass
class ConditionFlags:
    """The four ARM-style condition flags.

    ``n`` negative, ``z`` zero, ``c`` carry (NOT borrow for subtraction),
    ``v`` signed overflow.
    """

    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False

    def copy(self):
        return ConditionFlags(self.n, self.z, self.c, self.v)

    def set_nz(self, result):
        """Update N and Z from a 32-bit result."""
        result = to_unsigned(result)
        self.n = bool(result & 0x80000000)
        self.z = result == 0

    def update_add(self, a, b, carry_in=0):
        """Set all four flags for ``a + b + carry_in`` and return the result."""
        a = to_unsigned(a)
        b = to_unsigned(b)
        full = a + b + carry_in
        result = full & MASK32
        self.set_nz(result)
        self.c = full > MASK32
        self.v = (to_signed(a) + to_signed(b) + carry_in) != to_signed(result)
        return result

    def update_sub(self, a, b, carry_in=1):
        """Set all four flags for ``a - b - (1 - carry_in)`` and return the result.

        Follows the ARM convention where carry means "no borrow".
        """
        return self.update_add(a, (~b) & MASK32, carry_in)

    def as_tuple(self):
        return (self.n, self.z, self.c, self.v)

    def __str__(self):
        return "".join(
            letter if flag else letter.lower() + "̸"
            for letter, flag in zip("NZCV", self.as_tuple())
        )
