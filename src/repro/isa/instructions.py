"""Decoded instruction representations.

Each instruction class corresponds to one *operation class* in the RCPN
processor models: instructions of the same class share a binary layout and
flow through the same pipeline path (paper Section 3, "Operation Class").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.isa.conditions import Condition
from repro.isa.registers import register_name


class DataOpcode(IntEnum):
    """Opcodes of the data-processing (ALU) operation class."""

    AND = 0x0
    EOR = 0x1
    SUB = 0x2
    RSB = 0x3
    ADD = 0x4
    ADC = 0x5
    SBC = 0x6
    RSC = 0x7
    TST = 0x8
    TEQ = 0x9
    CMP = 0xA
    CMN = 0xB
    ORR = 0xC
    MOV = 0xD
    BIC = 0xE
    MVN = 0xF

    @property
    def writes_rd(self):
        """Comparison/test opcodes only update flags and write no register."""
        return self not in (DataOpcode.TST, DataOpcode.TEQ, DataOpcode.CMP, DataOpcode.CMN)

    @property
    def uses_rn(self):
        """MOV and MVN take a single operand (operand2 only)."""
        return self not in (DataOpcode.MOV, DataOpcode.MVN)


class ShiftType(IntEnum):
    """Barrel-shifter operation applied to a register operand."""

    LSL = 0
    LSR = 1
    ASR = 2
    ROR = 3


class SystemOp(IntEnum):
    """System operation class opcodes."""

    SWI = 0
    HALT = 1
    NOP = 2


@dataclass(frozen=True)
class Operand2:
    """The flexible second operand of data-processing instructions.

    Either an 8-bit immediate rotated right by ``2 * rotate`` or a register
    ``rm`` passed through the barrel shifter.
    """

    immediate: int = None
    rotate: int = 0
    rm: int = None
    shift_type: ShiftType = ShiftType.LSL
    shift_amount: int = 0

    @property
    def is_immediate(self):
        return self.immediate is not None

    @classmethod
    def from_immediate(cls, immediate, rotate=0):
        return cls(immediate=immediate, rotate=rotate)

    @classmethod
    def from_register(cls, rm, shift_type=ShiftType.LSL, shift_amount=0):
        return cls(rm=rm, shift_type=ShiftType(shift_type), shift_amount=shift_amount)

    @property
    def immediate_value(self):
        """The fully rotated immediate value (only valid for immediate form)."""
        if not self.is_immediate:
            raise ValueError("operand2 is not an immediate")
        amount = (self.rotate * 2) % 32
        value = self.immediate & 0xFF
        if amount == 0:
            return value
        return ((value >> amount) | (value << (32 - amount))) & 0xFFFFFFFF

    def __str__(self):
        if self.is_immediate:
            return "#%d" % self.immediate_value
        text = register_name(self.rm)
        if self.shift_amount:
            text += ", %s #%d" % (self.shift_type.name.lower(), self.shift_amount)
        return text


@dataclass(frozen=True)
class Instruction:
    """Base class of all decoded instructions."""

    cond: Condition = Condition.AL

    #: Name of the RCPN operation class this instruction belongs to.
    operation_class = "unknown"

    @property
    def mnemonic(self):
        raise NotImplementedError

    def source_registers(self):
        """Register indices read by this instruction (excluding the PC fetch)."""
        return ()

    def destination_registers(self):
        """Register indices written by this instruction."""
        return ()

    def is_branch(self):
        return False

    def is_memory_access(self):
        return False

    def _cond_suffix(self):
        return Condition(self.cond).mnemonic_suffix


@dataclass(frozen=True)
class DataProcessing(Instruction):
    """ALU operation class: AND/EOR/SUB/.../MVN with the barrel shifter."""

    opcode: DataOpcode = DataOpcode.MOV
    rd: int = 0
    rn: int = 0
    operand2: Operand2 = field(default_factory=lambda: Operand2.from_immediate(0))
    set_flags: bool = False

    operation_class = "alu"

    @property
    def mnemonic(self):
        suffix = self._cond_suffix()
        flag = "s" if self.set_flags and self.opcode.writes_rd else ""
        return self.opcode.name.lower() + suffix + flag

    def source_registers(self):
        sources = []
        if self.opcode.uses_rn:
            sources.append(self.rn)
        if not self.operand2.is_immediate:
            sources.append(self.operand2.rm)
        return tuple(sources)

    def destination_registers(self):
        if self.opcode.writes_rd:
            return (self.rd,)
        return ()

    def __str__(self):
        parts = [self.mnemonic]
        operands = []
        if self.opcode.writes_rd:
            operands.append(register_name(self.rd))
        if self.opcode.uses_rn:
            operands.append(register_name(self.rn))
        operands.append(str(self.operand2))
        return "%s %s" % (parts[0], ", ".join(operands))


@dataclass(frozen=True)
class Multiply(Instruction):
    """Multiply operation class: MUL and MLA."""

    rd: int = 0
    rm: int = 0
    rs: int = 0
    rn: int = 0
    accumulate: bool = False
    set_flags: bool = False

    operation_class = "mul"

    @property
    def mnemonic(self):
        base = "mla" if self.accumulate else "mul"
        return base + self._cond_suffix() + ("s" if self.set_flags else "")

    def source_registers(self):
        sources = [self.rm, self.rs]
        if self.accumulate:
            sources.append(self.rn)
        return tuple(sources)

    def destination_registers(self):
        return (self.rd,)

    def __str__(self):
        regs = [register_name(self.rd), register_name(self.rm), register_name(self.rs)]
        if self.accumulate:
            regs.append(register_name(self.rn))
        return "%s %s" % (self.mnemonic, ", ".join(regs))


@dataclass(frozen=True)
class LoadStore(Instruction):
    """Single-word/byte load/store operation class (LDR/STR/LDRB/STRB)."""

    load: bool = True
    byte: bool = False
    rd: int = 0
    rn: int = 0
    offset_immediate: int = None
    offset_register: int = None
    shift_type: ShiftType = ShiftType.LSL
    shift_amount: int = 0
    pre_index: bool = True
    up: bool = True
    writeback: bool = False

    operation_class = "mem"

    @property
    def mnemonic(self):
        base = "ldr" if self.load else "str"
        return base + self._cond_suffix() + ("b" if self.byte else "")

    @property
    def has_register_offset(self):
        return self.offset_register is not None

    def source_registers(self):
        sources = [self.rn]
        if self.has_register_offset:
            sources.append(self.offset_register)
        if not self.load:
            sources.append(self.rd)
        return tuple(sources)

    def destination_registers(self):
        dests = []
        if self.load:
            dests.append(self.rd)
        if self.writeback or not self.pre_index:
            dests.append(self.rn)
        return tuple(dests)

    def is_memory_access(self):
        return True

    def __str__(self):
        if self.has_register_offset:
            offset = register_name(self.offset_register)
            if self.shift_amount:
                offset += ", %s #%d" % (self.shift_type.name.lower(), self.shift_amount)
        else:
            offset = "#%d" % ((self.offset_immediate or 0) * (1 if self.up else -1))
        if self.pre_index:
            address = "[%s, %s]%s" % (register_name(self.rn), offset, "!" if self.writeback else "")
        else:
            address = "[%s], %s" % (register_name(self.rn), offset)
        return "%s %s, %s" % (self.mnemonic, register_name(self.rd), address)


@dataclass(frozen=True)
class LoadStoreMultiple(Instruction):
    """Block-transfer operation class (LDM/STM).

    On XScale these instructions generate one micro-operation per transferred
    register; the RCPN model exploits the paper's "sub-net may generate
    multiple instruction tokens" rule to model this.
    """

    load: bool = True
    rn: int = 0
    register_list: tuple = ()
    writeback: bool = False
    before: bool = False
    up: bool = True

    operation_class = "memm"

    @property
    def mnemonic(self):
        base = "ldm" if self.load else "stm"
        mode = ("ib" if self.before else "ia") if self.up else ("db" if self.before else "da")
        return base + self._cond_suffix() + mode

    def source_registers(self):
        sources = [self.rn]
        if not self.load:
            sources.extend(self.register_list)
        return tuple(sources)

    def destination_registers(self):
        dests = []
        if self.load:
            dests.extend(self.register_list)
        if self.writeback:
            dests.append(self.rn)
        return tuple(dests)

    def is_memory_access(self):
        return True

    def __str__(self):
        regs = ", ".join(register_name(r) for r in self.register_list)
        bang = "!" if self.writeback else ""
        return "%s %s%s, {%s}" % (self.mnemonic, register_name(self.rn), bang, regs)


@dataclass(frozen=True)
class Branch(Instruction):
    """Branch operation class (B/BL) with a signed 24-bit word offset."""

    link: bool = False
    offset: int = 0

    operation_class = "branch"

    @property
    def mnemonic(self):
        return ("bl" if self.link else "b") + self._cond_suffix()

    def source_registers(self):
        return ()

    def destination_registers(self):
        from repro.isa.registers import LR

        return (LR,) if self.link else ()

    def is_branch(self):
        return True

    def target(self, address):
        """Branch target for an instruction fetched at ``address``.

        As on ARM, the offset is relative to the address of the instruction
        plus 8 (two instruction slots ahead, reflecting the visible pipeline).
        """
        return (address + 8 + self.offset * 4) & 0xFFFFFFFF

    def __str__(self):
        return "%s %+d" % (self.mnemonic, self.offset * 4 + 8)


@dataclass(frozen=True)
class System(Instruction):
    """System operation class: software interrupt, halt and no-op."""

    op: SystemOp = SystemOp.NOP
    imm: int = 0

    operation_class = "system"

    @property
    def mnemonic(self):
        return self.op.name.lower() + self._cond_suffix()

    def __str__(self):
        if self.op is SystemOp.SWI:
            return "swi #%d" % self.imm
        return self.mnemonic


#: All operation classes in decode priority order.
OPERATION_CLASSES = ("alu", "mul", "mem", "memm", "branch", "system")
