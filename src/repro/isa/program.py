"""Assembled program image: words, origin, entry point and symbol table."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Program:
    """An assembled binary image.

    ``words`` is the little-endian word image starting at ``origin``;
    ``entry`` is the address execution starts at; ``symbols`` maps label
    names to addresses.
    """

    words: tuple
    origin: int = 0
    entry: int = 0
    symbols: dict = field(default_factory=dict)

    @property
    def size_bytes(self):
        return 4 * len(self.words)

    @property
    def end(self):
        return self.origin + self.size_bytes

    def load_into(self, memory):
        """Copy the image into a memory object exposing ``write_word``."""
        for index, word in enumerate(self.words):
            memory.write_word(self.origin + 4 * index, word)

    def word_at(self, address):
        """Return the image word at ``address`` (must be inside the image)."""
        if address % 4:
            raise ValueError("unaligned address: %#x" % address)
        index = (address - self.origin) // 4
        if not 0 <= index < len(self.words):
            raise IndexError("address %#x outside program image" % address)
        return self.words[index]

    def address_of(self, symbol):
        """Look up a label address."""
        return self.symbols[symbol]
