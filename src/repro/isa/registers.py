"""Architectural register definitions for the ARM7-inspired ISA.

Sixteen general-purpose registers are visible at any time.  As on ARM,
``r13`` is conventionally the stack pointer, ``r14`` the link register and
``r15`` the program counter.
"""

from __future__ import annotations

NUM_REGISTERS = 16

SP = 13
LR = 14
PC = 15

_ALIASES = {
    "sp": SP,
    "lr": LR,
    "pc": PC,
    "fp": 11,
    "ip": 12,
}


class RegisterNames:
    """Canonical register names ``r0`` .. ``r15`` plus ARM aliases."""

    ALL = tuple("r%d" % i for i in range(NUM_REGISTERS))
    ALIASES = dict(_ALIASES)


def register_name(index):
    """Return the canonical name (``r0`` .. ``r15``) for a register index."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError("register index out of range: %r" % (index,))
    if index == SP:
        return "sp"
    if index == LR:
        return "lr"
    if index == PC:
        return "pc"
    return "r%d" % index


def register_number(name):
    """Parse a register name (``r3``, ``sp``, ``pc`` ...) into its index."""
    token = name.strip().lower()
    if token in _ALIASES:
        return _ALIASES[token]
    if token.startswith("r"):
        try:
            index = int(token[1:])
        except ValueError:
            raise ValueError("not a register name: %r" % (name,)) from None
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ValueError("not a register name: %r" % (name,))
