"""Functional (instruction-level) execution semantics.

These semantics are the single source of truth for what each instruction
*does*; the functional instruction-set simulator executes them directly and
the cycle-accurate models reuse the same ALU helpers so that both agree on
architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.alu import alu_operate, apply_shift, multiply
from repro.isa.conditions import condition_passes
from repro.isa.flags import MASK32, ConditionFlags, to_unsigned
from repro.isa.instructions import (
    Branch,
    DataOpcode,
    DataProcessing,
    LoadStore,
    LoadStoreMultiple,
    Multiply,
    System,
    SystemOp,
)

#: Logical data-processing opcodes write the barrel-shifter carry into C and
#: leave V untouched when updating flags.
_LOGICAL_OPCODES = frozenset(
    (
        DataOpcode.AND,
        DataOpcode.EOR,
        DataOpcode.TST,
        DataOpcode.TEQ,
        DataOpcode.ORR,
        DataOpcode.MOV,
        DataOpcode.BIC,
        DataOpcode.MVN,
    )
)
from repro.isa.registers import LR, NUM_REGISTERS, PC


@dataclass
class CPUState:
    """Architectural state: sixteen registers plus the condition flags."""

    regs: list = field(default_factory=lambda: [0] * NUM_REGISTERS)
    flags: ConditionFlags = field(default_factory=ConditionFlags)
    halted: bool = False

    def copy(self):
        return CPUState(regs=list(self.regs), flags=self.flags.copy(), halted=self.halted)

    def read(self, index):
        return self.regs[index] & MASK32

    def write(self, index, value):
        self.regs[index] = value & MASK32

    @property
    def pc(self):
        return self.regs[PC] & MASK32

    @pc.setter
    def pc(self, value):
        self.regs[PC] = value & MASK32


@dataclass
class ExecutionResult:
    """Side information produced by executing one instruction.

    The cycle-accurate simulators use this to account for branches and memory
    traffic without re-deriving them from the instruction fields.
    """

    next_pc: int = 0
    executed: bool = True
    branch_taken: bool = False
    memory_reads: tuple = ()
    memory_writes: tuple = ()
    syscall: int = None
    halted: bool = False


def _operand2_value(instr, state):
    """Value and shifter carry of a data-processing second operand."""
    op2 = instr.operand2
    if op2.is_immediate:
        value = op2.immediate_value
        carry = state.flags.c if op2.rotate == 0 else bool(value >> 31)
        return value, carry
    base = state.read(op2.rm)
    return apply_shift(base, op2.shift_type, op2.shift_amount, state.flags.c)


def _execute_data_processing(instr, state):
    operand2, shifter_carry = _operand2_value(instr, state)
    operand1 = state.read(instr.rn) if instr.opcode.uses_rn else 0
    result, n, z, c, v, writes = alu_operate(instr.opcode, operand1, operand2, state.flags.c)
    is_logical = instr.opcode in _LOGICAL_OPCODES
    if instr.set_flags or not writes:
        state.flags.n = n
        state.flags.z = z
        state.flags.c = shifter_carry if is_logical else c
        if not is_logical:
            state.flags.v = v
    branch_taken = False
    if writes:
        state.write(instr.rd, result)
        if instr.rd == PC:
            branch_taken = True
    return result, branch_taken


def _execute_multiply(instr, state):
    accumulator = state.read(instr.rn) if instr.accumulate else 0
    result = multiply(state.read(instr.rm), state.read(instr.rs), accumulator)
    state.write(instr.rd, result)
    if instr.set_flags:
        state.flags.set_nz(result)
    return result


def _load_store_address(instr, state):
    if instr.has_register_offset:
        offset, _ = apply_shift(
            state.read(instr.offset_register),
            instr.shift_type,
            instr.shift_amount,
            state.flags.c,
        )
    else:
        offset = instr.offset_immediate or 0
    base = state.read(instr.rn)
    signed_offset = offset if instr.up else -offset
    address = to_unsigned(base + signed_offset)
    effective = address if instr.pre_index else base
    return effective, address


def _execute_load_store(instr, state, memory):
    effective, updated_base = _load_store_address(instr, state)
    reads, writes = (), ()
    if instr.load:
        value = memory.read_byte(effective) if instr.byte else memory.read_word(effective)
        state.write(instr.rd, value)
        reads = (effective,)
    else:
        value = state.read(instr.rd)
        if instr.byte:
            memory.write_byte(effective, value & 0xFF)
        else:
            memory.write_word(effective, value)
        writes = (effective,)
    if instr.writeback or not instr.pre_index:
        state.write(instr.rn, updated_base)
    branch_taken = instr.load and instr.rd == PC
    return reads, writes, branch_taken


def _execute_load_store_multiple(instr, state, memory):
    count = len(instr.register_list)
    base = state.read(instr.rn)
    if instr.up:
        start = base + (4 if instr.before else 0)
        new_base = base + 4 * count
    else:
        start = base - 4 * count + (0 if instr.before else 4)
        new_base = base - 4 * count
    reads, writes = [], []
    address = start
    for reg in sorted(instr.register_list):
        if instr.load:
            state.write(reg, memory.read_word(address))
            reads.append(address)
        else:
            memory.write_word(address, state.read(reg))
            writes.append(address)
        address += 4
    if instr.writeback:
        state.write(instr.rn, new_base)
    branch_taken = instr.load and PC in instr.register_list
    return tuple(reads), tuple(writes), branch_taken


def execute(instr, state, memory, address=None):
    """Execute one instruction against ``state`` and ``memory``.

    ``address`` is the address the instruction was fetched from; it defaults
    to ``state.pc``.  Returns an :class:`ExecutionResult`; ``state.pc`` is
    updated to the address of the next instruction.
    """
    if address is None:
        address = state.pc
    result = ExecutionResult(next_pc=to_unsigned(address + 4))
    # During execution the PC reads as the fetch address + 8 (ARM convention).
    state.regs[PC] = to_unsigned(address + 8)

    if not condition_passes(instr.cond, state.flags):
        result.executed = False
        state.pc = result.next_pc
        return result

    branch_taken = False
    if isinstance(instr, DataProcessing):
        _, branch_taken = _execute_data_processing(instr, state)
        if branch_taken:
            result.next_pc = state.pc
    elif isinstance(instr, Multiply):
        _execute_multiply(instr, state)
    elif isinstance(instr, LoadStore):
        reads, writes, branch_taken = _execute_load_store(instr, state, memory)
        result.memory_reads, result.memory_writes = reads, writes
        if branch_taken:
            result.next_pc = state.pc
    elif isinstance(instr, LoadStoreMultiple):
        reads, writes, branch_taken = _execute_load_store_multiple(instr, state, memory)
        result.memory_reads, result.memory_writes = reads, writes
        if branch_taken:
            result.next_pc = state.pc
    elif isinstance(instr, Branch):
        if instr.link:
            state.write(LR, address + 4)
        result.next_pc = instr.target(address)
        branch_taken = True
    elif isinstance(instr, System):
        if instr.op is SystemOp.HALT:
            state.halted = True
            result.halted = True
        elif instr.op is SystemOp.SWI:
            result.syscall = instr.imm
    else:
        raise TypeError("cannot execute object of type %s" % type(instr).__name__)

    result.branch_taken = branch_taken
    state.pc = result.next_pc
    return result
