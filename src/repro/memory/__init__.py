"""Memory-system substrate: flat memory, caches, hierarchies and predictors.

RCPN transitions "directly reference non-pipeline units such as branch
predictor, memory, cache" (paper Section 3); this package provides those
units.  Every component reports an access latency in cycles so that the
cycle-accurate models can turn data-dependent delays into token delays.
"""

from repro.memory.main_memory import MainMemory
from repro.memory.cache import Cache, CacheConfig, CacheStatistics
from repro.memory.memory_system import MemorySystem, MemorySystemConfig
from repro.memory.branch_predictor import (
    BranchPredictor,
    BranchTargetBuffer,
    StaticNotTakenPredictor,
    StaticTakenPredictor,
    BimodalPredictor,
)

__all__ = [
    "MainMemory",
    "Cache",
    "CacheConfig",
    "CacheStatistics",
    "MemorySystem",
    "MemorySystemConfig",
    "BranchPredictor",
    "BranchTargetBuffer",
    "StaticNotTakenPredictor",
    "StaticTakenPredictor",
    "BimodalPredictor",
]
