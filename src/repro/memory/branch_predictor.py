"""Branch predictors used by the processor models.

StrongARM predicts branches statically (not-taken); XScale adds a small
bimodal branch target buffer.  Both are exposed through the same interface
so RCPN transitions can reference either.
"""

from __future__ import annotations


class BranchPredictor:
    """Interface: predict a branch at ``address`` and learn the outcome."""

    def predict(self, address):
        """Return True when the branch is predicted taken."""
        raise NotImplementedError

    def update(self, address, taken):
        """Record the resolved outcome of the branch at ``address``."""
        raise NotImplementedError

    @property
    def statistics(self):
        return {"predictions": self.predictions, "mispredictions": self.mispredictions}

    def reset(self):
        """Forget learned state and statistics (run-to-run reproducibility)."""
        self.predictions = 0
        self.mispredictions = 0

    def record(self, address, taken):
        """Predict, learn, and return True if the prediction was correct."""
        prediction = self.predict(address)
        self.update(address, taken)
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        return correct


class StaticNotTakenPredictor(BranchPredictor):
    """Always predicts not-taken (the StrongARM policy)."""

    def __init__(self):
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, address):
        return False

    def update(self, address, taken):
        pass


class StaticTakenPredictor(BranchPredictor):
    """Always predicts taken (useful as an ablation)."""

    def __init__(self):
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, address):
        return True

    def update(self, address, taken):
        pass


class BranchTargetBuffer:
    """A branch target buffer with two-bit direction counters.

    This approximates the XScale BTB.  Entries are tagged with the full
    branch address (so instruction aliasing can never redirect a non-branch),
    hold the branch target and a two-bit saturating direction counter.
    """

    def __init__(self, entries=128, initial_counter=2):
        self.capacity = entries
        self.initial_counter = initial_counter
        self.entries = {}
        self.lookups = 0
        self.hits = 0
        self.predictions = 0
        self.mispredictions = 0

    def reset(self):
        """Forget learned targets, counters and statistics."""
        self.entries = {}
        self.lookups = 0
        self.hits = 0
        self.predictions = 0
        self.mispredictions = 0

    def lookup(self, address):
        """Return ``(hit, predicted_taken, predicted_target)`` for ``address``."""
        self.lookups += 1
        entry = self.entries.get(address)
        if entry is None:
            return False, False, None
        self.hits += 1
        target, counter = entry
        return True, counter >= 2, target

    def update(self, address, taken, target):
        """Record the resolved direction and target of the branch at ``address``."""
        entry = self.entries.get(address)
        if entry is None:
            if len(self.entries) >= self.capacity:
                # Simple FIFO-ish replacement: drop an arbitrary (oldest) entry.
                self.entries.pop(next(iter(self.entries)))
            counter = self.initial_counter
        else:
            counter = entry[1]
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self.entries[address] = (target, counter)

    def record_outcome(self, predicted_taken, taken):
        """Track prediction accuracy statistics."""
        self.predictions += 1
        if predicted_taken != taken:
            self.mispredictions += 1

    @property
    def statistics(self):
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }


class BimodalPredictor(BranchPredictor):
    """Two-bit saturating counters indexed by the branch address.

    This approximates the XScale branch target buffer's direction predictor
    (128 entries of 2-bit counters by default).
    """

    def __init__(self, entries=128, initial=1):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.initial = initial
        self.counters = [initial] * entries
        self.predictions = 0
        self.mispredictions = 0

    def reset(self):
        self.counters = [self.initial] * self.entries
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, address):
        return (address >> 2) & (self.entries - 1)

    def predict(self, address):
        return self.counters[self._index(address)] >= 2

    def update(self, address, taken):
        index = self._index(address)
        counter = self.counters[index]
        if taken:
            self.counters[index] = min(3, counter + 1)
        else:
            self.counters[index] = max(0, counter - 1)
