"""Set-associative write-back cache model with LRU replacement.

Only timing and hit/miss behaviour are modeled in the cache itself; data
always lives in the backing store.  This mirrors how trace-driven
cycle-accurate simulators (including SimpleScalar's ``sim-cache``-derived
models) treat caches: the simulator needs latencies and statistics, while
correctness of data comes from the functional memory image.

Caches chain: ``backing`` may be another :class:`Cache` (an L2) or the
:class:`~repro.memory.main_memory.MainMemory` at the bottom.  A miss charges
the backing store's access latency on top of the level's own cost, and the
eviction of a *dirty* line writes the victim back through the same chain —
so an L1 writeback lands in the L2 (allocating or dirtying the victim's
line there) and only an L2 writeback reaches memory.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str = "L1"
    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    associativity: int = 32
    hit_latency: int = 1
    miss_penalty: int = 30

    def __post_init__(self):
        for problem in cache_geometry_problems(
            size_bytes=self.size_bytes,
            line_bytes=self.line_bytes,
            associativity=self.associativity,
            hit_latency=self.hit_latency,
            miss_penalty=self.miss_penalty,
        ):
            raise ValueError("cache %r: %s" % (self.name, problem))

    @property
    def num_sets(self):
        return self.size_bytes // (self.line_bytes * self.associativity)


def cache_geometry_problems(size_bytes, line_bytes, associativity, hit_latency, miss_penalty):
    """Every inconsistency in one cache level's geometry/timing, as strings.

    Shared by :class:`CacheConfig` (which raises on the first problem) and
    the declarative :class:`~repro.describe.spec.CacheLevelSpec` validation
    (which collects them all), so both layers reject exactly the same
    configurations.  The checks are ordered so that a zero or negative
    associativity is reported as such instead of surfacing later as a
    ``ZeroDivisionError`` from the set-count division.
    """
    problems = []
    if not isinstance(associativity, int) or associativity < 1:
        problems.append("associativity %r must be a positive integer" % (associativity,))
    if not isinstance(line_bytes, int) or line_bytes <= 0 or line_bytes & (line_bytes - 1):
        problems.append("line size %r must be a positive power of two" % (line_bytes,))
    if not isinstance(size_bytes, int) or size_bytes <= 0:
        problems.append("cache size %r must be a positive integer" % (size_bytes,))
    if not isinstance(hit_latency, int) or hit_latency < 0:
        problems.append("hit latency %r must be a non-negative integer" % (hit_latency,))
    if not isinstance(miss_penalty, int) or miss_penalty < 0:
        problems.append("miss penalty %r must be a non-negative integer" % (miss_penalty,))
    if not problems and size_bytes % (line_bytes * associativity):
        problems.append(
            "cache size %d is not a multiple of line size * associativity (%d * %d)"
            % (size_bytes, line_bytes, associativity)
        )
    return problems


@dataclass
class CacheStatistics:
    """Counters accumulated by a cache during simulation.

    ``miss_cycles`` is the total latency charged by miss accesses —
    fill-from-backing plus any dirty-victim writeback, plus the level's own
    cost — so the *price* of a miss stream is directly comparable across
    hierarchies (an L2-backed L1 must show fewer miss cycles than the same
    miss stream served memory-direct).
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    miss_cycles: int = 0

    @property
    def hit_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def as_dict(self):
        """Counters plus derived rates as JSON-compatible plain data."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "miss_cycles": self.miss_cycles,
            "hit_rate": self.hit_rate,
            "miss_rate": self.miss_rate,
        }


class _CacheSet:
    """One set: an ordered mapping from tag to dirty bit.

    Recency order is the dict's insertion order: ``touch``/``mark_dirty``
    re-append a tag, so the *front* is the least-recently-used line and
    ``insert`` evicts it (``next(iter(...))``).
    """

    __slots__ = ("lines",)

    def __init__(self):
        self.lines = {}

    def lookup(self, tag):
        return tag in self.lines

    def touch(self, tag):
        dirty = self.lines.pop(tag)
        self.lines[tag] = dirty

    def insert(self, tag, associativity, dirty=False):
        """Insert a tag; returns the evicted (tag, dirty) pair or ``None``."""
        evicted = None
        if len(self.lines) >= associativity:
            victim_tag = next(iter(self.lines))
            evicted = (victim_tag, self.lines.pop(victim_tag))
        self.lines[tag] = dirty
        return evicted

    def mark_dirty(self, tag):
        self.lines.pop(tag)
        self.lines[tag] = True


class Cache:
    """A single cache level in front of a backing store.

    ``backing`` must expose ``access_latency(address, is_write=False)``
    (another :class:`Cache` or a :class:`~repro.memory.main_memory.MainMemory`);
    the cache adds its own hit latency and charges the backing latency (as
    ``miss_penalty`` plus the backing store's own latency) on misses.  A
    miss always fills by *reading* the backing store, whatever the original
    access was (write-allocate); evicting a dirty victim additionally
    writes the victim line back into the backing store and charges that
    access too (write-back charging through levels).
    """

    def __init__(self, config, backing=None):
        self.config = config
        self.backing = backing
        self.stats = CacheStatistics()
        self._sets = [_CacheSet() for _ in range(config.num_sets)]
        #: Optional trace callback ``(level, kind, address, latency)`` with
        #: kind in {"hit", "miss", "fill", "writeback"}.  Observation only —
        #: counters and latencies are identical with or without it.
        self.trace = None

    def reset(self):
        """Restore the cold state: statistics cleared and every line invalid."""
        self.stats = CacheStatistics()
        self._sets = [_CacheSet() for _ in range(self.config.num_sets)]

    def reset_statistics(self):
        """Clear the counters only; resident lines stay warm."""
        self.stats = CacheStatistics()

    def _locate(self, address):
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return self._sets[index], tag, index

    def access(self, address, is_write=False):
        """Perform one access; returns the latency in cycles."""
        cache_set, tag, index = self._locate(address)
        trace = self.trace
        self.stats.accesses += 1
        if cache_set.lookup(tag):
            self.stats.hits += 1
            if is_write:
                cache_set.mark_dirty(tag)
            else:
                cache_set.touch(tag)
            if trace is not None:
                trace(self.config.name, "hit", address, self.config.hit_latency)
            return self.config.hit_latency

        self.stats.misses += 1
        latency = self.config.hit_latency + self.config.miss_penalty
        if trace is not None:
            trace(self.config.name, "miss", address, latency)
        if self.backing is not None:
            latency += self.backing.access_latency(address)
        evicted = cache_set.insert(tag, self.config.associativity, dirty=is_write)
        if evicted is not None:
            self.stats.evictions += 1
            victim_tag, victim_dirty = evicted
            if victim_dirty:
                self.stats.writebacks += 1
                victim_address = (
                    victim_tag * self.config.num_sets + index
                ) * self.config.line_bytes
                if trace is not None:
                    trace(self.config.name, "writeback", victim_address, None)
                if self.backing is not None:
                    latency += self.backing.access_latency(victim_address, is_write=True)
        self.stats.miss_cycles += latency
        if trace is not None:
            trace(self.config.name, "fill", address, latency)
        return latency

    def access_latency(self, address, is_write=False):
        """Alias of :meth:`access`, matching the backing-store protocol."""
        return self.access(address, is_write)

    def contains(self, address):
        """True if the line holding ``address`` is currently resident."""
        cache_set, tag, _index = self._locate(address)
        return cache_set.lookup(tag)
