"""Set-associative write-back cache model with LRU replacement.

Only timing and hit/miss behaviour are modeled in the cache itself; data
always lives in the backing store.  This mirrors how trace-driven
cycle-accurate simulators (including SimpleScalar's ``sim-cache``-derived
models) treat caches: the simulator needs latencies and statistics, while
correctness of data comes from the functional memory image.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str = "L1"
    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    associativity: int = 32
    hit_latency: int = 1
    miss_penalty: int = 30

    def __post_init__(self):
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must be a multiple of line size * associativity")

    @property
    def num_sets(self):
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStatistics:
    """Counters accumulated by a cache during simulation."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class _CacheSet:
    """One set: an ordered mapping from tag to dirty bit (front = MRU)."""

    __slots__ = ("lines",)

    def __init__(self):
        self.lines = {}

    def lookup(self, tag):
        return tag in self.lines

    def touch(self, tag):
        dirty = self.lines.pop(tag)
        self.lines[tag] = dirty

    def insert(self, tag, associativity, dirty=False):
        """Insert a tag; returns the evicted (tag, dirty) pair or ``None``."""
        evicted = None
        if len(self.lines) >= associativity:
            victim_tag = next(iter(self.lines))
            evicted = (victim_tag, self.lines.pop(victim_tag))
        self.lines[tag] = dirty
        return evicted

    def mark_dirty(self, tag):
        self.lines.pop(tag)
        self.lines[tag] = True


class Cache:
    """A single cache level in front of a backing store.

    ``backing`` must expose ``access_latency(address)``; the cache adds its
    own hit latency and charges the backing latency (as ``miss_penalty`` plus
    the backing store's own latency) on misses.
    """

    def __init__(self, config, backing=None):
        self.config = config
        self.backing = backing
        self.stats = CacheStatistics()
        self._sets = [_CacheSet() for _ in range(config.num_sets)]

    def reset(self):
        self.stats = CacheStatistics()
        self._sets = [_CacheSet() for _ in range(self.config.num_sets)]

    def _locate(self, address):
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return self._sets[index], tag

    def access(self, address, is_write=False):
        """Perform one access; returns the latency in cycles."""
        cache_set, tag = self._locate(address)
        self.stats.accesses += 1
        if cache_set.lookup(tag):
            self.stats.hits += 1
            if is_write:
                cache_set.mark_dirty(tag)
            else:
                cache_set.touch(tag)
            return self.config.hit_latency

        self.stats.misses += 1
        latency = self.config.hit_latency + self.config.miss_penalty
        if self.backing is not None:
            latency += self.backing.access_latency(address)
        evicted = cache_set.insert(tag, self.config.associativity, dirty=is_write)
        if evicted is not None:
            self.stats.evictions += 1
            if evicted[1]:
                self.stats.writebacks += 1
        return latency

    def access_latency(self, address, is_write=False):
        """Alias of :meth:`access`, matching the backing-store protocol."""
        return self.access(address, is_write)

    def contains(self, address):
        """True if the line holding ``address`` is currently resident."""
        cache_set, tag = self._locate(address)
        return cache_set.lookup(tag)
