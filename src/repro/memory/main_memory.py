"""Flat byte-addressable main memory with a fixed access latency."""

from __future__ import annotations


class MainMemory:
    """Sparse 32-bit address-space memory.

    Words are stored little-endian in a dictionary keyed by word-aligned
    address, so large sparse address spaces (code at one address, stack near
    the top of memory) cost no more than the words actually touched.
    """

    def __init__(self, latency=10, default_value=0):
        self.latency = latency
        self.default_value = default_value & 0xFFFFFFFF
        self._words = {}
        self.read_count = 0
        self.write_count = 0

    def reset_statistics(self):
        self.read_count = 0
        self.write_count = 0

    def _aligned(self, address):
        return address & 0xFFFFFFFC

    def read_word(self, address):
        """Read the 32-bit word containing ``address`` (alignment is forced)."""
        self.read_count += 1
        return self._words.get(self._aligned(address), self.default_value)

    def write_word(self, address, value):
        """Write a 32-bit word at the aligned ``address``."""
        self.write_count += 1
        self._words[self._aligned(address)] = value & 0xFFFFFFFF

    def read_byte(self, address):
        word = self._words.get(self._aligned(address), self.default_value)
        shift = 8 * (address & 3)
        return (word >> shift) & 0xFF

    def write_byte(self, address, value):
        aligned = self._aligned(address)
        shift = 8 * (address & 3)
        word = self._words.get(aligned, self.default_value)
        word &= ~(0xFF << shift) & 0xFFFFFFFF
        word |= (value & 0xFF) << shift
        self.write_count += 1
        self._words[aligned] = word

    def load_program(self, program):
        """Load an assembled :class:`~repro.isa.program.Program` image."""
        program.load_into(self)

    def access_latency(self, address, is_write=False):
        """Latency in cycles of an access to ``address``.

        ``is_write`` is accepted for protocol compatibility with
        :class:`~repro.memory.cache.Cache` (cache writebacks propagate it);
        the flat memory charges reads and writes identically.
        """
        return self.latency

    def touched_words(self):
        """Number of distinct words ever written (useful in tests)."""
        return len(self._words)
