"""Memory hierarchy combining main memory with first-level caches and an
optional shared second level.

This is the non-pipeline unit that RCPN transitions reference to obtain
data-dependent latencies (paper Section 3.2, transition ``M`` in the
LoadStore sub-net: ``t.delay = mem.delay(addr)``).  The hierarchy is
usually *elaborated* from the declarative
:class:`~repro.describe.spec.MemorySpec` of a pipeline description; the
:class:`MemorySystemConfig` here is the runtime mirror of that spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import Cache, CacheConfig
from repro.memory.main_memory import MainMemory


@dataclass(frozen=True)
class MemorySystemConfig:
    """Configuration of a cache hierarchy in front of a fixed-latency memory.

    The defaults follow the XScale/StrongARM organisation: 32 KB 32-way
    split instruction and data caches with 32-byte lines in front of a
    fixed-latency memory, no second level.  The caches' own
    ``miss_penalty`` is zero here because the full miss cost is charged as
    the backing store's latency.

    * ``l2`` — an optional shared second-level cache between the L1s and
      memory (L1 misses fill from it, L1 writebacks land in it);
    * ``unified_l1`` — instruction and data share one L1 cache; the
      ``icache`` and ``dcache`` configurations must then be identical
      (one :class:`Cache` instance serves both sides).
    """

    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(name="I$", miss_penalty=0)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(name="D$", miss_penalty=0)
    )
    memory_latency: int = 30
    perfect_caches: bool = False
    l2: CacheConfig = None
    unified_l1: bool = False

    def __post_init__(self):
        if not isinstance(self.memory_latency, int) or self.memory_latency < 0:
            raise ValueError(
                "memory latency %r must be a non-negative integer" % (self.memory_latency,)
            )
        if self.l2 is not None and not isinstance(self.l2, CacheConfig):
            raise ValueError("l2 must be a CacheConfig or None, got %r" % (self.l2,))
        if self.unified_l1 and self.icache != self.dcache:
            raise ValueError(
                "a unified L1 needs identical icache/dcache configurations "
                "(got %r vs %r)" % (self.icache, self.dcache)
            )


class MemorySystem:
    """Functional storage plus timing model.

    * ``read_word`` / ``write_word`` / ``read_byte`` / ``write_byte`` are the
      functional interface used for architectural state (always correct, no
      timing involved);
    * ``instruction_delay(address)`` and ``data_delay(address, is_write)``
      return access latencies in cycles and update cache statistics; the
      processor models use these to set token delays.

    With an L2 configured, the first levels back onto it and it backs onto
    memory, so L1 misses, L1 writebacks and L2 writebacks are all charged
    through the chain (see :class:`~repro.memory.cache.Cache`).
    """

    def __init__(self, config=None):
        self.config = config or MemorySystemConfig()
        self.memory = MainMemory(latency=self.config.memory_latency)
        self.trace = None
        self._build_caches()

    def attach_trace(self, callback):
        """Attach a ``(level, kind, address, latency)`` trace callback.

        The attachment survives :meth:`reset` (which rebuilds the cache
        objects); pass ``None`` to detach.  Tracing is observation only —
        statistics and latencies are identical with or without it.
        """
        self.trace = callback
        self._attach_trace_to_caches()

    def _attach_trace_to_caches(self):
        for cache in (self.icache, self.dcache, self.l2):
            if cache is not None:
                cache.trace = self.trace

    def _build_caches(self):
        config = self.config
        # Perfect caches never miss, so nothing would ever consult an L2;
        # not building it keeps statistics truthful (no all-zero L2 row in
        # reports for a cache that cannot be reached).
        build_l2 = config.l2 is not None and not config.perfect_caches
        self.l2 = Cache(config.l2, backing=self.memory) if build_l2 else None
        backing = self.l2 if self.l2 is not None else self.memory
        if config.unified_l1:
            unified = Cache(config.dcache, backing=backing)
            self.icache = self.dcache = unified
        else:
            self.icache = Cache(config.icache, backing=backing)
            self.dcache = Cache(config.dcache, backing=backing)
        if self.trace is not None:
            self._attach_trace_to_caches()

    # -- functional interface -------------------------------------------------
    def read_word(self, address):
        return self.memory.read_word(address)

    def write_word(self, address, value):
        self.memory.write_word(address, value)

    def read_byte(self, address):
        return self.memory.read_byte(address)

    def write_byte(self, address, value):
        self.memory.write_byte(address, value)

    def load_program(self, program):
        self.memory.load_program(program)

    # -- timing interface -----------------------------------------------------
    def _perfect_access(self, cache, address):
        # A perfect cache still *sees* the access: counting it as a hit
        # keeps reported access counts and hit rates truthful instead of
        # dividing campaign reports into misleading 0.0 rates.
        cache.stats.accesses += 1
        cache.stats.hits += 1
        if cache.trace is not None:
            cache.trace(cache.config.name, "hit", address, cache.config.hit_latency)
        return cache.config.hit_latency

    def instruction_delay(self, address):
        """Latency of an instruction fetch at ``address``."""
        if self.config.perfect_caches:
            return self._perfect_access(self.icache, address)
        return self.icache.access(address, is_write=False)

    def data_delay(self, address, is_write=False):
        """Latency of a data access at ``address``."""
        if self.config.perfect_caches:
            return self._perfect_access(self.dcache, address)
        return self.dcache.access(address, is_write=is_write)

    # Paper-style alias used in the LoadStore sub-net example (Figure 5).
    def delay(self, address, is_write=False):
        return self.data_delay(address, is_write)

    def reset(self):
        """Restore the cold state: statistics cleared *and* every line invalid.

        This is what :meth:`~repro.describe.substrate.Processor.reset` needs
        for run-to-run bit-identity — a reused processor must not start its
        second run with a warm cache.
        """
        self._build_caches()
        self.memory.reset_statistics()

    def reset_statistics(self):
        """Clear the counters only; cache line state stays warm.

        Use :meth:`reset` when re-running a workload for reproducible
        statistics — warm lines make the second run faster than the first.
        """
        self.icache.reset_statistics()
        self.dcache.reset_statistics()
        if self.l2 is not None:
            self.l2.reset_statistics()
        self.memory.reset_statistics()

    def statistics(self):
        """Return a dictionary of cache statistics for reporting.

        With a unified L1 the ``icache`` and ``dcache`` entries are the
        *same* :class:`~repro.memory.cache.CacheStatistics` object (one
        cache serves both sides); ``l2`` is present only when configured.
        """
        stats = {
            "icache": self.icache.stats,
            "dcache": self.dcache.stats,
            "memory_reads": self.memory.read_count,
            "memory_writes": self.memory.write_count,
        }
        if self.l2 is not None:
            stats["l2"] = self.l2.stats
        return stats

    def statistics_summary(self):
        """Cache statistics as JSON-compatible plain data (campaign results)."""
        summary = {
            "icache": self.icache.stats.as_dict(),
            "dcache": self.dcache.stats.as_dict(),
            "l2": self.l2.stats.as_dict() if self.l2 is not None else None,
            "memory_reads": self.memory.read_count,
            "memory_writes": self.memory.write_count,
            "unified_l1": self.config.unified_l1,
            "perfect_caches": self.config.perfect_caches,
        }
        return summary

    def describe_hierarchy(self):
        """The hierarchy's *geometry* as plain data (generation reports).

        Unlike :meth:`statistics` this is known before any simulation runs:
        one entry per level, top to bottom, ending with the flat memory.
        """

        def level(cache):
            config = cache.config
            return {
                "name": config.name,
                "size_bytes": config.size_bytes,
                "line_bytes": config.line_bytes,
                "associativity": config.associativity,
                "hit_latency": config.hit_latency,
                "miss_penalty": config.miss_penalty,
            }

        levels = []
        if self.config.unified_l1:
            levels.append(dict(level(self.icache), role="l1-unified"))
        else:
            levels.append(dict(level(self.icache), role="l1-instruction"))
            levels.append(dict(level(self.dcache), role="l1-data"))
        if self.l2 is not None:
            levels.append(dict(level(self.l2), role="l2"))
        levels.append({"name": "memory", "role": "memory", "latency": self.config.memory_latency})
        if self.config.perfect_caches:
            for entry in levels[:-1]:
                entry["perfect"] = True
        return levels
