"""Memory hierarchy combining main memory with split I/D first-level caches.

This is the non-pipeline unit that RCPN transitions reference to obtain
data-dependent latencies (paper Section 3.2, transition ``M`` in the
LoadStore sub-net: ``t.delay = mem.delay(addr)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.cache import Cache, CacheConfig
from repro.memory.main_memory import MainMemory


@dataclass(frozen=True)
class MemorySystemConfig:
    """Configuration of a split-cache memory hierarchy.

    The defaults follow the XScale/StrongARM organisation: 32 KB 32-way
    instruction and data caches with 32-byte lines in front of a
    fixed-latency memory.  The caches' own ``miss_penalty`` is zero here
    because the full miss cost is charged as the backing memory latency.
    """

    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(name="I$", miss_penalty=0)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(name="D$", miss_penalty=0)
    )
    memory_latency: int = 30
    perfect_caches: bool = False


class MemorySystem:
    """Functional storage plus timing model.

    * ``read_word`` / ``write_word`` / ``read_byte`` / ``write_byte`` are the
      functional interface used for architectural state (always correct, no
      timing involved);
    * ``instruction_delay(address)`` and ``data_delay(address, is_write)``
      return access latencies in cycles and update cache statistics; the
      processor models use these to set token delays.
    """

    def __init__(self, config=None):
        self.config = config or MemorySystemConfig()
        self.memory = MainMemory(latency=self.config.memory_latency)
        self.icache = Cache(self.config.icache, backing=self.memory)
        self.dcache = Cache(self.config.dcache, backing=self.memory)

    # -- functional interface -------------------------------------------------
    def read_word(self, address):
        return self.memory.read_word(address)

    def write_word(self, address, value):
        self.memory.write_word(address, value)

    def read_byte(self, address):
        return self.memory.read_byte(address)

    def write_byte(self, address, value):
        self.memory.write_byte(address, value)

    def load_program(self, program):
        self.memory.load_program(program)

    # -- timing interface -----------------------------------------------------
    def instruction_delay(self, address):
        """Latency of an instruction fetch at ``address``."""
        if self.config.perfect_caches:
            return self.config.icache.hit_latency
        return self.icache.access(address, is_write=False)

    def data_delay(self, address, is_write=False):
        """Latency of a data access at ``address``."""
        if self.config.perfect_caches:
            return self.config.dcache.hit_latency
        return self.dcache.access(address, is_write=is_write)

    # Paper-style alias used in the LoadStore sub-net example (Figure 5).
    def delay(self, address, is_write=False):
        return self.data_delay(address, is_write)

    def reset_statistics(self):
        self.icache.reset()
        self.dcache.reset()
        self.memory.reset_statistics()

    def statistics(self):
        """Return a dictionary of cache statistics for reporting."""
        return {
            "icache": self.icache.stats,
            "dcache": self.dcache.stats,
            "memory_reads": self.memory.read_count,
            "memory_writes": self.memory.write_count,
        }
