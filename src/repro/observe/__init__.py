"""Observability layer: cycle-level traces, instruction lifetimes, metrics.

``repro.observe`` turns the RCPN engine's implicit token flow into
explicit, inspectable artifacts:

* :class:`TraceConfig` / :class:`Tracer` — a cycle-level event tracer
  (transition firings, stalls, squashes with provenance, token creation,
  cache hit/miss/fill/writeback) attached via ``EngineOptions(trace=...)``
  and shared by all four backends.  Exports JSONL and Chrome
  ``trace_event`` JSON (Perfetto / ``chrome://tracing``).
* :func:`build_lifetimes` / :func:`render_pipeline` — fold a trace into
  per-instruction fetch→retire records and draw them as a Konata-style
  text pipeline diagram (``python -m repro.observe view``).
* :class:`MetricsRegistry` — counters/gauges/histograms used by the
  campaign runner for per-phase timing, store hit rates and worker
  utilisation (``python -m repro.campaign report --metrics``).
"""

from repro.observe.lifetime import (
    InstructionLifetime,
    StageVisit,
    build_lifetimes,
    render_pipeline,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_cumulative,
    read_metrics_json,
    render_metrics,
    snapshot_value,
    write_metrics_json,
)
from repro.observe.trace import (
    TRACE_CATEGORIES,
    TraceConfig,
    Tracer,
    build_tracer,
    chrome_trace,
    event_dict,
    read_trace,
    validate_chrome_trace,
)

__all__ = [
    "TRACE_CATEGORIES",
    "TraceConfig",
    "Tracer",
    "build_tracer",
    "chrome_trace",
    "event_dict",
    "read_trace",
    "validate_chrome_trace",
    "InstructionLifetime",
    "StageVisit",
    "build_lifetimes",
    "render_pipeline",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_cumulative",
    "read_metrics_json",
    "render_metrics",
    "snapshot_value",
    "write_metrics_json",
]
