"""Entry point for ``python -m repro.observe``."""

import sys

from repro.observe.cli import main

if __name__ == "__main__":
    sys.exit(main())
