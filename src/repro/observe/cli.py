"""Command-line interface: ``python -m repro.observe trace|view|validate``.

* ``trace`` runs one (model, workload) simulation with tracing enabled and
  exports the event stream — JSONL (``--out``) and/or Chrome
  ``trace_event`` JSON (``--chrome``, opens directly in Perfetto or
  ``chrome://tracing``).
* ``view`` renders a JSONL trace as a Konata-style text pipeline diagram
  (instruction lifetimes: one row per instruction, stage letters per
  cycle).
* ``validate`` checks a Chrome-trace JSON file's ``trace_event``
  structure; non-zero exit on problems (the CI trace-smoke gate).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.observe.lifetime import build_lifetimes, render_pipeline
from repro.observe.trace import (
    TRACE_CATEGORIES,
    TraceConfig,
    read_trace,
    validate_chrome_trace,
)


def _command_trace(args, out):
    from repro.core.engine import ENGINE_BACKENDS, EngineOptions
    from repro.processors.registry import build_processor
    from repro.workloads.registry import get_workload

    if args.backend not in ENGINE_BACKENDS:
        out.write(
            "error: unknown backend %r; expected one of %s\n"
            % (args.backend, ", ".join(ENGINE_BACKENDS))
        )
        return 1
    categories = tuple(
        part.strip() for part in args.categories.split(",") if part.strip()
    )
    config = TraceConfig(capacity=args.capacity, categories=categories)
    options = EngineOptions(backend=args.backend, trace=config)
    processor = build_processor(args.model, engine_options=options)
    workload = get_workload(args.workload, scale=args.scale)
    processor.load_program(workload.program)
    processor.run(max_cycles=args.max_cycles)

    tracer = processor.tracer
    stats = processor.stats
    out.write(
        "%s/%s@%d [%s]: %d cycles, %d instructions, %d events recorded"
        " (%d retained, %d dropped)\n"
        % (
            args.model,
            args.workload,
            args.scale,
            args.backend,
            stats.cycles,
            stats.instructions,
            tracer.recorded,
            len(tracer.events),
            tracer.dropped,
        )
    )
    if args.out:
        written = tracer.write_jsonl(args.out)
        out.write("wrote %d events to %s\n" % (written, args.out))
    if args.chrome:
        written = tracer.write_chrome_trace(args.chrome)
        out.write(
            "wrote %d trace_event records to %s "
            "(open in ui.perfetto.dev or chrome://tracing)\n" % (written, args.chrome)
        )
    if args.view:
        meta = tracer.metadata()
        from repro.observe.trace import event_dict

        records = build_lifetimes(meta, [event_dict(e) for e in tracer.events])
        out.write(render_pipeline(meta, records, limit=args.limit) + "\n")
    return 0


def _command_view(args, out):
    meta, events = read_trace(args.trace)
    records = build_lifetimes(meta, events)
    out.write(
        render_pipeline(
            meta, records, start=args.start, end=args.end, limit=args.limit
        )
        + "\n"
    )
    return 0


def _command_validate(args, out):
    try:
        with open(args.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        out.write("error: cannot read %s: %s\n" % (args.trace, error))
        return 1
    except ValueError as error:
        out.write("error: %s is not valid JSON: %s\n" % (args.trace, error))
        return 1
    problems = validate_chrome_trace(document)
    if problems:
        out.write("%s: INVALID trace_event document\n" % args.trace)
        for problem in problems:
            out.write("  - %s\n" % problem)
        return 1
    out.write(
        "%s: valid trace_event document (%d events)\n"
        % (args.trace, len(document["traceEvents"]))
    )
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe",
        description="Cycle-level traces, pipeline diagrams and trace validation.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    trace = commands.add_parser(
        "trace", help="run one simulation with tracing on and export the events"
    )
    trace.add_argument("--model", default="strongarm", help="processor registry name")
    trace.add_argument("--workload", default="blowfish", help="kernel name")
    trace.add_argument("--scale", type=int, default=1, help="workload scale factor")
    trace.add_argument(
        "--backend",
        default="interpreted",
        help="engine backend (interpreted, compiled, generated, batched)",
    )
    trace.add_argument("--max-cycles", type=int, default=None, help="cycle budget")
    trace.add_argument(
        "--categories",
        default=",".join(TRACE_CATEGORIES),
        help="comma-separated event categories (default: all)",
    )
    trace.add_argument(
        "--capacity",
        type=int,
        default=1_000_000,
        help="ring-buffer capacity in events (oldest dropped beyond this)",
    )
    trace.add_argument("--out", default=None, help="write the events as JSONL")
    trace.add_argument(
        "--chrome", default=None, help="write Chrome trace_event JSON (Perfetto)"
    )
    trace.add_argument(
        "--view", action="store_true", help="also print the pipeline diagram"
    )
    trace.add_argument(
        "--limit", type=int, default=32, help="max instruction rows for --view"
    )
    trace.set_defaults(handler=_command_trace)

    view = commands.add_parser(
        "view", help="render a JSONL trace as a text pipeline diagram"
    )
    view.add_argument("trace", help="JSONL trace file written by `trace --out`")
    view.add_argument("--start", type=int, default=None, help="first cycle to show")
    view.add_argument("--end", type=int, default=None, help="cycle to stop before")
    view.add_argument(
        "--limit", type=int, default=64, help="max instruction rows (most recent kept)"
    )
    view.set_defaults(handler=_command_view)

    validate = commands.add_parser(
        "validate", help="check a Chrome-trace JSON file's structure"
    )
    validate.add_argument("trace", help="trace_event JSON written by `trace --chrome`")
    validate.set_defaults(handler=_command_validate)
    return parser


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args, out)
    except ValueError as error:
        out.write("error: %s\n" % error)
        return 1
