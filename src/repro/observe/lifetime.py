"""Instruction lifetime reconstruction and Konata-style pipeline diagrams.

A trace records *events* (firings, squashes, token creations); this module
folds them back into per-instruction **lifetime records**: when the
instruction was fetched (token created), which pipeline stage it occupied
on every cycle, when it retired, and — if it was squashed — the squash
cause and cycle.  The reconstruction needs no per-move events on the hot
path: the trace metadata carries each transition's source/target stage, so
a firing event *is* a stage move.

``render_pipeline`` draws the records as a Konata-style text diagram (one
row per instruction, one column per cycle, stage letters marking
residency), which ``python -m repro.observe view`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StageVisit:
    """One contiguous residency of an instruction in a pipeline stage."""

    stage: str
    enter: int
    leave: int = None  # None while the instruction is still there


@dataclass
class InstructionLifetime:
    """Fetch-to-retire record of one instruction token."""

    seq: int
    opclass: str = None
    pc: int = None
    created: int = None
    retired: int = None
    squashed: bool = False
    squash_cause: str = None
    squash_cycle: int = None
    stall_cycles: int = 0
    visits: list = field(default_factory=list)

    @property
    def last_cycle(self):
        """The last cycle this record has evidence for."""
        candidates = [self.created, self.retired, self.squash_cycle]
        for visit in self.visits:
            candidates.append(visit.leave if visit.leave is not None else visit.enter)
        known = [cycle for cycle in candidates if cycle is not None]
        return max(known) if known else 0

    def stage_at(self, cycle):
        """The stage occupied at ``cycle``, or ``None``."""
        for visit in self.visits:
            leave = visit.leave if visit.leave is not None else self.last_cycle + 1
            if visit.enter <= cycle < leave:
                return visit.stage
        return None


def build_lifetimes(meta, events):
    """Fold a ``(meta, events)`` trace into ``{seq: InstructionLifetime}``.

    Events may be dicts (from :func:`repro.observe.trace.read_trace`) or
    the tracer's raw tuples.  Instructions whose creation fell outside the
    ring window get partial records starting at their first observed event.
    """
    transitions = meta.get("transitions") or {}
    places = meta.get("places") or {}
    entries = meta.get("entries") or {}
    records = {}

    def record_for(seq, opclass, pc):
        record = records.get(seq)
        if record is None:
            record = InstructionLifetime(seq=seq, opclass=opclass, pc=pc)
            records[seq] = record
        else:
            if record.opclass is None:
                record.opclass = opclass
            if record.pc is None:
                record.pc = pc
        return record

    def close_visit(record, cycle):
        if record.visits and record.visits[-1].leave is None:
            record.visits[-1].leave = cycle

    def open_visit(record, stage, cycle):
        if stage is None:
            return
        last = record.visits[-1] if record.visits else None
        if last is not None and last.leave == cycle and last.stage == stage:
            # Same-stage move (e.g. place-to-place within a stage): extend
            # the residency instead of opening a zero-width visit.
            last.leave = None
            return
        record.visits.append(StageVisit(stage=stage, enter=cycle))

    for event in events:
        if not isinstance(event, dict):
            from repro.observe.trace import event_dict

            event = event_dict(event)
        category = event["cat"]
        cycle = event["cycle"]
        seq = event.get("seq")
        if seq is None:
            continue  # generator firings carry no token
        if category == "token":
            record = record_for(seq, event.get("opclass"), event.get("pc"))
            record.created = cycle
            place = event.get("place")
            if place is not None:
                stage = places.get(place)
            else:
                entry = entries.get(event.get("opclass"))
                stage = entry[1] if entry else None
            open_visit(record, stage, cycle)
        elif category == "firing":
            info = transitions.get(event.get("transition"))
            if info is None:
                continue
            record = record_for(seq, event.get("opclass"), event.get("pc"))
            close_visit(record, cycle)
            if info.get("end"):
                record.retired = cycle
            elif not info.get("consumes"):
                open_visit(record, info.get("target_stage"), cycle)
        elif category == "stall":
            record = record_for(seq, event.get("opclass"), event.get("pc"))
            record.stall_cycles += 1
        elif category == "squash":
            record = record_for(seq, event.get("opclass"), event.get("pc"))
            close_visit(record, cycle)
            record.squashed = True
            record.squash_cause = event.get("cause")
            record.squash_cycle = cycle
    return records


def _stage_letters(stages):
    """Assign each stage a distinct single-letter marker for the diagram."""
    letters = {}
    used = set()
    for stage in stages:
        chosen = None
        for char in str(stage).upper():
            if char.isalnum() and char not in used:
                chosen = char
                break
        if chosen is None:
            for char in "0123456789*#@+":
                if char not in used:
                    chosen = char
                    break
        letters[stage] = chosen or "?"
        used.add(letters[stage])
    return letters


def render_pipeline(meta, records, start=None, end=None, limit=None):
    """Render lifetime records as a Konata-style text pipeline diagram.

    One row per instruction (oldest first), one column per cycle:

    * a stage's letter marks residency (legend printed above the diagram),
    * ``.`` marks cycles before fetch / after leaving the window,
    * ``x`` marks the squash cycle of a squashed instruction,
    * ``=`` marks the retire cycle.

    ``start``/``end`` bound the cycle window; ``limit`` caps the number of
    instruction rows (the most recent ones are kept, matching what a ring
    buffer retains).
    """
    if not records:
        return "(no instruction lifetimes in trace)"
    ordered = sorted(records.values(), key=lambda record: record.seq)
    if limit is not None and len(ordered) > limit:
        ordered = ordered[-limit:]
    first = min(r.created if r.created is not None else r.last_cycle for r in ordered)
    last = max(r.last_cycle for r in ordered)
    window_start = first if start is None else max(start, 0)
    window_end = last + 1 if end is None else end
    if window_end <= window_start:
        window_end = window_start + 1

    stages = list(meta.get("stages") or [])
    for record in ordered:  # stages seen in visits but missing from meta
        for visit in record.visits:
            if visit.stage is not None and visit.stage not in stages:
                stages.append(visit.stage)
    letters = _stage_letters(stages)

    lines = []
    lines.append(
        "model %s  cycles %d..%d  %d instruction(s)"
        % (meta.get("model") or "?", window_start, window_end - 1, len(ordered))
    )
    lines.append(
        "stages: " + "  ".join("%s=%s" % (letters[name], name) for name in stages)
    )
    ruler = []
    for cycle in range(window_start, window_end):
        offset = cycle - window_start
        ruler.append("|" if offset % 10 == 0 else ("+" if offset % 5 == 0 else " "))
    label_width = 30
    lines.append(" " * label_width + "".join(ruler) + "  (| every 10 cycles)")

    for record in ordered:
        row = []
        for cycle in range(window_start, window_end):
            if record.squashed and cycle == record.squash_cycle:
                row.append("x")
                continue
            if record.retired is not None and cycle == record.retired:
                row.append("=")
                continue
            stage = record.stage_at(cycle)
            row.append(letters.get(stage, "?") if stage is not None else ".")
        pc = "0x%04x" % record.pc if isinstance(record.pc, int) else "?"
        flags = ""
        if record.squashed:
            flags = " squashed(%s)" % (record.squash_cause or "?")
        label = "i%-6d %-8s %-10s" % (record.seq, pc, record.opclass or "?")
        lines.append(label[:label_width].ljust(label_width) + "".join(row) + flags)
    return "\n".join(lines)
