"""A small counters/gauges/histograms registry for engine and campaign metrics.

The campaign runner (:func:`repro.campaign.runner.run_campaign`) records
where wall-time actually goes — per-phase timing (plan vs store-load vs
execute), result-store hit rates and the host time those hits saved,
per-worker utilisation, batched-lane occupancy, codegen/schedule cache
statuses — into a :class:`MetricsRegistry`; the snapshot rides on
``CampaignReport.metrics``, is persisted as ``metrics.json`` next to the
result store, and ``python -m repro.campaign report --metrics`` renders it
as a table or JSON.

Everything is plain data by design: a snapshot is a JSON-compatible dict,
so it crosses process boundaries and survives in stores without pickling.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager


class Counter:
    """A monotonically increasing value (counts, accumulated seconds)."""

    kind = "counter"

    def __init__(self, name, description=""):
        self.name = name
        self.description = description
        self.value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError("counter %r cannot decrease (inc by %r)" % (self.name, amount))
        self.value += amount
        return self.value

    def snapshot(self):
        return {"type": self.kind, "description": self.description, "value": self.value}


class Gauge:
    """A point-in-time value (utilisation, configured widths)."""

    kind = "gauge"

    def __init__(self, name, description=""):
        self.name = name
        self.description = description
        self.value = None

    def set(self, value):
        self.value = value
        return value

    def snapshot(self):
        return {"type": self.kind, "description": self.description, "value": self.value}


class Histogram:
    """Summary statistics over observed samples (run wall times, batch widths)."""

    kind = "histogram"

    def __init__(self, name, description=""):
        self.name = name
        self.description = description
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "type": self.kind,
            "description": self.description,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metrics with get-or-create access and JSON-friendly snapshots."""

    def __init__(self):
        self._metrics = {}

    def _get(self, cls, name, description):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                "metric %r already registered as %s, not %s"
                % (name, metric.kind, cls.kind)
            )
        return metric

    def counter(self, name, description=""):
        return self._get(Counter, name, description)

    def gauge(self, name, description=""):
        return self._get(Gauge, name, description)

    def histogram(self, name, description=""):
        return self._get(Histogram, name, description)

    @contextmanager
    def timer(self, name, description=""):
        """Accumulate elapsed wall seconds into the counter ``name``."""
        counter = self.counter(name, description)
        start = time.perf_counter()
        try:
            yield counter
        finally:
            counter.inc(time.perf_counter() - start)

    def merge_counters(self, values, description=""):
        """Fold a plain ``{name: amount}`` mapping into counters.

        Used to adopt counters kept outside the registry — e.g. the
        result store's lock-wait and quarantine bookkeeping — into the
        snapshot without threading the registry through those layers.
        Amounts must be non-negative (counters never decrease).
        """
        for name, amount in sorted(values.items()):
            self.counter(name, description).inc(amount)
        return self

    def __contains__(self, name):
        return name in self._metrics

    def names(self):
        return sorted(self._metrics)

    def snapshot(self):
        """Every metric as a plain ``{name: {type, description, ...}}`` dict."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}


def snapshot_value(snapshot, name, default=0):
    """The scalar value of one metric in a snapshot dict (0 when absent)."""
    entry = snapshot.get(name) if snapshot else None
    if not entry:
        return default
    if entry.get("type") == "histogram":
        return entry.get("count", default)
    value = entry.get("value")
    return value if value is not None else default


def merge_cumulative(snapshot, previous, names):
    """Fold earlier counter values into ``snapshot`` for the listed names.

    Used to keep store-level counters (hits/misses/saved seconds) cumulative
    across campaign invocations when rewriting ``metrics.json``.
    """
    for name in names:
        entry = snapshot.get(name)
        earlier = previous.get(name) if previous else None
        if entry is None or earlier is None:
            continue
        if entry.get("type") == "counter" and earlier.get("type") == "counter":
            entry["value"] = entry.get("value", 0) + earlier.get("value", 0)
    return snapshot


def render_metrics(snapshot):
    """A snapshot as an aligned text table (the benchmark-harness look)."""
    from repro.analysis.report import format_table

    rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry.get("type") == "histogram":
            value = "count=%d mean=%.4g min=%.4g max=%.4g" % (
                entry.get("count", 0),
                entry.get("mean") or 0.0,
                entry.get("min") or 0.0,
                entry.get("max") or 0.0,
            )
        else:
            value = entry.get("value")
            if isinstance(value, float):
                value = "%.4f" % value
        rows.append({"metric": name, "type": entry.get("type"), "value": value})
    return format_table(rows, columns=["metric", "type", "value"])


def write_metrics_json(path, snapshot):
    """Write a snapshot dict as pretty JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, sort_keys=True, indent=2)
        handle.write("\n")


def read_metrics_json(path):
    """Read a snapshot dict back; ``None`` when missing or unreadable."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None
