"""Cycle-level event tracing for the RCPN engines.

The paper's pitch for RCPN simulation is *explainability*: tokens move
through places, transitions fire per cycle.  This module records exactly
those events — transition firings, token creations, stalls, squashes with
provenance, and cache hit/miss/fill/writeback traffic — behind a
:class:`TraceConfig` hung off :class:`repro.core.engine.EngineOptions`.

Design constraints (they shape everything here):

* **Zero perturbation.**  Tracing must not change a single statistics
  counter on any backend; the engines only *observe* through the tracer,
  never consult it.  The equivalence suite
  (``tests/integration/test_trace_equivalence.py``) pins traced runs
  bit-identical to untraced ones on all four backends.
* **Zero cost when off.**  The interpreted/compiled engines hold
  per-category bound methods that are ``None`` when tracing is off, and
  the codegen emitter only writes trace call sites into the source when a
  category is enabled — the tracing-off emitted module is byte-identical
  to one emitted by a trace-unaware build.
* **Stdlib only.**  ``repro.core.engine`` imports this module, so it must
  not import anything from :mod:`repro` (no cycles, no heavy imports).

Events are stored as uniform tuples ``(category, cycle, a, b, c, d)`` in a
bounded ring (a ``deque``), optionally mirrored to pluggable sinks, and
exported as JSONL or Chrome ``trace_event`` JSON (the format Perfetto and
``chrome://tracing`` open directly).

============  =============  ======  =========  =========
category      a              b       c          d
============  =============  ======  =========  =========
``firing``    transition     seq     opclass    pc
``stall``     place          seq     opclass    pc
``squash``    cause          seq     opclass    pc
``token``     explicit place seq     opclass    pc
``cache``     level          kind    address    latency
============  =============  ======  =========  =========

``seq``/``opclass``/``pc`` are ``None`` for generator firings (no token
involved); a ``token`` event's ``a`` is the explicitly requested place or
``None`` when the token was routed by operation class.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass

#: Every event category the tracer knows, in canonical order.
TRACE_CATEGORIES = ("firing", "stall", "squash", "token", "cache")

#: Field names of each category's (a, b, c, d) payload, for dict export.
_FIELDS = {
    "firing": ("transition", "seq", "opclass", "pc"),
    "stall": ("place", "seq", "opclass", "pc"),
    "squash": ("cause", "seq", "opclass", "pc"),
    "token": ("place", "seq", "opclass", "pc"),
    "cache": ("level", "kind", "address", "latency"),
}


@dataclass(frozen=True)
class TraceConfig:
    """What to trace and how much to keep.

    Plain frozen data so it composes with the campaign plumbing:
    ``dataclasses.asdict`` / JSON round-trips work, and the codegen cache
    key can fold the *emission-relevant* parts in only when tracing is
    enabled (see :func:`repro.codegen.cache.codegen_key`).

    * ``enabled`` — master switch; a disabled config behaves exactly like
      ``EngineOptions.trace = None`` (no tracer is built, emitted source
      and cache keys are unchanged).
    * ``capacity`` — ring-buffer size in events; the oldest events are
      dropped once full (``Tracer.dropped`` counts them).  Sinks see every
      event regardless of capacity.
    * ``categories`` — subset of :data:`TRACE_CATEGORIES` to record.
    """

    enabled: bool = True
    capacity: int = 200_000
    categories: tuple = TRACE_CATEGORIES

    def __post_init__(self):
        # JSON round-trips deliver lists; normalise so asdict/key folding
        # is stable and membership checks stay cheap.
        object.__setattr__(self, "categories", tuple(self.categories))
        unknown = [c for c in self.categories if c not in TRACE_CATEGORIES]
        if unknown:
            raise ValueError(
                "unknown trace categories %r; expected a subset of %r"
                % (unknown, TRACE_CATEGORIES)
            )
        if not isinstance(self.capacity, int) or self.capacity < 1:
            raise ValueError("trace capacity %r must be a positive integer" % (self.capacity,))


def build_tracer(config, engine=None):
    """Build the :class:`Tracer` for ``config``, or ``None`` when tracing is off."""
    if config is None or not getattr(config, "enabled", False):
        return None
    if not config.categories:
        return None
    return Tracer(config, engine=engine)


class Tracer:
    """Bounded event recorder attached to one engine.

    The per-category methods (:meth:`firing`, :meth:`stall`, ...) are the
    hot-path entry points; engines cache them as bound attributes (or
    ``None``) so the tracing-off cost is one attribute load per site at
    most — and literally zero for the generated backends, whose untraced
    source contains no call sites at all.
    """

    def __init__(self, config, engine=None):
        self.config = config
        self._engine = engine
        self._ring = deque(maxlen=config.capacity)
        self._total = 0
        self._sinks = []
        self._categories = frozenset(config.categories)

    # -- configuration ------------------------------------------------------
    def wants(self, category):
        """True when ``category`` is enabled in this tracer's config."""
        return category in self._categories

    def add_sink(self, sink):
        """Attach a callable receiving every recorded event tuple.

        Sinks see events in order and regardless of ring capacity, which is
        what makes streaming exports (JSONL to disk) lossless while the
        in-memory ring stays bounded.
        """
        self._sinks.append(sink)

    # -- recording ----------------------------------------------------------
    def _record(self, event):
        self._ring.append(event)
        self._total += 1
        for sink in self._sinks:
            sink(event)

    def firing(self, cycle, transition, token):
        if token is not None:
            self._record(("firing", cycle, transition, token.seq, token.opclass, token.pc))
        else:
            self._record(("firing", cycle, transition, None, None, None))

    def stall(self, cycle, place, token):
        self._record(("stall", cycle, place, token.seq, token.opclass, token.pc))

    def squash(self, cycle, cause, token):
        self._record(("squash", cycle, cause, token.seq, token.opclass, token.pc))

    def token_created(self, cycle, token, place=None):
        name = place if place is None or isinstance(place, str) else place.name
        self._record(("token", cycle, name, token.seq, token.opclass, token.pc))

    def cache(self, level, kind, address, latency):
        # Cache accesses happen inside transition actions; ``engine.cycle``
        # is the in-flight cycle on every backend (the batched lane loop
        # updates it per cycle precisely so mid-cycle readers like this
        # stay correct).
        cycle = self._engine.cycle if self._engine is not None else 0
        self._record(("cache", cycle, level, kind, address, latency))

    # -- inspection ---------------------------------------------------------
    @property
    def events(self):
        """The retained events, oldest first."""
        return list(self._ring)

    @property
    def recorded(self):
        """Total events recorded, including those the ring has dropped."""
        return self._total

    @property
    def dropped(self):
        """Events lost to ring-capacity eviction."""
        return self._total - len(self._ring)

    def counts(self):
        """Events retained per category."""
        return Counter(event[0] for event in self._ring)

    def firing_counts(self):
        """Retained firing events per transition name.

        With a ring large enough to hold the whole run this equals
        ``stats.transition_firings`` exactly — the trace-content golden
        test's invariant.
        """
        return Counter(event[2] for event in self._ring if event[0] == "firing")

    def clear(self):
        """Drop all recorded events (``engine.reset()`` calls this)."""
        self._ring.clear()
        self._total = 0

    # -- metadata -----------------------------------------------------------
    def metadata(self):
        """Static model facts needed to interpret the event stream.

        Written as the first JSONL line and embedded in the Chrome export:
        the transition -> (source/target place, stage) map lets lifetime
        reconstruction recover per-stage residency from firing events
        alone, without per-move events on the hot path.
        """
        meta = {
            "type": "meta",
            "model": None,
            "categories": sorted(self._categories),
            "recorded": self._total,
            "dropped": self.dropped,
            "stages": [],
            "places": {},
            "transitions": {},
            "entries": {},
        }
        net = getattr(self._engine, "net", None) if self._engine is not None else None
        if net is None:
            return meta
        meta["model"] = net.name
        meta["stages"] = list(net.stages.keys())
        for name, place in net.places.items():
            meta["places"][name] = place.stage.name if place.stage is not None else None
        for transition in net.transitions:
            source = transition.source
            target = transition.target_place
            meta["transitions"][transition.name] = {
                "source": source.name if source is not None else None,
                "source_stage": (
                    source.stage.name if source is not None and source.stage else None
                ),
                "target": target.name if target is not None else None,
                "target_stage": (
                    target.stage.name
                    if target is not None and not target.is_end and target.stage
                    else None
                ),
                "end": bool(target is not None and target.is_end),
                "consumes": bool(transition.consumes_token),
            }
        entry_place_for = getattr(net, "entry_place_for", None)
        if callable(entry_place_for):
            for opclass in getattr(net, "operation_classes", ()):
                try:
                    place = entry_place_for(opclass)
                except Exception:
                    continue
                if place is not None:
                    meta["entries"][opclass] = [
                        place.name,
                        place.stage.name if place.stage is not None else None,
                    ]
        return meta

    # -- export -------------------------------------------------------------
    def write_jsonl(self, path):
        """Write the metadata line plus one JSON object per retained event."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.metadata(), sort_keys=True) + "\n")
            for event in self._ring:
                handle.write(json.dumps(event_dict(event), sort_keys=True) + "\n")
        return len(self._ring)

    def write_chrome_trace(self, path):
        """Write the retained events as Chrome ``trace_event`` JSON."""
        document = chrome_trace(self.metadata(), [event_dict(e) for e in self._ring])
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
        return len(document["traceEvents"])


def event_dict(event):
    """One event tuple as a JSON-friendly dict with category field names."""
    category, cycle = event[0], event[1]
    row = {"cat": category, "cycle": cycle}
    for name, value in zip(_FIELDS[category], event[2:]):
        row[name] = value
    return row


def read_trace(path):
    """Read a JSONL trace back as ``(meta, events)`` (events as dicts)."""
    meta = None
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("type") == "meta":
                meta = row
            else:
                events.append(row)
    return meta or {"type": "meta"}, events


# -- Chrome trace_event export ---------------------------------------------

def chrome_trace(meta, events):
    """Build a Chrome ``trace_event`` JSON document from a trace.

    The document opens directly in Perfetto (ui.perfetto.dev) or
    ``chrome://tracing``: one *thread* per pipeline stage, one complete
    ("X") slice per instruction's residency in that stage (1 cycle = 1 µs
    of trace time), instant ("i") marks for squashes, and counter ("C")
    tracks for per-cycle stalls and cache misses.
    """
    from repro.observe.lifetime import build_lifetimes

    stages = list(meta.get("stages") or [])
    stage_tid = {name: index for index, name in enumerate(stages)}
    trace_events = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "model %s" % (meta.get("model") or "?")},
        }
    ]
    for name, tid in stage_tid.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": "stage %s" % name},
            }
        )

    lifetimes = build_lifetimes(meta, events)
    end_cycle = 0
    for record in lifetimes.values():
        for visit in record.visits:
            leave = visit.leave if visit.leave is not None else visit.enter + 1
            end_cycle = max(end_cycle, leave)
            trace_events.append(
                {
                    "ph": "X",
                    "name": "i%d %s" % (record.seq, record.opclass or "?"),
                    "cat": "pipeline",
                    "pid": 0,
                    "tid": stage_tid.get(visit.stage, len(stages)),
                    "ts": visit.enter,
                    "dur": max(leave - visit.enter, 1),
                    "args": {
                        "seq": record.seq,
                        "opclass": record.opclass,
                        "pc": record.pc,
                        "stage": visit.stage,
                    },
                }
            )

    stall_cycles = Counter()
    miss_cycles = Counter()
    for event in events:
        if event["cat"] == "stall":
            stall_cycles[event["cycle"]] += 1
        elif event["cat"] == "cache" and event["kind"] == "miss":
            miss_cycles[event["cycle"]] += 1
        elif event["cat"] == "squash":
            trace_events.append(
                {
                    "ph": "i",
                    "name": "squash i%s (%s)" % (event.get("seq"), event.get("cause")),
                    "cat": "squash",
                    "pid": 0,
                    "tid": 0,
                    "ts": event["cycle"],
                    "s": "g",
                }
            )
    for name, counter in (("stalls", stall_cycles), ("cache_misses", miss_cycles)):
        for cycle in sorted(counter):
            trace_events.append(
                {
                    "ph": "C",
                    "name": name,
                    "pid": 0,
                    "tid": 0,
                    "ts": cycle,
                    "args": {name: counter[cycle]},
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "model": meta.get("model"),
            "categories": meta.get("categories"),
            "recorded": meta.get("recorded"),
            "dropped": meta.get("dropped"),
            "cycles_per_us": 1,
        },
    }


#: Phases that carry a duration; everything else is point-like.
_CHROME_REQUIRED = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid"),
    "C": ("name", "ts", "pid", "tid", "args"),
    "M": ("name", "pid", "tid", "args"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
}


def validate_chrome_trace(document):
    """Validate the ``trace_event`` structure; returns a list of problems.

    An empty list means the document is loadable by Perfetto /
    ``chrome://tracing``: a top-level ``traceEvents`` array whose entries
    carry a known phase and that phase's required fields with sane types.
    Used by the CI trace-smoke step (``python -m repro.observe validate``).
    """
    problems = []
    if not isinstance(document, dict):
        return ["top level must be a JSON object, got %s" % type(document).__name__]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a JSON array"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        phase = event.get("ph")
        required = _CHROME_REQUIRED.get(phase)
        if required is None:
            problems.append("%s: unknown phase %r" % (where, phase))
            continue
        for field_name in required:
            if field_name not in event:
                problems.append("%s: phase %r missing field %r" % (where, phase, field_name))
        for field_name in ("ts", "dur"):
            value = event.get(field_name)
            if value is not None and not isinstance(value, (int, float)):
                problems.append("%s: %s is not numeric (%r)" % (where, field_name, value))
        if phase == "X" and isinstance(event.get("dur"), (int, float)) and event["dur"] < 0:
            problems.append("%s: negative duration %r" % (where, event["dur"]))
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
    return problems
