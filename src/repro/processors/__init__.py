"""RCPN processor models, defined as declarative pipeline specs.

* :mod:`repro.processors.example` — the paper's Figure 4/5 representative
  out-of-order-completion processor with a feedback (bypass) path; the
  pedagogical model used by the quickstart example.
* :mod:`repro.processors.strongarm` — the StrongARM SA-110 five-stage
  pipeline of the paper's experiments.
* :mod:`repro.processors.xscale` — the Intel XScale seven-stage pipeline
  (Figure 9): in-order issue, out-of-order completion across the X/D/M
  pipes, BTB branch prediction.
* :mod:`repro.processors.variants` — spec-defined variants (a three-stage
  ``arm7-mini``, a deepened ``xscale-deep``, the dual-issue
  ``strongarm-ds``/``xscale-ds`` built from an
  :class:`~repro.describe.IssueSpec`, and the memory-hierarchy
  ``strongarm-l2``/``xscale-l2`` plus the ``strongarm-c*`` cache-capacity
  sweep built from a :class:`~repro.describe.MemorySpec`) showing how
  cheap a new pipeline is once the description layer does the wiring.

Each model is a :class:`repro.describe.PipelineSpec` elaborated by
:mod:`repro.describe` into an :class:`repro.core.RCPN` and wrapped in the
:class:`~repro.describe.substrate.Processor` facade that knows how to load
a program, run the generated simulator and report statistics.  The
:mod:`repro.processors.registry` names them all: use
``build_processor("xscale", backend="compiled")`` instead of importing
builders one by one.
"""

from repro.describe.substrate import Processor, ProcessorCore
from repro.processors.example import build_example_processor, example_spec
from repro.processors.registry import (
    ProcessorEntry,
    build_processor,
    get_entry,
    get_spec,
    processor_names,
    register_processor,
    supported_kernels,
)
from repro.processors.strongarm import build_strongarm_processor, strongarm_spec
from repro.processors.variants import (
    arm7_mini_spec,
    strongarm_ds_spec,
    strongarm_l2_spec,
    xscale_deep_spec,
    xscale_ds_spec,
    xscale_l2_spec,
)
from repro.processors.xscale import build_xscale_processor, xscale_spec

#: Model builders by name (legacy alias; prefer the registry functions).
MODEL_BUILDERS = {name: get_entry(name).builder for name in processor_names()}

__all__ = [
    "MODEL_BUILDERS",
    "Processor",
    "ProcessorCore",
    "ProcessorEntry",
    "arm7_mini_spec",
    "build_example_processor",
    "build_processor",
    "build_strongarm_processor",
    "build_xscale_processor",
    "example_spec",
    "get_entry",
    "get_spec",
    "processor_names",
    "register_processor",
    "strongarm_ds_spec",
    "strongarm_l2_spec",
    "strongarm_spec",
    "supported_kernels",
    "xscale_deep_spec",
    "xscale_ds_spec",
    "xscale_l2_spec",
    "xscale_spec",
]
