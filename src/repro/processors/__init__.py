"""RCPN processor models.

* :mod:`repro.processors.example` — the paper's Figure 4/5 representative
  out-of-order-completion processor with a feedback (bypass) path; the
  pedagogical model used by the quickstart example.
* :mod:`repro.processors.strongarm` — the StrongARM SA-110 five-stage
  pipeline of the paper's experiments.
* :mod:`repro.processors.xscale` — the Intel XScale seven-stage pipeline
  (Figure 9): in-order issue, out-of-order completion across the X/D/M
  pipes, BTB branch prediction.

All models build an :class:`repro.core.RCPN` and are wrapped in a
:class:`repro.processors.common.Processor` facade that knows how to load a
program, run the generated simulator and report statistics.
"""

from repro.processors.common import Processor, ProcessorCore
from repro.processors.example import build_example_processor
from repro.processors.strongarm import build_strongarm_processor
from repro.processors.xscale import build_xscale_processor

#: Model builders by name, used by the benchmark harness.
MODEL_BUILDERS = {
    "example": build_example_processor,
    "strongarm": build_strongarm_processor,
    "xscale": build_xscale_processor,
}

__all__ = [
    "Processor",
    "ProcessorCore",
    "build_example_processor",
    "build_strongarm_processor",
    "build_xscale_processor",
    "MODEL_BUILDERS",
]
