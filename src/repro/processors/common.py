"""Backward-compatibility shim.

The shared ARM model substrate moved to :mod:`repro.describe.substrate`
when the declarative description layer was introduced (the substrate sits
*below* the spec/semantics/elaborator stack, and keeping it under
``repro.processors`` created an import cycle).  Import from
``repro.describe.substrate`` in new code; this module re-exports the public
names so existing imports keep working, but emits a
:class:`DeprecationWarning` on import and will be removed in a future
release.
"""

import warnings

warnings.warn(
    "repro.processors.common is a deprecated shim; import from "
    "repro.describe.substrate instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.describe.substrate import (
    ArmDecodeContext,
    Processor,
    ProcessorCore,
    arm_operation_classes,
    block_transfer_addresses,
    compute_alu,
    compute_memory_address,
    compute_multiply,
    condition_holds,
    make_arm_model_parts,
    make_decoder,
    operand_read,
    operand_ready,
    operands_ready,
    pack_flags,
    resolve_engine_options,
    token_flags_ready,
    unpack_flags,
)

__all__ = [
    "ArmDecodeContext",
    "Processor",
    "ProcessorCore",
    "arm_operation_classes",
    "block_transfer_addresses",
    "compute_alu",
    "compute_memory_address",
    "compute_multiply",
    "condition_holds",
    "make_arm_model_parts",
    "make_decoder",
    "operand_read",
    "operand_ready",
    "operands_ready",
    "pack_flags",
    "resolve_engine_options",
    "token_flags_ready",
    "unpack_flags",
]
