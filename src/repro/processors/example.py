"""The paper's Figure 4/5 example processor as a pipeline description.

This is the representative out-of-order-completion processor the paper uses
to explain RCPN: four latches ``L1 .. L4``, an ALU path ``L1 -> L2 -> L3``,
a memory path ``L1 -> L2 -> L4`` with a data-dependent memory delay, a
branch path that stalls the fetch unit with a reservation token parked in
``L1``, and a feedback (bypass) path used only for the first ALU source
operand ``s1`` — modeled, exactly as in Figure 5, with two output arcs of
different priorities from the decode place (the ``alu.issue`` /
``alu.issue_bypass`` hook pair).

The model executes the ARM7-inspired ISA restricted to the ALU, load/store,
branch and system operation classes (the instruction classes of Figure
4(b)); it is the model used by the quickstart example and by the tests that
check the Figure 5 mechanisms one by one.
"""

from __future__ import annotations

from repro.describe import (
    FetchSpec,
    HazardSpec,
    OpClassPathSpec,
    PipelineSpec,
    StageSpec,
    TransitionSpec,
    elaborate,
)

STAGES = ("L1", "L2", "L3", "L4")

#: Only the ALU first source operand may use the feedback path, and only
#: from state L3 (paper Figure 5).
S1_FORWARD_STATE = "L3"


def example_spec():
    """The Figure 4/5 example processor as a declarative description."""
    alu = OpClassPathSpec(
        "alu",
        stages=("L1", "L2", "L3"),
        transitions=(
            # [t.type = ALU, t.s1.canRead(), t.s2.canRead(), t.d.canWrite()]
            TransitionSpec("D_alu", "L1", "L2", hooks="alu.issue", priority=0),
            # [t.type = ALU, t.s1.canRead(L3), t.s2.canRead(), t.d.canWrite()]
            TransitionSpec("D_alu_bypass", "L1", "L2", hooks="alu.issue_bypass", priority=1),
            TransitionSpec("E", "L2", "L3", hooks="alu.execute"),
            TransitionSpec("We", "L3", "end", hooks="alu.writeback"),
        ),
    )
    mem = OpClassPathSpec(
        "mem",
        stages=("L1", "L2", "L4"),
        transitions=(
            TransitionSpec("D_mem", "L1", "L2", hooks="mem.issue"),
            # M: if (t.L) t.r = mem[addr] else mem[addr] = t.r; t.delay = mem.delay(addr)
            TransitionSpec("M", "L2", "L4", hooks="mem.access_combined"),
            TransitionSpec("Wm", "L4", "end", hooks="mem.writeback_simple"),
        ),
    )
    # The decode transition parks a reservation token in L1 (the stage the
    # branch itself is leaving), stalling the fetch unit for one cycle; the
    # resolution transition consumes it again.
    branch = OpClassPathSpec(
        "branch",
        stages=("L1", "L2"),
        transitions=(
            TransitionSpec(
                "D_branch", "L1", "L2", hooks="branch.decode_fig5", produces=("L1",)
            ),
            TransitionSpec(
                "B", "L2", "end", hooks="branch.resolve_fig5", consumes=("L1",)
            ),
        ),
    )
    system = OpClassPathSpec(
        "system",
        stages=("L1", "L2"),
        transitions=(
            TransitionSpec("D_system", "L1", "L2", hooks="system.issue"),
            TransitionSpec("W_system", "L2", "end", hooks="system.retire"),
        ),
    )

    return PipelineSpec(
        name="Figure5Example",
        stages=tuple(StageSpec(name) for name in STAGES),
        paths=(alu, mem, branch, system),
        hazards=HazardSpec(
            # No general bypass network: the only forwarding is the Figure 5
            # s1 feedback arc, expressed by the dedicated bypass transition.
            forward_states=(),
            front_flush_stages=("L1",),
            redirect_flush_stages=("L1", "L2"),
            s1_forward_state=S1_FORWARD_STATE,
        ),
        fetch=FetchSpec(style="sequential", capacity_stage="L1", name="F"),
        description="the paper's Figure 4/5 representative processor "
        "(feedback path, data-dependent delays, fetch-stall reservation)",
    )


def build_example_processor(
    memory_config=None, engine_options=None, use_decode_cache=True, backend=None
):
    """Build the Figure 4/5 example processor and its generated simulator.

    ``backend`` selects the engine ("interpreted"/"compiled"), overriding
    ``engine_options.backend`` when given.
    """
    return elaborate(
        example_spec(),
        memory_config=memory_config,
        engine_options=engine_options,
        use_decode_cache=use_decode_cache,
        backend=backend,
    )
