"""The paper's Figure 4/5 example processor as an RCPN model.

This is the representative out-of-order-completion processor the paper uses
to explain RCPN: four latches ``L1 .. L4``, an ALU path ``L1 -> L2 -> L3``,
a memory path ``L1 -> L2 -> L4`` with a data-dependent memory delay, a
branch path that stalls the fetch unit with a reservation token parked in
``L1``, and a feedback (bypass) path used only for the first ALU source
operand ``s1`` — modeled, exactly as in Figure 5, with two output arcs of
different priorities from the decode place.

The model executes the ARM7-inspired ISA restricted to the ALU, load/store,
branch and system operation classes (the instruction classes of Figure
4(b)); it is the model used by the quickstart example and by the tests that
check the Figure 5 mechanisms one by one.
"""

from __future__ import annotations

from repro.core.engine import EngineOptions
from repro.isa.instructions import SystemOp
from repro.processors.common import (
    Processor,
    compute_alu,
    compute_memory_address,
    condition_holds,
    make_arm_model_parts,
    make_decoder,
    resolve_engine_options,
    operand_read,
    token_flags_ready,
)

STAGES = ("L1", "L2", "L3", "L4")

#: Only the ALU first source operand may use the feedback path, and only
#: from state L3 (paper Figure 5).
S1_FORWARD_STATE = "L3"


def build_example_processor(
    memory_config=None, engine_options=None, use_decode_cache=True, backend=None
):
    """Build the Figure 4/5 example processor and its generated simulator.

    ``backend`` selects the engine ("interpreted"/"compiled"), overriding
    ``engine_options.backend`` when given.
    """
    net, context, core, memory = make_arm_model_parts(
        "Figure5Example",
        memory_config,
        operation_classes=("alu", "mem", "branch", "system"),
    )

    for stage in STAGES:
        net.add_stage(stage, capacity=1, delay=1)

    decoder = make_decoder(net, context, use_cache=use_decode_cache)

    # -- instruction-independent sub-net (Figure 5, "Instruction Independent")
    fetch_net = net.add_subnet("fetch")

    def fetch_guard(_token, _ctx):
        return not core.halted

    def fetch_action(_token, ctx):
        pc = core.next_fetch()
        word = memory.read_word(pc)
        token = decoder.decode_word(word, pc=pc)
        token.delay = memory.instruction_delay(pc)
        ctx.emit(token)

    net.add_transition("F", fetch_net, guard=fetch_guard, action=fetch_action,
                       capacity_stages=["L1"])

    # -- ALU instructions sub-net ------------------------------------------------
    alu_net = net.add_subnet("alu", opclasses=("alu",))
    alu_l1 = net.add_place("L1", alu_net, entry=True)
    alu_l2 = net.add_place("L2", alu_net)
    alu_l3 = net.add_place("L3", alu_net)
    alu_end = net.add_place("end", alu_net)

    def _alu_common_guard(t):
        if not token_flags_ready(t):
            return False
        if not t.s2.can_read():
            return False
        if not t.d.can_write():
            return False
        if t.writes_flags and not t.fl.can_write():
            return False
        return True

    # [t.type = ALU, t.s1.canRead(), t.s2.canRead(), t.d.canWrite()]
    def alu_issue_direct_guard(t, _ctx):
        return _alu_common_guard(t) and t.s1.can_read()

    def alu_issue_direct_action(t, _ctx):
        executed = condition_holds(t)
        t.annotations["executed"] = executed
        if not executed:
            return
        t.s1.read()
        t.s2.read()
        t.d.reserve_write()
        if t.writes_flags:
            t.fl.reserve_write()

    # [t.type = ALU, t.s1.canRead(L3), t.s2.canRead(), t.d.canWrite()]
    def alu_issue_forward_guard(t, _ctx):
        if not _alu_common_guard(t):
            return False
        if not t.s1.can_read(S1_FORWARD_STATE):
            return False
        writer = t.s1.register.writer
        return writer is not None and writer.has_value

    def alu_issue_forward_action(t, _ctx):
        executed = condition_holds(t)
        t.annotations["executed"] = executed
        if not executed:
            return
        t.s1.read(S1_FORWARD_STATE)
        t.s2.read()
        t.d.reserve_write()
        if t.writes_flags:
            t.fl.reserve_write()

    # E: t.d = t.op(t.s1, t.s2)
    def alu_execute_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        result, flags = compute_alu(t)
        if result is not None:
            t.d.value = result
        if flags is not None:
            t.fl.value = flags

    # We: t.d.writeback()
    def alu_writeback_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        if t.d.has_value:
            t.d.writeback()
        if t.writes_flags and t.fl.has_value:
            t.fl.writeback()

    net.add_transition("D_alu", alu_net, source=alu_l1, target=alu_l2,
                       guard=alu_issue_direct_guard, action=alu_issue_direct_action,
                       priority=0)
    net.add_transition("D_alu_bypass", alu_net, source=alu_l1, target=alu_l2,
                       guard=alu_issue_forward_guard, action=alu_issue_forward_action,
                       priority=1)
    net.add_transition("E", alu_net, source=alu_l2, target=alu_l3,
                       action=alu_execute_action)
    net.add_transition("We", alu_net, source=alu_l3, target=alu_end,
                       action=alu_writeback_action)

    # -- LoadStore instructions sub-net -------------------------------------------
    mem_net = net.add_subnet("mem", opclasses=("mem",))
    mem_l1 = net.add_place("L1", mem_net, entry=True)
    mem_l2 = net.add_place("L2", mem_net)
    mem_l4 = net.add_place("L4", mem_net)
    mem_end = net.add_place("end", mem_net)

    # [t.type = LoadStore, !t.L || t.r.canWrite(), t.L || t.r.canRead(), t.addr.canRead()]
    def mem_issue_guard(t, _ctx):
        if not token_flags_ready(t):
            return False
        if not (t.base.can_read() and t.offset.can_read()):
            return False
        if t.L and not t.r.can_write():
            return False
        if not t.L and not t.r.can_read():
            return False
        if t.updates_base and not t.base.can_write():
            return False
        return True

    # t.addr.read(); if (t.L) t.r.reserveWrite(); else t.r.read();
    def mem_issue_action(t, _ctx):
        executed = condition_holds(t)
        t.annotations["executed"] = executed
        if not executed:
            return
        t.base.read()
        t.offset.read()
        if t.L:
            t.r.reserve_write()
        else:
            t.r.read()
        if t.updates_base:
            t.base.reserve_write()

    # M: if (t.L) t.r = mem[addr] else mem[addr] = t.r; t.delay = mem.delay(addr)
    def mem_access_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        address, updated = compute_memory_address(t)
        t.annotations["address"] = address
        t.annotations["updated_base"] = updated
        t.delay = memory.data_delay(address, is_write=not t.L)
        if t.L:
            t.r.value = memory.read_byte(address) if t.byte else memory.read_word(address)
        else:
            value = t.r.value or 0
            if t.byte:
                memory.write_byte(address, value & 0xFF)
            else:
                memory.write_word(address, value)

    # Wm: if (t.L) t.r.writeback()
    def mem_writeback_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        if t.L:
            t.r.writeback()
        if t.updates_base:
            t.base.value = t.annotations["updated_base"]
            t.base.writeback()

    net.add_transition("D_mem", mem_net, source=mem_l1, target=mem_l2,
                       guard=mem_issue_guard, action=mem_issue_action)
    net.add_transition("M", mem_net, source=mem_l2, target=mem_l4,
                       action=mem_access_action)
    net.add_transition("Wm", mem_net, source=mem_l4, target=mem_end,
                       action=mem_writeback_action)

    # -- Branch instructions sub-net ------------------------------------------------
    branch_net = net.add_subnet("branch", opclasses=("branch",))
    branch_l1 = net.add_place("L1", branch_net, entry=True)
    branch_l2 = net.add_place("L2", branch_net)
    branch_end = net.add_place("end", branch_net)

    # The decode transition parks a reservation token in L1 (the stage the
    # branch itself is leaving), stalling the fetch unit for one cycle.
    def branch_decode_guard(t, _ctx):
        if not token_flags_ready(t):
            return False
        if t.link and not t.lr.can_write():
            return False
        return True

    def branch_decode_action(t, _ctx):
        taken = condition_holds(t)
        t.annotations["executed"] = True
        t.annotations["taken"] = taken
        if taken and t.link:
            t.lr.reserve_write()
            t.lr.value = (t.pc + 4) & 0xFFFFFFFF

    # B: pc = pc + offset (and consume the reservation token, un-stalling fetch).
    def branch_resolve_action(t, ctx):
        if t.annotations.get("taken"):
            target = (t.pc + 8 + 4 * t.offset.value) & 0xFFFFFFFF
            ctx.flush_stage("L1")
            core.redirect(target)
            if t.link:
                t.lr.writeback()

    net.add_transition("D_branch", branch_net, source=branch_l1, target=branch_l2,
                       guard=branch_decode_guard, action=branch_decode_action,
                       produces=[branch_l1])
    net.add_transition("B", branch_net, source=branch_l2, target=branch_end,
                       action=branch_resolve_action, consumes=[branch_l1])

    # -- System instructions sub-net -------------------------------------------------
    system_net = net.add_subnet("system", opclasses=("system",))
    system_l1 = net.add_place("L1", system_net, entry=True)
    system_l2 = net.add_place("L2", system_net)
    system_end = net.add_place("end", system_net)

    def system_issue_guard(t, _ctx):
        return token_flags_ready(t)

    def system_issue_action(t, ctx):
        executed = condition_holds(t)
        t.annotations["executed"] = executed
        if executed and t.op == SystemOp.HALT:
            core.halt()
            ctx.flush_stage("L1")
            t.annotations["halt"] = True

    def system_retire_action(t, ctx):
        if t.annotations.get("halt"):
            ctx.stop("halt")

    net.add_transition("D_system", system_net, source=system_l1, target=system_l2,
                       guard=system_issue_guard, action=system_issue_action)
    net.add_transition("W_system", system_net, source=system_l2, target=system_end,
                       action=system_retire_action)

    options = resolve_engine_options(engine_options, backend)
    return Processor(net, decoder, core, memory, engine_options=options)
