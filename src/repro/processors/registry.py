"""Processor registry: named pipeline models, mirroring the workload registry.

Every entry couples a spec factory (the declarative
:class:`~repro.describe.PipelineSpec` description) with the builder that
elaborates it, so callers can either build a ready-to-run simulator
(:func:`build_processor`) or inspect/derive from the description itself
(:func:`get_spec`).  Third-party code can :func:`register_processor` its own
specs; the benchmark harness and the differential tests iterate
:func:`processor_names` so registered models are exercised automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import UnknownNameError
from repro.describe import elaborate
from repro.processors.example import build_example_processor, example_spec
from repro.processors.strongarm import build_strongarm_processor, strongarm_spec
from repro.processors.variants import (
    CACHE_SWEEP,
    arm7_mini_spec,
    strongarm_ds_spec,
    strongarm_l2_spec,
    xscale_deep_spec,
    xscale_ds_spec,
    xscale_l2_spec,
)
from repro.processors.xscale import build_xscale_processor, xscale_spec

#: Kernels every full-ISA model runs.  Models covering a subset of the ISA
#: declare the subset explicitly in their registry entry.
FULL_ISA = None


@dataclass(frozen=True)
class ProcessorEntry:
    """One registered model: its spec, builder and ISA coverage."""

    name: str
    builder: object
    spec_factory: object
    description: str = ""
    #: Workload names the model supports, or ``None`` for the full ISA.
    kernels: tuple = FULL_ISA
    #: Whether ``repro.analyze`` sweeps (``lint --all``, CI gating) include
    #: this model.  Deliberately-broken fixtures register with
    #: ``lint=False`` so they do not fail the clean-registry check; the
    #: analyzer can still lint them when named explicitly.
    lint: bool = True


_REGISTRY = {}


def register_processor(
    name, spec_factory=None, builder=None, description="", kernels=FULL_ISA,
    lint=True,
):
    """Register a model under ``name``.

    Either a ``spec_factory`` (a zero-argument callable returning a
    :class:`~repro.describe.PipelineSpec`) or an explicit ``builder`` must
    be given; with only a spec factory, the builder elaborates the spec
    with the standard semantics.
    """
    if spec_factory is None and builder is None:
        raise ValueError("register_processor needs a spec_factory or a builder")
    if builder is None:

        def builder(**kwargs):
            return elaborate(spec_factory(), **kwargs)

    entry = ProcessorEntry(
        name=name,
        builder=builder,
        spec_factory=spec_factory,
        description=description or (spec_factory().description if spec_factory else ""),
        kernels=tuple(kernels) if kernels is not FULL_ISA else FULL_ISA,
        lint=bool(lint),
    )
    _REGISTRY[name] = entry
    return entry


def processor_names():
    """All registered model names, in registration order."""
    return tuple(_REGISTRY)


def get_entry(name):
    """The :class:`ProcessorEntry` registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownNameError("processor", name, processor_names()) from None


def get_spec(name):
    """The declarative spec of a registered model (None for legacy builders)."""
    entry = get_entry(name)
    return entry.spec_factory() if entry.spec_factory is not None else None


def build_processor(name, **kwargs):
    """Build the named model; kwargs go to the builder (backend=..., etc.)."""
    return get_entry(name).builder(**kwargs)


def supported_kernels(name, all_kernels):
    """Filter ``all_kernels`` down to what the named model can execute."""
    entry = get_entry(name)
    if entry.kernels is FULL_ISA:
        return tuple(all_kernels)
    return tuple(k for k in all_kernels if k in entry.kernels)


# -- the shipped models -------------------------------------------------------
register_processor(
    "example",
    spec_factory=example_spec,
    builder=build_example_processor,
    # The Figure 4/5 model implements only the alu/mem/branch/system
    # classes; these kernels use no multiply or block transfer.
    kernels=("blowfish", "compress", "crc"),
)
register_processor(
    "strongarm", spec_factory=strongarm_spec, builder=build_strongarm_processor
)
register_processor("xscale", spec_factory=xscale_spec, builder=build_xscale_processor)
register_processor("arm7-mini", spec_factory=arm7_mini_spec)
register_processor("xscale-deep", spec_factory=xscale_deep_spec)
register_processor("strongarm-ds", spec_factory=strongarm_ds_spec)
register_processor("xscale-ds", spec_factory=xscale_ds_spec)
# Memory-hierarchy variants (Figure 12 cache-sensitivity family).
register_processor("strongarm-l2", spec_factory=strongarm_l2_spec)
register_processor("xscale-l2", spec_factory=xscale_l2_spec)
for _suffix, _factory in CACHE_SWEEP.items():
    register_processor("strongarm-%s" % _suffix, spec_factory=_factory)
