"""Pipeline description of the StrongARM SA-110 five-stage pipeline.

Pipeline stages (paper Section 5: "StrongArm has a simple five stage
pipeline"):

========  =====================================================
stage     what the instruction does there
========  =====================================================
``FD``    instruction fetched (latency = instruction cache)
``DE``    decoded, waiting to issue
``EM``    executed (ALU result / address generated / multiply)
``MW``    memory access or result buffer
``end``   retired (register writeback happens on the way out)
========  =====================================================

The model follows the paper's structure: one instruction-independent
sub-net (the fetch unit) plus six instruction sub-nets, one per ARM
operation class.  Data hazards use the RegRef protocol with forwarding from
the ``EM``/``MW`` stages; taken branches stall the fetch unit with a
reservation token exactly as in the paper's Figure 5 example — a dedicated
``FSTALL`` latch keeps the capacity of ``FD`` free for the redirected
fetch.

The whole model is a declarative :class:`~repro.describe.PipelineSpec`;
``repro.describe.elaborate`` wires the net and
:class:`~repro.describe.semantics.ArmSemantics` supplies the transition
behaviour.
"""

from __future__ import annotations

from repro.describe import (
    FetchSpec,
    HazardSpec,
    IssuePortSpec,
    IssueSpec,
    MemorySpec,
    OpClassPathSpec,
    PipelineSpec,
    PlaceSpec,
    PredictorSpec,
    StageSpec,
    TransitionSpec,
    elaborate,
    linear_path,
)

#: Pipeline states results can be forwarded from (bypass network).
FORWARD_STATES = ("EM", "MW")

#: Stages flushed when a control transfer redirects the front end.
FRONT_STAGES = ("FD",)

PIPELINE_STAGES = ("FD", "DE", "EM", "MW")


def _stagewise(opclass, role_names, hooks):
    """A FD→DE→EM→MW→end chain with StrongARM role-based transition names."""
    names = {stage: "%s.%s" % (opclass, role) for stage, role in role_names.items()}
    return linear_path(opclass, PIPELINE_STAGES, hooks=hooks, names=names)


def strongarm_spec(issue_width=1, name="StrongARM", memory=None):
    """The StrongARM model as a declarative pipeline description.

    ``issue_width`` parameterises the front end: the default of 1 is the
    SA-110 as the paper models it; ``issue_width=2`` widens every pipeline
    latch to two slots, fetches two words per cycle and issues in order
    through a dual-issue gate with a single data-cache port (the
    ``strongarm-ds`` registry entry, see ``repro.processors.variants``).
    ``memory`` parameterises the cache hierarchy (a
    :class:`~repro.describe.MemorySpec`; the default is the split 32 KB
    L1 organisation every golden statistic was captured with) — the
    ``strongarm-l2`` and cache-sweep registry entries are built this way.
    """
    alu = _stagewise(
        "alu",
        {"DE": "decode", "EM": "issue", "MW": "buffer", "end": "writeback"},
        hooks={"EM": "alu.issue", "MW": "alu.execute", "end": "alu.writeback"},
    )
    # The multiply executes while the token moves DE -> EM: the issue hook
    # and the latency-computing execute hook share one transition.
    mul = _stagewise(
        "mul",
        {"DE": "decode", "EM": "issue", "MW": "buffer", "end": "writeback"},
        hooks={"EM": ("mul.issue", "mul.execute"), "MW": "mul.buffer", "end": "mul.writeback"},
    )
    mem = _stagewise(
        "mem",
        {"DE": "decode", "EM": "issue", "MW": "access", "end": "writeback"},
        hooks={"EM": ("mem.issue", "mem.agen"), "MW": "mem.access", "end": "mem.writeback"},
    )
    memm = _stagewise(
        "memm",
        {"DE": "decode", "EM": "issue", "MW": "access", "end": "writeback"},
        hooks={"EM": ("memm.issue", "memm.agen"), "MW": "memm.access", "end": "memm.writeback"},
    )
    # Taken branches park a reservation token in the FSTALL latch, disabling
    # the fetch transition for one cycle (paper Figure 5 mechanism).
    branch = OpClassPathSpec(
        "branch",
        stages=PIPELINE_STAGES,
        extra_places=(PlaceSpec("stall", "FSTALL", name="branch.stall"),),
        transitions=(
            TransitionSpec("branch.decode", "FD", "DE"),
            TransitionSpec(
                "branch.taken", "DE", "EM",
                hooks="branch.taken", priority=0, produces=("stall",),
            ),
            TransitionSpec("branch.not_taken", "DE", "EM", hooks="branch.not_taken", priority=1),
            TransitionSpec("branch.unstall", "EM", "MW", consumes=("stall",), priority=0),
            TransitionSpec("branch.buffer", "EM", "MW", priority=1),
            TransitionSpec("branch.writeback", "MW", "end", hooks="branch.link_writeback"),
        ),
    )
    system = _stagewise(
        "system",
        {"DE": "decode", "EM": "issue", "MW": "buffer", "end": "retire"},
        hooks={"EM": "system.issue", "end": "system.retire"},
    )

    if issue_width == 1:
        issue = IssueSpec()
        front_flush = FRONT_STAGES
        description = "StrongARM SA-110 five-stage in-order pipeline (paper Section 5)"
    else:
        # Instructions issue out of DE in program order; a taken branch must
        # flush DE too, because a younger (wrong-path) instruction can now
        # share the decode stage with the branch that is issuing.
        issue = IssueSpec(
            width=issue_width,
            stage="DE",
            in_order=True,
            ports=(IssuePortSpec("dmem", classes=("mem", "memm")),),
        )
        front_flush = FRONT_STAGES + ("DE",)
        description = (
            "StrongARM-style pipeline widened to %d-issue: in-order dual "
            "issue out of DE, one data-cache port" % issue_width
        )
    return PipelineSpec(
        name=name,
        stages=tuple(StageSpec(stage, capacity=issue_width) for stage in PIPELINE_STAGES)
        + (StageSpec("FSTALL"),),
        paths=(alu, mul, mem, memm, branch, system),
        hazards=HazardSpec(
            forward_states=FORWARD_STATES,
            front_flush_stages=front_flush,
            # FSTALL is flushed too: a squashed wrong-path taken branch must
            # not leave its fetch-stall reservation behind (the kernels never
            # write the PC mid-pipe, but `mov pc, rN` style code does).
            redirect_flush_stages=("FD", "DE", "EM", "FSTALL"),
        ),
        fetch=FetchSpec(style="sequential", capacity_stage="FD", stall_stage="FSTALL"),
        predictor=PredictorSpec(kind="static_not_taken", unit_name="predictor"),
        issue=issue,
        memory=memory if memory is not None else MemorySpec(),
        description=description,
    )


def build_strongarm_processor(
    memory_config=None, engine_options=None, use_decode_cache=True, backend=None
):
    """Build the StrongARM model and generate its cycle-accurate simulator.

    ``backend`` selects the engine ("interpreted"/"compiled"), overriding
    ``engine_options.backend`` when given.
    """
    return elaborate(
        strongarm_spec(),
        memory_config=memory_config,
        engine_options=engine_options,
        use_decode_cache=use_decode_cache,
        backend=backend,
    )
