"""RCPN model of the StrongARM SA-110 five-stage pipeline.

Pipeline stages (paper Section 5: "StrongArm has a simple five stage
pipeline"):

========  =====================================================
stage     what the instruction does there
========  =====================================================
``FD``    instruction fetched (latency = instruction cache)
``DE``    decoded, waiting to issue
``EM``    executed (ALU result / address generated / multiply)
``MW``    memory access or result buffer
``end``   retired (register writeback happens on the way out)
========  =====================================================

The model follows the paper's structure: one instruction-independent
sub-net (the fetch unit) plus six instruction sub-nets, one per ARM
operation class.  Data hazards use the RegRef protocol with forwarding from
the ``EM``/``MW`` stages; taken branches stall the fetch unit with a
reservation token exactly as in the paper's Figure 5 example.
"""

from __future__ import annotations

from repro.core.engine import EngineOptions
from repro.isa.instructions import SystemOp
from repro.memory.branch_predictor import StaticNotTakenPredictor
from repro.processors.common import (
    Processor,
    block_transfer_addresses,
    compute_alu,
    compute_memory_address,
    compute_multiply,
    condition_holds,
    make_arm_model_parts,
    make_decoder,
    resolve_engine_options,
    operand_read,
    operand_ready,
    operands_ready,
    token_flags_ready,
)

#: Pipeline states results can be forwarded from (bypass network).
FORWARD_STATES = ("EM", "MW")

#: Stages flushed when a control transfer redirects the front end.
FRONT_STAGES = ("FD",)

PIPELINE_STAGES = ("FD", "DE", "EM", "MW")


def _add_pipeline_places(net, subnet, stages=PIPELINE_STAGES):
    """One place per pipeline stage plus the final place of the sub-net."""
    places = {}
    for index, stage in enumerate(stages):
        places[stage] = net.add_place(stage, subnet, entry=(index == 0))
    places["end"] = net.add_place("end", subnet)
    return places


def build_strongarm_processor(
    memory_config=None, engine_options=None, use_decode_cache=True, backend=None
):
    """Build the StrongARM model and generate its cycle-accurate simulator.

    ``backend`` selects the engine ("interpreted"/"compiled"), overriding
    ``engine_options.backend`` when given.
    """
    net, context, core, memory = make_arm_model_parts("StrongARM", memory_config)
    predictor = StaticNotTakenPredictor()
    net.add_unit("predictor", predictor)

    for stage in PIPELINE_STAGES:
        net.add_stage(stage, capacity=1, delay=1)
    # Fetch-stall stage: a reservation token parked here by a taken branch
    # disables the fetch transition for one cycle (paper Figure 5 uses the
    # L1 latch itself; a dedicated stall latch keeps the capacity of FD for
    # the redirected fetch).
    stall_stage = net.add_stage("FSTALL", capacity=1, delay=1)

    decoder = make_decoder(net, context, use_cache=use_decode_cache)

    # ------------------------------------------------------------------
    # Instruction-independent sub-net: the fetch unit.
    # ------------------------------------------------------------------
    fetch_net = net.add_subnet("fetch")

    def fetch_guard(_token, _ctx):
        return not core.halted and stall_stage.occupancy == 0

    def fetch_action(_token, ctx):
        pc = core.next_fetch()
        word = memory.read_word(pc)
        token = decoder.decode_word(word, pc=pc)
        token.delay = memory.instruction_delay(pc)
        ctx.emit(token)

    net.add_transition(
        "fetch",
        fetch_net,
        guard=fetch_guard,
        action=fetch_action,
        capacity_stages=["FD"],
    )

    # ------------------------------------------------------------------
    # ALU sub-net.
    # ------------------------------------------------------------------
    alu_net = net.add_subnet("alu", opclasses=("alu",))
    alu = _add_pipeline_places(net, alu_net)

    def alu_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if not operands_ready((t.s1, t.s2), FORWARD_STATES):
            return False
        if not t.d.can_write():
            return False
        if t.writes_flags and not t.fl.can_write():
            return False
        return True

    def alu_issue_action(t, _ctx):
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        operand_read(t.s1, FORWARD_STATES)
        operand_read(t.s2, FORWARD_STATES)
        t.d.reserve_write()
        if t.writes_flags:
            t.fl.reserve_write()

    def alu_execute_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        result, flags = compute_alu(t)
        if result is not None:
            t.d.value = result
        if flags is not None:
            t.fl.value = flags
        if t.writes_pc and result is not None:
            t.annotations["redirect"] = result

    def alu_writeback_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        if t.d.has_value:
            t.d.writeback()
        if t.writes_flags and t.fl.has_value:
            t.fl.writeback()
        if "redirect" in t.annotations:
            _redirect_from_back_end(ctx, core, t.annotations["redirect"])

    net.add_transition("alu.decode", alu_net, source=alu["FD"], target=alu["DE"])
    net.add_transition(
        "alu.issue", alu_net, source=alu["DE"], target=alu["EM"],
        guard=alu_issue_guard, action=alu_issue_action,
    )
    net.add_transition("alu.buffer", alu_net, source=alu["EM"], target=alu["MW"],
                       action=alu_execute_action)
    net.add_transition("alu.writeback", alu_net, source=alu["MW"], target=alu["end"],
                       action=alu_writeback_action)

    # ------------------------------------------------------------------
    # Multiply sub-net (early-termination multiplier in the execute stage).
    # ------------------------------------------------------------------
    mul_net = net.add_subnet("mul", opclasses=("mul",))
    mul = _add_pipeline_places(net, mul_net)

    def mul_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if not operands_ready((t.s1, t.s2, t.acc), FORWARD_STATES):
            return False
        if not t.d.can_write():
            return False
        if t.writes_flags and not t.fl.can_write():
            return False
        return True

    def mul_issue_action(t, _ctx):
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        operand_read(t.s1, FORWARD_STATES)
        operand_read(t.s2, FORWARD_STATES)
        operand_read(t.acc, FORWARD_STATES)
        t.d.reserve_write()
        if t.writes_flags:
            t.fl.reserve_write()

    def mul_execute_action(t, _ctx):
        # Fires when the token moves DE -> EM: the token delay models the
        # data-dependent latency of the early-termination multiplier.
        if not t.annotations.get("executed"):
            return
        result, flags, cycles = compute_multiply(t)
        t.annotations["result"] = result
        t.annotations["flags"] = flags
        t.delay = cycles

    def mul_buffer_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        t.d.value = t.annotations["result"]
        if t.annotations["flags"] is not None:
            t.fl.value = t.annotations["flags"]

    def mul_writeback_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        t.d.writeback()
        if t.writes_flags and t.fl.has_value:
            t.fl.writeback()

    net.add_transition("mul.decode", mul_net, source=mul["FD"], target=mul["DE"])
    net.add_transition("mul.issue", mul_net, source=mul["DE"], target=mul["EM"],
                       guard=mul_issue_guard, action=mul_issue_action)
    # The issue transition computed nothing yet; the multiply executes while
    # the token resides in EM (see mul_execute_action attached here).
    net.add_transition("mul.buffer", mul_net, source=mul["EM"], target=mul["MW"],
                       action=mul_buffer_action)
    net.add_transition("mul.writeback", mul_net, source=mul["MW"], target=mul["end"],
                       action=mul_writeback_action)
    # Attach the latency computation to the issue transition's action chain.
    _chain_action(net, "mul.issue", mul_execute_action)

    # ------------------------------------------------------------------
    # Load/store sub-net.
    # ------------------------------------------------------------------
    mem_net = net.add_subnet("mem", opclasses=("mem",))
    mem = _add_pipeline_places(net, mem_net)

    def mem_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        sources = [t.base, t.offset]
        if not t.L:
            sources.append(t.r)
        if not operands_ready(sources, FORWARD_STATES):
            return False
        if t.L and not t.r.can_write():
            return False
        if t.updates_base and not t.base.can_write():
            return False
        return True

    def mem_issue_action(t, _ctx):
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        operand_read(t.base, FORWARD_STATES)
        operand_read(t.offset, FORWARD_STATES)
        if t.L:
            t.r.reserve_write()
        else:
            operand_read(t.r, FORWARD_STATES)
        if t.updates_base:
            t.base.reserve_write()

    def mem_execute_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        address, updated = compute_memory_address(t)
        t.annotations["address"] = address
        if t.updates_base:
            # The updated base is an ALU-style result: make it available to
            # dependents through the bypass network right away.
            t.annotations["updated_base"] = updated
            t.base.value = updated

    def mem_access_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        address = t.annotations["address"]
        t.delay = memory.data_delay(address, is_write=not t.L)
        if not t.L:
            value = t.r.value or 0
            if t.byte:
                memory.write_byte(address, value & 0xFF)
            else:
                memory.write_word(address, value)

    def mem_writeback_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        if t.L:
            address = t.annotations["address"]
            value = memory.read_byte(address) if t.byte else memory.read_word(address)
            t.r.value = value
            t.r.writeback()
            if t.writes_pc:
                _redirect_from_back_end(ctx, core, value)
        if t.updates_base:
            t.base.value = t.annotations["updated_base"]
            t.base.writeback()

    net.add_transition("mem.decode", mem_net, source=mem["FD"], target=mem["DE"])
    net.add_transition("mem.issue", mem_net, source=mem["DE"], target=mem["EM"],
                       guard=mem_issue_guard, action=mem_issue_action)
    _chain_action(net, "mem.issue", mem_execute_action)
    net.add_transition("mem.access", mem_net, source=mem["EM"], target=mem["MW"],
                       action=mem_access_action)
    net.add_transition("mem.writeback", mem_net, source=mem["MW"], target=mem["end"],
                       action=mem_writeback_action)

    # ------------------------------------------------------------------
    # Block-transfer sub-net (LDM/STM): multi-cycle in the memory stage.
    # ------------------------------------------------------------------
    memm_net = net.add_subnet("memm", opclasses=("memm",))
    memm = _add_pipeline_places(net, memm_net)

    def memm_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if not operand_ready(t.base, FORWARD_STATES):
            return False
        if t.L:
            if not all(reg.can_write() for reg in t.regs):
                return False
        else:
            if not operands_ready(t.regs, FORWARD_STATES):
                return False
        if t.updates_base and not t.base.can_write():
            return False
        return True

    def memm_issue_action(t, _ctx):
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        operand_read(t.base, FORWARD_STATES)
        if t.L:
            for reg in t.regs:
                reg.reserve_write()
        else:
            for reg in t.regs:
                operand_read(reg, FORWARD_STATES)
        if t.updates_base:
            t.base.reserve_write()

    def memm_execute_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        addresses, new_base = block_transfer_addresses(t)
        t.annotations["addresses"] = addresses
        if t.updates_base:
            t.annotations["updated_base"] = new_base
            t.base.value = new_base

    def memm_access_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        addresses = t.annotations["addresses"]
        latency = 0
        for index, address in enumerate(addresses):
            latency += memory.data_delay(address, is_write=not t.L)
            if not t.L:
                memory.write_word(address, t.regs[index].value or 0)
        # One transfer per cycle: the block occupies the memory stage for
        # at least one cycle per register.
        t.delay = max(latency, len(addresses))

    def memm_writeback_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        if t.L:
            redirect = None
            for index, address in enumerate(t.annotations["addresses"]):
                value = memory.read_word(address)
                reg = t.regs[index]
                reg.value = value
                reg.writeback()
                if t.reg_indices[index] == 15:
                    redirect = value
            if redirect is not None:
                _redirect_from_back_end(ctx, core, redirect)
        if t.updates_base:
            t.base.value = t.annotations["updated_base"]
            t.base.writeback()

    net.add_transition("memm.decode", memm_net, source=memm["FD"], target=memm["DE"])
    net.add_transition("memm.issue", memm_net, source=memm["DE"], target=memm["EM"],
                       guard=memm_issue_guard, action=memm_issue_action)
    _chain_action(net, "memm.issue", memm_execute_action)
    net.add_transition("memm.access", memm_net, source=memm["EM"], target=memm["MW"],
                       action=memm_access_action)
    net.add_transition("memm.writeback", memm_net, source=memm["MW"], target=memm["end"],
                       action=memm_writeback_action)

    # ------------------------------------------------------------------
    # Branch sub-net: not-taken prediction; taken branches stall the fetch
    # unit with a reservation token (paper Figure 5).
    # ------------------------------------------------------------------
    branch_net = net.add_subnet("branch", opclasses=("branch",))
    branch = _add_pipeline_places(net, branch_net)
    branch_stall = net.add_place("FSTALL", branch_net, name="branch.stall")

    def branch_taken_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if t.link and not t.lr.can_write():
            return False
        return condition_holds(t, FORWARD_STATES)

    def branch_taken_action(t, ctx):
        t.annotations["executed"] = True
        t.annotations["taken"] = True
        target = (t.pc + 8 + 4 * t.offset.value) & 0xFFFFFFFF
        predictor.record(t.pc, True)
        for stage in FRONT_STAGES:
            ctx.flush_stage(stage)
        core.redirect(target)
        if t.link:
            t.lr.reserve_write()
            t.lr.value = (t.pc + 4) & 0xFFFFFFFF

    def branch_not_taken_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if t.link and not t.lr.can_write():
            return False
        return True

    def branch_not_taken_action(t, ctx):
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        t.annotations["taken"] = False
        predictor.record(t.pc, False)
        if executed and t.link:
            # An unconditional BL always takes the taken path; reaching here
            # means the condition failed, so no link write is needed.
            pass

    def branch_writeback_action(t, _ctx):
        if t.annotations.get("taken") and t.link:
            t.lr.writeback()

    net.add_transition("branch.decode", branch_net, source=branch["FD"], target=branch["DE"])
    net.add_transition(
        "branch.taken", branch_net, source=branch["DE"], target=branch["EM"],
        guard=branch_taken_guard, action=branch_taken_action,
        priority=0, produces=[branch_stall],
    )
    net.add_transition(
        "branch.not_taken", branch_net, source=branch["DE"], target=branch["EM"],
        guard=branch_not_taken_guard, action=branch_not_taken_action, priority=1,
    )
    net.add_transition(
        "branch.unstall", branch_net, source=branch["EM"], target=branch["MW"],
        consumes=[branch_stall], priority=0,
    )
    net.add_transition(
        "branch.buffer", branch_net, source=branch["EM"], target=branch["MW"], priority=1,
    )
    net.add_transition("branch.writeback", branch_net, source=branch["MW"], target=branch["end"],
                       action=branch_writeback_action)

    # ------------------------------------------------------------------
    # System sub-net (SWI / HALT / NOP).
    # ------------------------------------------------------------------
    system_net = net.add_subnet("system", opclasses=("system",))
    system = _add_pipeline_places(net, system_net)

    def system_issue_guard(t, _ctx):
        return token_flags_ready(t, FORWARD_STATES)

    def system_issue_action(t, ctx):
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        if t.op == SystemOp.HALT:
            core.halt()
            for stage in FRONT_STAGES:
                ctx.flush_stage(stage)
            t.annotations["halt"] = True
        elif t.op == SystemOp.SWI:
            t.annotations["syscall"] = t.imm

    def system_retire_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        if t.annotations.get("syscall") == 1:
            core_output = getattr(core, "output", None)
            if core_output is None:
                core.output = []
            core.output.append(net.register_files["gpr"].data[0])
        if t.annotations.get("halt"):
            ctx.stop("halt")

    net.add_transition("system.decode", system_net, source=system["FD"], target=system["DE"])
    net.add_transition("system.issue", system_net, source=system["DE"], target=system["EM"],
                       guard=system_issue_guard, action=system_issue_action)
    net.add_transition("system.buffer", system_net, source=system["EM"], target=system["MW"])
    net.add_transition("system.retire", system_net, source=system["MW"], target=system["end"],
                       action=system_retire_action)

    options = resolve_engine_options(engine_options, backend)
    return Processor(net, decoder, core, memory, engine_options=options)


def _redirect_from_back_end(ctx, core, target):
    """Redirect fetching after a PC write deep in the pipeline.

    Every younger instruction still in the pipe is on the wrong path, so all
    upstream stages are flushed.
    """
    for stage in ("FD", "DE", "EM"):
        ctx.flush_stage(stage)
    core.redirect(target)


def _chain_action(net, transition_name, extra_action):
    """Append ``extra_action`` to an existing transition's action."""
    for transition in net.transitions:
        if transition.name == transition_name:
            original = transition.action

            def chained(token, ctx, _original=original, _extra=extra_action):
                if _original is not None:
                    _original(token, ctx)
                _extra(token, ctx)

            transition.action = chained
            return
    raise KeyError("unknown transition %r" % transition_name)
