"""Spec-defined pipeline variants.

These models exist to demonstrate the point of the description layer: once
the hook semantics are shared, a new pipeline is a page of declarative spec,
not a page of guard/action closures per operation class.

* :func:`arm7_mini_spec` — a three-stage scalar pipeline (fetch/decode,
  execute, writeback) in the spirit of the ARM7TDMI: every operation class
  shares the single execute stage, taken branches stall fetch with a
  reservation token, results forward from EX/WB.
* :func:`xscale_deep_spec` — the XScale model with the main integer pipe
  deepened by one execute stage (eight stages front to back), obtained by
  *parameterising* :func:`repro.processors.xscale.xscale_spec` rather than
  restating it.  Deeper pipe, same side pipes, same predictor: branchy
  codes pay a higher misprediction bill.
* :func:`strongarm_ds_spec` / :func:`xscale_ds_spec` — dual-issue
  ("superscalar") variants of the two paper models, again obtained by
  parameterising the parent spec: an
  :class:`~repro.describe.IssueSpec` widens fetch/decode to two slots and
  issues in program order through per-class issue ports.  The paper's
  claim that RCPN covers multi-issue pipelines with the same formalism is
  exercised by these two entries — the differential and golden tests run
  them like any other registered model.
* :func:`strongarm_l2_spec` / :func:`xscale_l2_spec` and the
  :data:`CACHE_SWEEP` family — memory-hierarchy variants built by handing
  the parent spec a :class:`~repro.describe.MemorySpec`: a small split L1
  whose capacity misses are served by a shared L2 (the ``-l2`` entries)
  or go straight to memory (the ``-c512``/``-c2k``/``-c8k`` sweep points
  the Figure 12 cache-sensitivity campaign compares).
"""

from __future__ import annotations

from repro.describe import (
    CacheLevelSpec,
    FetchSpec,
    HazardSpec,
    MemorySpec,
    OpClassPathSpec,
    PipelineSpec,
    PlaceSpec,
    PredictorSpec,
    StageSpec,
    TransitionSpec,
    linear_path,
)
from repro.processors.strongarm import strongarm_spec
from repro.processors.xscale import MAC_STAGES, MEMORY_STAGES, xscale_spec

MINI_STAGES = ("FD", "EX", "WB")


def arm7_mini_spec():
    """A minimal three-stage scalar ARM pipeline, written as a spec."""

    def chain(opclass, hooks, roles):
        names = {
            stage: "%s.%s" % (opclass, role)
            for stage, role in zip(("EX", "WB", "end"), roles)
        }
        return linear_path(opclass, MINI_STAGES, hooks=hooks, names=names)

    alu = chain(
        "alu",
        {"EX": "alu.issue", "WB": "alu.execute", "end": "alu.writeback"},
        ("issue", "execute", "writeback"),
    )
    mul = chain(
        "mul",
        {"EX": ("mul.issue", "mul.execute"), "WB": "mul.buffer", "end": "mul.writeback"},
        ("issue", "buffer", "writeback"),
    )
    mem = chain(
        "mem",
        {"EX": ("mem.issue", "mem.agen"), "WB": "mem.access", "end": "mem.writeback"},
        ("issue", "access", "writeback"),
    )
    memm = chain(
        "memm",
        {"EX": ("memm.issue", "memm.agen"), "WB": "memm.access", "end": "memm.writeback"},
        ("issue", "access", "writeback"),
    )
    branch = OpClassPathSpec(
        "branch",
        stages=MINI_STAGES,
        extra_places=(PlaceSpec("stall", "FSTALL", name="branch.stall"),),
        transitions=(
            TransitionSpec("branch.taken", "FD", "EX",
                           hooks="branch.taken", priority=0, produces=("stall",)),
            TransitionSpec("branch.not_taken", "FD", "EX",
                           hooks="branch.not_taken", priority=1),
            TransitionSpec("branch.unstall", "EX", "WB", consumes=("stall",), priority=0),
            TransitionSpec("branch.buffer", "EX", "WB", priority=1),
            TransitionSpec("branch.writeback", "WB", "end", hooks="branch.link_writeback"),
        ),
    )
    system = linear_path(
        "system", MINI_STAGES,
        hooks={"EX": "system.issue", "end": "system.retire"},
        names={"EX": "system.issue", "WB": "system.buffer", "end": "system.retire"},
    )

    return PipelineSpec(
        name="ARM7Mini",
        stages=tuple(StageSpec(name) for name in MINI_STAGES) + (StageSpec("FSTALL"),),
        paths=(alu, mul, mem, memm, branch, system),
        hazards=HazardSpec(
            forward_states=("EX", "WB"),
            front_flush_stages=("FD",),
            # FSTALL included so a squashed taken branch's fetch-stall
            # reservation is withdrawn with it (see strongarm_spec).
            redirect_flush_stages=("FD", "EX", "FSTALL"),
        ),
        fetch=FetchSpec(style="sequential", capacity_stage="FD", stall_stage="FSTALL"),
        predictor=PredictorSpec(kind="static_not_taken", unit_name="predictor"),
        description="three-stage scalar ARM pipeline (ARM7-style), defined as a spec",
    )


DEEP_MAIN_STAGES = ("F1", "F2", "ID", "RF", "X1", "X2", "X3", "XWB")


def xscale_deep_spec():
    """XScale with a deepened (8-stage) main integer pipe."""
    return xscale_spec(
        main_stages=DEEP_MAIN_STAGES,
        forward_states=("X2", "X3", "XWB") + tuple(MEMORY_STAGES[1:]) + tuple(MAC_STAGES[1:]),
        name="XScaleDeep",
    )


def strongarm_ds_spec():
    """Dual-issue StrongARM: two-wide fetch/issue, one data-cache port."""
    return strongarm_spec(issue_width=2, name="StrongARM-DS")


def xscale_ds_spec():
    """Dual-issue XScale: X pipe pairs with the memory or MAC side pipe."""
    return xscale_spec(issue_width=2, name="XScale-DS")


# ---------------------------------------------------------------------------
# Memory-hierarchy variants (Figure 12 cache-sensitivity family)
# ---------------------------------------------------------------------------

#: The shared second level of the ``-l2`` variants: large enough to hold
#: every working set the kernels have, cheap enough (6 vs 30 cycles) that a
#: capacity miss served by it is visibly cheaper than a trip to memory.
L2_LEVEL = CacheLevelSpec(
    name="L2", size_bytes=16 * 1024, line_bytes=32, associativity=8, hit_latency=6
)


def small_l1_memory(size_bytes, associativity, l2=None):
    """A split L1 of the given geometry, optionally backed by a shared L2.

    The kernels' data working sets overflow sub-kilobyte L1s (blowfish's
    S-box alone is 1 KB), which is exactly what the cache-sensitivity
    sweep needs: capacity misses whose cost depends on what backs the L1.
    """
    return MemorySpec(
        l1_instruction=CacheLevelSpec(
            name="I$", size_bytes=size_bytes, line_bytes=32, associativity=associativity
        ),
        l1_data=CacheLevelSpec(
            name="D$", size_bytes=size_bytes, line_bytes=32, associativity=associativity
        ),
        l2=l2,
    )


def strongarm_l2_spec():
    """StrongARM with a 512 B direct-mapped split L1 and a shared 16 KB L2."""
    return strongarm_spec(
        name="StrongARM-L2", memory=small_l1_memory(512, 1, l2=L2_LEVEL)
    )


def xscale_l2_spec():
    """XScale with a 512 B direct-mapped split L1 and a shared 16 KB L2."""
    return xscale_spec(name="XScale-L2", memory=small_l1_memory(512, 1, l2=L2_LEVEL))


def _cache_sweep_spec(label, size_bytes, associativity):
    def factory():
        return strongarm_spec(
            name="StrongARM-C%s" % label.upper(),
            memory=small_l1_memory(size_bytes, associativity),
        )

    factory.__name__ = "strongarm_c%s_spec" % label
    factory.__doc__ = (
        "StrongARM with a %d-byte %d-way split L1, misses served by memory."
        % (size_bytes, associativity)
    )
    return factory


#: The cache-geometry sweep family: registry suffix -> spec factory.  The
#: 512 B point shares its L1 geometry with the ``-l2`` variants, so the
#: ``strongarm-c512`` / ``strongarm-l2`` pair isolates exactly the cost of
#: a miss (L2 fill vs memory fill) on identical miss streams.
CACHE_SWEEP = {
    "c512": _cache_sweep_spec("c512", 512, 1),
    "c2k": _cache_sweep_spec("c2k", 2 * 1024, 2),
    "c8k": _cache_sweep_spec("c8k", 8 * 1024, 4),
}
