"""RCPN model of the Intel XScale pipeline (paper Figure 9).

XScale is an in-order-issue, out-of-order-completion processor with a
seven-stage main pipeline and two side pipes:

* main pipe:   ``F1 F2 ID RF X1 X2 XWB``  (fetch, fetch, decode, register
  file / issue, execute, execute 2, writeback),
* memory pipe: ``... RF D1 D2 DWB`` (address generation, data cache, writeback),
* MAC pipe:    ``... RF M1 M2 MWB`` (multiplier stages, writeback).

Because the three pipes have different depths and data-dependent latencies
(cache misses, early-termination multiplies), instructions complete out of
order; the RegRef write-reservation protocol keeps the architectural state
correct, exactly as the paper describes for its XScale model.

Branches are predicted with a branch target buffer looked up at fetch time
and resolved at issue; a misprediction flushes the front end (four-cycle
penalty).
"""

from __future__ import annotations

from repro.core.engine import EngineOptions
from repro.isa.instructions import SystemOp
from repro.memory.branch_predictor import BranchTargetBuffer
from repro.processors.common import (
    Processor,
    block_transfer_addresses,
    compute_alu,
    compute_memory_address,
    compute_multiply,
    condition_holds,
    make_arm_model_parts,
    make_decoder,
    resolve_engine_options,
    operand_read,
    operand_ready,
    operands_ready,
    token_flags_ready,
)

#: Pipeline states whose pending results may be forwarded to the issue stage.
FORWARD_STATES = ("X2", "XWB", "D2", "DWB", "M2", "MWB")

#: Front-end stages flushed on a branch misprediction.
FRONT_STAGES = ("F1", "F2", "ID")

MAIN_STAGES = ("F1", "F2", "ID", "RF", "X1", "X2", "XWB")
MEMORY_STAGES = ("D1", "D2", "DWB")
MAC_STAGES = ("M1", "M2", "MWB")
FRONT_END = ("F1", "F2", "ID", "RF")


def _build_chain(net, subnet, stages, hooks=None):
    """Create a linear chain of places/transitions for one sub-net.

    ``stages`` is the ordered list of stage names the instruction passes
    through; ``hooks`` maps a destination stage name (or ``"end"``) to a
    ``(guard, action)`` pair attached to the transition entering it.
    """
    hooks = hooks or {}
    places = {}
    for index, stage in enumerate(stages):
        places[stage] = net.add_place(stage, subnet, entry=(index == 0))
    places["end"] = net.add_place("end", subnet)

    path = list(stages) + ["end"]
    for source, destination in zip(path, path[1:]):
        guard, action = hooks.get(destination, (None, None))
        net.add_transition(
            "%s.%s_%s" % (subnet.name, source, destination),
            subnet,
            source=places[source],
            target=places[destination],
            guard=guard,
            action=action,
        )
    return places


def build_xscale_processor(
    memory_config=None, engine_options=None, use_decode_cache=True, backend=None
):
    """Build the XScale model and generate its cycle-accurate simulator.

    ``backend`` selects the engine ("interpreted"/"compiled"), overriding
    ``engine_options.backend`` when given.
    """
    net, context, core, memory = make_arm_model_parts("XScale", memory_config)
    btb = BranchTargetBuffer(entries=128)
    net.add_unit("btb", btb)

    for stage in MAIN_STAGES + MEMORY_STAGES + MAC_STAGES:
        net.add_stage(stage, capacity=1, delay=1)

    decoder = make_decoder(net, context, use_cache=use_decode_cache)

    # ------------------------------------------------------------------
    # Instruction-independent sub-net: fetch with BTB lookup.
    # ------------------------------------------------------------------
    fetch_net = net.add_subnet("fetch")

    def fetch_guard(_token, _ctx):
        return not core.halted

    def fetch_action(_token, ctx):
        pc = core.fetch_pc
        hit, predicted_taken, predicted_target = btb.lookup(pc)
        word = memory.read_word(pc)
        token = decoder.decode_word(word, pc=pc)
        token.delay = memory.instruction_delay(pc)
        token.annotations["predicted_taken"] = bool(hit and predicted_taken)
        if hit and predicted_taken:
            core.redirect(predicted_target)
        else:
            core.redirect(pc + 4)
        core.sequence += 1
        ctx.emit(token)

    net.add_transition(
        "fetch", fetch_net, guard=fetch_guard, action=fetch_action, capacity_stages=["F1"],
    )

    def front_end_flush(ctx):
        for stage in FRONT_STAGES:
            ctx.flush_stage(stage)

    def backend_redirect(ctx, target):
        """Redirect after a PC write deep in a pipe (load to PC and similar)."""
        for stage in FRONT_END:
            ctx.flush_stage(stage)
        core.redirect(target)

    # ------------------------------------------------------------------
    # ALU sub-net (main pipe).
    # ------------------------------------------------------------------
    alu_net = net.add_subnet("alu", opclasses=("alu",))

    def alu_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if not operands_ready((t.s1, t.s2), FORWARD_STATES):
            return False
        if not t.d.can_write():
            return False
        if t.writes_flags and not t.fl.can_write():
            return False
        return True

    def alu_issue_action(t, ctx):
        if t.annotations.get("predicted_taken"):
            # A BTB alias redirected fetch after a non-branch: recover.
            backend_redirect(ctx, (t.pc + 4) & 0xFFFFFFFF)
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        operand_read(t.s1, FORWARD_STATES)
        operand_read(t.s2, FORWARD_STATES)
        t.d.reserve_write()
        if t.writes_flags:
            t.fl.reserve_write()

    def alu_execute_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        result, flags = compute_alu(t)
        if result is not None:
            t.d.value = result
        if flags is not None:
            t.fl.value = flags
        if t.writes_pc and result is not None:
            t.annotations["redirect"] = result

    def alu_writeback_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        if t.d.has_value:
            t.d.writeback()
        if t.writes_flags and t.fl.has_value:
            t.fl.writeback()
        if "redirect" in t.annotations:
            backend_redirect(ctx, t.annotations["redirect"])

    _build_chain(
        net, alu_net, MAIN_STAGES,
        hooks={
            "X1": (alu_issue_guard, alu_issue_action),
            "X2": (None, alu_execute_action),
            "end": (None, alu_writeback_action),
        },
    )

    # ------------------------------------------------------------------
    # Multiply sub-net (MAC pipe).
    # ------------------------------------------------------------------
    mul_net = net.add_subnet("mul", opclasses=("mul",))

    def mul_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if not operands_ready((t.s1, t.s2, t.acc), FORWARD_STATES):
            return False
        if not t.d.can_write():
            return False
        if t.writes_flags and not t.fl.can_write():
            return False
        return True

    def mul_issue_action(t, ctx):
        if t.annotations.get("predicted_taken"):
            backend_redirect(ctx, (t.pc + 4) & 0xFFFFFFFF)
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        operand_read(t.s1, FORWARD_STATES)
        operand_read(t.s2, FORWARD_STATES)
        operand_read(t.acc, FORWARD_STATES)
        t.d.reserve_write()
        if t.writes_flags:
            t.fl.reserve_write()

    def mul_execute_action(t, _ctx):
        # M1 -> M2: the MAC array iterates for 1-4 cycles (early termination).
        if not t.annotations.get("executed"):
            return
        result, flags, cycles = compute_multiply(t)
        t.annotations["result"] = result
        t.annotations["flags"] = flags
        t.delay = cycles

    def mul_complete_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        t.d.value = t.annotations["result"]
        if t.annotations["flags"] is not None:
            t.fl.value = t.annotations["flags"]

    def mul_writeback_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        t.d.writeback()
        if t.writes_flags and t.fl.has_value:
            t.fl.writeback()

    _build_chain(
        net, mul_net, FRONT_END + MAC_STAGES,
        hooks={
            "M1": (mul_issue_guard, mul_issue_action),
            "M2": (None, mul_execute_action),
            "MWB": (None, mul_complete_action),
            "end": (None, mul_writeback_action),
        },
    )

    # ------------------------------------------------------------------
    # Load/store sub-net (memory pipe).
    # ------------------------------------------------------------------
    mem_net = net.add_subnet("mem", opclasses=("mem",))

    def mem_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        sources = [t.base, t.offset]
        if not t.L:
            sources.append(t.r)
        if not operands_ready(sources, FORWARD_STATES):
            return False
        if t.L and not t.r.can_write():
            return False
        if t.updates_base and not t.base.can_write():
            return False
        return True

    def mem_issue_action(t, ctx):
        if t.annotations.get("predicted_taken"):
            backend_redirect(ctx, (t.pc + 4) & 0xFFFFFFFF)
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        operand_read(t.base, FORWARD_STATES)
        operand_read(t.offset, FORWARD_STATES)
        if t.L:
            t.r.reserve_write()
        else:
            operand_read(t.r, FORWARD_STATES)
        if t.updates_base:
            t.base.reserve_write()

    def mem_agen_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        address, updated = compute_memory_address(t)
        t.annotations["address"] = address
        if t.updates_base:
            t.annotations["updated_base"] = updated
            t.base.value = updated

    def mem_access_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        address = t.annotations["address"]
        t.delay = memory.data_delay(address, is_write=not t.L)
        if not t.L:
            value = t.r.value or 0
            if t.byte:
                memory.write_byte(address, value & 0xFF)
            else:
                memory.write_word(address, value)

    def mem_writeback_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        if t.L:
            address = t.annotations["address"]
            value = memory.read_byte(address) if t.byte else memory.read_word(address)
            t.r.value = value
            t.r.writeback()
            if t.writes_pc:
                backend_redirect(ctx, value)
        if t.updates_base:
            t.base.value = t.annotations["updated_base"]
            t.base.writeback()

    _build_chain(
        net, mem_net, FRONT_END + MEMORY_STAGES,
        hooks={
            "D1": (mem_issue_guard, mem_issue_action),
            "D2": (None, mem_agen_action),
            "DWB": (None, mem_access_action),
            "end": (None, mem_writeback_action),
        },
    )

    # ------------------------------------------------------------------
    # Block-transfer sub-net: multi-cycle occupation of the memory pipe.
    # ------------------------------------------------------------------
    memm_net = net.add_subnet("memm", opclasses=("memm",))

    def memm_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if not operand_ready(t.base, FORWARD_STATES):
            return False
        if t.L:
            if not all(reg.can_write() for reg in t.regs):
                return False
        else:
            if not operands_ready(t.regs, FORWARD_STATES):
                return False
        if t.updates_base and not t.base.can_write():
            return False
        return True

    def memm_issue_action(t, ctx):
        if t.annotations.get("predicted_taken"):
            backend_redirect(ctx, (t.pc + 4) & 0xFFFFFFFF)
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        operand_read(t.base, FORWARD_STATES)
        if t.L:
            for reg in t.regs:
                reg.reserve_write()
        else:
            for reg in t.regs:
                operand_read(reg, FORWARD_STATES)
        if t.updates_base:
            t.base.reserve_write()

    def memm_agen_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        addresses, new_base = block_transfer_addresses(t)
        t.annotations["addresses"] = addresses
        if t.updates_base:
            t.annotations["updated_base"] = new_base
            t.base.value = new_base

    def memm_access_action(t, _ctx):
        if not t.annotations.get("executed"):
            return
        addresses = t.annotations["addresses"]
        latency = 0
        for index, address in enumerate(addresses):
            latency += memory.data_delay(address, is_write=not t.L)
            if not t.L:
                memory.write_word(address, t.regs[index].value or 0)
        t.delay = max(latency, len(addresses))

    def memm_writeback_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        if t.L:
            redirect = None
            for index, address in enumerate(t.annotations["addresses"]):
                value = memory.read_word(address)
                reg = t.regs[index]
                reg.value = value
                reg.writeback()
                if t.reg_indices[index] == 15:
                    redirect = value
            if redirect is not None:
                backend_redirect(ctx, redirect)
        if t.updates_base:
            t.base.value = t.annotations["updated_base"]
            t.base.writeback()

    _build_chain(
        net, memm_net, FRONT_END + MEMORY_STAGES,
        hooks={
            "D1": (memm_issue_guard, memm_issue_action),
            "D2": (None, memm_agen_action),
            "DWB": (None, memm_access_action),
            "end": (None, memm_writeback_action),
        },
    )

    # ------------------------------------------------------------------
    # Branch sub-net: BTB-predicted, resolved at issue.
    # ------------------------------------------------------------------
    branch_net = net.add_subnet("branch", opclasses=("branch",))

    def branch_issue_guard(t, _ctx):
        if not token_flags_ready(t, FORWARD_STATES):
            return False
        if t.link and not t.lr.can_write():
            return False
        return True

    def branch_issue_action(t, ctx):
        executed = condition_holds(t, FORWARD_STATES)
        taken = executed
        target = (t.pc + 8 + 4 * t.offset.value) & 0xFFFFFFFF
        fallthrough = (t.pc + 4) & 0xFFFFFFFF
        predicted_taken = bool(t.annotations.get("predicted_taken"))
        t.annotations["executed"] = executed
        t.annotations["taken"] = taken

        btb.record_outcome(predicted_taken, taken)
        btb.update(t.pc, taken, target)
        mispredicted = predicted_taken != taken
        if mispredicted:
            front_end_flush(ctx)
            core.redirect(target if taken else fallthrough)
        if taken and t.link:
            t.lr.reserve_write()
            t.lr.value = (t.pc + 4) & 0xFFFFFFFF

    def branch_writeback_action(t, _ctx):
        if t.annotations.get("taken") and t.link:
            t.lr.writeback()

    _build_chain(
        net, branch_net, FRONT_END + ("X1",),
        hooks={
            "X1": (branch_issue_guard, branch_issue_action),
            "end": (None, branch_writeback_action),
        },
    )

    # ------------------------------------------------------------------
    # System sub-net.
    # ------------------------------------------------------------------
    system_net = net.add_subnet("system", opclasses=("system",))

    def system_issue_guard(t, _ctx):
        return token_flags_ready(t, FORWARD_STATES)

    def system_issue_action(t, ctx):
        if t.annotations.get("predicted_taken"):
            backend_redirect(ctx, (t.pc + 4) & 0xFFFFFFFF)
        executed = condition_holds(t, FORWARD_STATES)
        t.annotations["executed"] = executed
        if not executed:
            return
        if t.op == SystemOp.HALT:
            core.halt()
            front_end_flush(ctx)
            t.annotations["halt"] = True
        elif t.op == SystemOp.SWI:
            t.annotations["syscall"] = t.imm

    def system_retire_action(t, ctx):
        if not t.annotations.get("executed"):
            return
        if t.annotations.get("syscall") == 1:
            output = getattr(core, "output", None)
            if output is None:
                core.output = output = []
            output.append(net.register_files["gpr"].data[0])
        if t.annotations.get("halt"):
            ctx.stop("halt")

    _build_chain(
        net, system_net, FRONT_END + ("X1",),
        hooks={
            "X1": (system_issue_guard, system_issue_action),
            "end": (None, system_retire_action),
        },
    )

    options = resolve_engine_options(engine_options, backend)
    return Processor(net, decoder, core, memory, engine_options=options)
