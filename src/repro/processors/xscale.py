"""Pipeline description of the Intel XScale pipeline (paper Figure 9).

XScale is an in-order-issue, out-of-order-completion processor with a
seven-stage main pipeline and two side pipes:

* main pipe:   ``F1 F2 ID RF X1 X2 XWB``  (fetch, fetch, decode, register
  file / issue, execute, execute 2, writeback),
* memory pipe: ``... RF D1 D2 DWB`` (address generation, data cache, writeback),
* MAC pipe:    ``... RF M1 M2 MWB`` (multiplier stages, writeback).

Because the three pipes have different depths and data-dependent latencies
(cache misses, early-termination multiplies), instructions complete out of
order; the RegRef write-reservation protocol keeps the architectural state
correct, exactly as the paper describes for its XScale model.

Branches are predicted with a branch target buffer looked up at fetch time
and resolved at issue; a misprediction flushes the front end (four-cycle
penalty).  The model is a declarative
:class:`~repro.describe.PipelineSpec`: each pipe is one
:func:`~repro.describe.linear_path` with hooks at the stages that do work.
"""

from __future__ import annotations

from repro.describe import (
    FetchSpec,
    HazardSpec,
    IssuePortSpec,
    IssueSpec,
    MemorySpec,
    PipelineSpec,
    PredictorSpec,
    StageSpec,
    elaborate,
    linear_path,
)

#: Pipeline states whose pending results may be forwarded to the issue stage.
FORWARD_STATES = ("X2", "XWB", "D2", "DWB", "M2", "MWB")

#: Front-end stages flushed on a branch misprediction.
FRONT_STAGES = ("F1", "F2", "ID")

MAIN_STAGES = ("F1", "F2", "ID", "RF", "X1", "X2", "XWB")
MEMORY_STAGES = ("D1", "D2", "DWB")
MAC_STAGES = ("M1", "M2", "MWB")
FRONT_END = ("F1", "F2", "ID", "RF")


def xscale_spec(
    main_stages=MAIN_STAGES,
    forward_states=FORWARD_STATES,
    name="XScale",
    issue_width=1,
    memory=None,
):
    """The XScale model as a declarative pipeline description.

    ``main_stages`` and ``forward_states`` are parameters so deepened
    variants (see ``repro.processors.variants``) can stretch the main pipe
    without restating the structure; ``issue_width=2`` widens the front end
    and the X pipe to two slots and issues in order out of RF, pairing an
    integer operation with a load/store or a multiply (the single-slot D1
    and M1 latches are declared as issue ports) — the ``xscale-ds``
    registry entry.  ``memory`` swaps the cache hierarchy (a
    :class:`~repro.describe.MemorySpec`) without restating the pipeline —
    the ``xscale-l2`` registry entry.
    """
    front_end = main_stages[:4]
    issue, execute = main_stages[4], main_stages[5]
    resolve_stages = front_end + (issue,)

    alu = linear_path(
        "alu", main_stages,
        hooks={issue: "alu.issue", execute: "alu.execute", "end": "alu.writeback"},
    )
    mul = linear_path(
        "mul", front_end + MAC_STAGES,
        hooks={
            "M1": "mul.issue",
            "M2": "mul.execute",  # the MAC array iterates 1-4 cycles
            "MWB": "mul.buffer",
            "end": "mul.writeback",
        },
    )
    mem = linear_path(
        "mem", front_end + MEMORY_STAGES,
        hooks={"D1": "mem.issue", "D2": "mem.agen", "DWB": "mem.access", "end": "mem.writeback"},
    )
    memm = linear_path(
        "memm", front_end + MEMORY_STAGES,
        hooks={
            "D1": "memm.issue",
            "D2": "memm.agen",
            "DWB": "memm.access",
            "end": "memm.writeback",
        },
    )
    branch = linear_path(
        "branch", resolve_stages,
        hooks={issue: "branch.resolve", "end": "branch.link_writeback"},
    )
    system = linear_path(
        "system", resolve_stages,
        hooks={issue: "system.issue", "end": "system.retire"},
    )

    if issue_width == 1:
        issue_spec = IssueSpec()
        front_flush = front_end[:3]
        wide = set()
        description = (
            "Intel XScale: 7-stage main pipe, memory and MAC side pipes, "
            "BTB prediction, out-of-order completion (paper Figure 9)"
        )
    else:
        # The front end and the integer pipe get issue_width slots; D1 and
        # M1 keep one slot each (one data-cache port, one MAC array), which
        # the issue ports make explicit.  Instructions issue out of RF in
        # program order, so a resolving branch must flush RF as well: a
        # younger wrong-path instruction can now share it.
        issue_spec = IssueSpec(
            width=issue_width,
            stage=front_end[3],
            in_order=True,
            ports=(
                IssuePortSpec("dmem", classes=("mem", "memm")),
                IssuePortSpec("mac", classes=("mul",)),
            ),
        )
        front_flush = front_end
        wide = set(main_stages)
        description = (
            "XScale-style pipeline widened to %d-issue: in-order issue out "
            "of RF pairing the X pipe with the memory or MAC pipe" % issue_width
        )
    return PipelineSpec(
        name=name,
        stages=tuple(
            StageSpec(stage, capacity=issue_width if stage in wide else 1)
            for stage in main_stages + MEMORY_STAGES + MAC_STAGES
        ),
        paths=(alu, mul, mem, memm, branch, system),
        hazards=HazardSpec(
            forward_states=forward_states,
            front_flush_stages=front_flush,
            redirect_flush_stages=front_end,
        ),
        fetch=FetchSpec(style="btb", capacity_stage=main_stages[0]),
        predictor=PredictorSpec(kind="btb", unit_name="btb", btb_entries=128),
        issue=issue_spec,
        memory=memory if memory is not None else MemorySpec(),
        description=description,
    )


def build_xscale_processor(
    memory_config=None, engine_options=None, use_decode_cache=True, backend=None
):
    """Build the XScale model and generate its cycle-accurate simulator.

    ``backend`` selects the engine ("interpreted"/"compiled"), overriding
    ``engine_options.backend`` when given.
    """
    return elaborate(
        xscale_spec(),
        memory_config=memory_config,
        engine_options=engine_options,
        use_decode_cache=use_decode_cache,
        backend=backend,
    )
