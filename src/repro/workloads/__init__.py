"""Benchmark workloads.

The paper evaluates its simulators on six programs: adpcm and g721
(MediaBench), blowfish and crc (MiBench), compress and go (SPEC95).  The
original binaries are compiled with ``arm-linux-gcc`` from sources we cannot
redistribute, so this package provides hand-written assembly kernels that
exercise the same behavioural mix on our ARM7-inspired ISA:

========  ===========================================================
kernel    behavioural profile it mimics
========  ===========================================================
adpcm     ALU-dominated sample quantisation with data-dependent
          conditionals and a small table in memory
blowfish  Feistel rounds dominated by S-box loads and xors
compress  byte-wise run-length scanning: loads, stores, compares
crc       bit-serial polynomial division: tight branchy ALU loop
g721      multiply-accumulate linear-prediction filter (MUL/MLA heavy)
go        board scanning with irregular, data-dependent branches
========  ===========================================================

Every kernel is parameterised by a ``scale`` factor controlling its dynamic
instruction count, ends with ``halt`` and leaves a checksum in ``r0`` so the
functional and cycle-accurate simulators can be cross-validated.
"""

from repro.workloads.kernels import KERNEL_BUILDERS, kernel_source
from repro.workloads.registry import (
    Workload,
    all_workloads,
    get_workload,
    workload_names,
)
from repro.workloads.generator import SyntheticWorkloadGenerator

__all__ = [
    "Workload",
    "get_workload",
    "all_workloads",
    "workload_names",
    "kernel_source",
    "KERNEL_BUILDERS",
    "SyntheticWorkloadGenerator",
]
