"""Synthetic workload generation.

Besides the six named kernels, tests and ablation benchmarks need programs
with a controllable instruction mix (e.g. "90% ALU, 10% branches" to stress
the dispatch tables, or "50% loads" to stress the cache model).  The
generator below emits assembly with the requested mix; programs always
terminate because the only backward branch is the outer loop counter.
"""

from __future__ import annotations

import random

from repro.isa.assembler import assemble
from repro.workloads.kernels import DATA_BASE


class SyntheticWorkloadGenerator:
    """Generate loop-shaped programs with a configurable instruction mix.

    ``mix`` maps instruction categories (``alu``, ``mul``, ``load``,
    ``store``, ``branch``) to relative weights.  ``body_length`` instructions
    are drawn per loop iteration and the loop runs ``iterations`` times.
    """

    CATEGORIES = ("alu", "mul", "load", "store", "branch")

    def __init__(self, mix=None, body_length=32, iterations=64, seed=1):
        self.mix = dict(mix or {"alu": 6, "mul": 1, "load": 2, "store": 1, "branch": 2})
        unknown = set(self.mix) - set(self.CATEGORIES)
        if unknown:
            raise ValueError("unknown instruction categories: %s" % ", ".join(sorted(unknown)))
        self.body_length = body_length
        self.iterations = iterations
        self.seed = seed

    def _choose(self, rng):
        categories = sorted(self.mix)
        weights = [self.mix[c] for c in categories]
        return rng.choices(categories, weights=weights, k=1)[0]

    def _emit(self, category, rng, label_counter):
        # r0..r5 are scratch data registers, r8 is the data pointer,
        # r11 is the loop counter and must not be clobbered.
        reg = lambda: "r%d" % rng.randint(0, 5)
        if category == "alu":
            op = rng.choice(("add", "sub", "eor", "orr", "and"))
            return ["    %s %s, %s, %s" % (op, reg(), reg(), reg())]
        if category == "mul":
            return ["    mul %s, %s, %s" % (reg(), reg(), reg())]
        if category == "load":
            offset = 4 * rng.randint(0, 15)
            return ["    ldr %s, [r8, #%d]" % (reg(), offset)]
        if category == "store":
            offset = 4 * rng.randint(0, 15)
            return ["    str %s, [r8, #%d]" % (reg(), offset)]
        # branch: a short forward skip whose outcome depends on data.
        label = "skip_%d" % label_counter
        target = reg()
        return [
            "    cmp %s, #%d" % (target, rng.randint(0, 64)),
            "    ble %s" % label,
            "    add %s, %s, #1" % (target, target),
            "%s:" % label,
        ]

    def source(self):
        """Assembly text of the synthetic program."""
        rng = random.Random(self.seed)
        lines = [
            "; synthetic workload (seed=%d)" % self.seed,
            "main:",
            "    mov r8, #%d" % DATA_BASE,
            "    mov r11, #%d" % self.iterations,
            "    mov r0, #1",
            "    mov r1, #2",
            "    mov r2, #3",
            "    mov r3, #5",
            "    mov r4, #7",
            "    mov r5, #11",
            "loop:",
        ]
        label_counter = 0
        for _ in range(self.body_length):
            category = self._choose(rng)
            emitted = self._emit(category, rng, label_counter)
            if category == "branch":
                label_counter += 1
            lines.extend(emitted)
        lines.extend(
            [
                "    subs r11, r11, #1",
                "    bgt loop",
                "    swi #1",
                "    halt",
            ]
        )
        return "\n".join(lines) + "\n"

    def program(self):
        """The assembled synthetic program."""
        return assemble(self.source())
