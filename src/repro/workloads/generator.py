"""Synthetic workload generation.

Besides the six named kernels, tests and ablation benchmarks need programs
with a controllable instruction mix (e.g. "90% ALU, 10% branches" to stress
the dispatch tables, or "50% loads" to stress the cache model).  The
generator below emits assembly with the requested mix; programs always
terminate because the only backward branch is the outer loop counter.
"""

from __future__ import annotations

import random

from repro.isa.assembler import assemble
from repro.workloads.kernels import DATA_BASE


class SyntheticWorkloadGenerator:
    """Generate loop-shaped programs with a configurable instruction mix.

    ``mix`` maps instruction categories (``alu``, ``mul``, ``load``,
    ``store``, ``branch``, ``jump``) to relative weights.  ``body_length``
    instructions are drawn per loop iteration and the loop runs
    ``iterations`` times.  The ``jump`` category emits a computed PC write
    (``mov pc, r9``) over one wrong-path filler instruction — the only way
    to exercise a model's deep-redirect (writeback-time) control transfer,
    which ordinary branches resolve too early to reach.
    """

    CATEGORIES = ("alu", "mul", "load", "store", "branch", "jump")

    def __init__(self, mix=None, body_length=32, iterations=64, seed=1):
        self.mix = dict(mix or {"alu": 6, "mul": 1, "load": 2, "store": 1, "branch": 2})
        unknown = set(self.mix) - set(self.CATEGORIES)
        if unknown:
            raise ValueError("unknown instruction categories: %s" % ", ".join(sorted(unknown)))
        self.body_length = body_length
        self.iterations = iterations
        self.seed = seed

    def _choose(self, rng):
        categories = sorted(self.mix)
        weights = [self.mix[c] for c in categories]
        return rng.choices(categories, weights=weights, k=1)[0]

    def _emit(self, category, rng, label_counter, index):
        # r0..r5 are scratch data registers, r8 is the data pointer,
        # r9 is the jump-target scratch, r11 is the loop counter and must
        # not be clobbered.  ``index`` is the absolute instruction index the
        # first emitted instruction will occupy (needed to compute jump
        # targets).
        reg = lambda: "r%d" % rng.randint(0, 5)
        if category == "alu":
            op = rng.choice(("add", "sub", "eor", "orr", "and"))
            return ["    %s %s, %s, %s" % (op, reg(), reg(), reg())]
        if category == "mul":
            return ["    mul %s, %s, %s" % (reg(), reg(), reg())]
        if category == "load":
            offset = 4 * rng.randint(0, 15)
            return ["    ldr %s, [r8, #%d]" % (reg(), offset)]
        if category == "store":
            offset = 4 * rng.randint(0, 15)
            return ["    str %s, [r8, #%d]" % (reg(), offset)]
        if category == "jump":
            # A computed PC write: resolved at writeback, deep in the pipe,
            # so the wrong-path filler is fetched (and must be squashed by
            # the model's backend redirect) before fetch lands on the
            # target.  Executing the filler corrupts a scratch register and
            # diverges from the functional reference immediately.
            target = reg()
            return [
                "    mov r9, #%d" % (4 * (index + 3)),
                "    mov pc, r9",
                "    add %s, %s, #64" % (target, target),
            ]
        # branch: a short forward skip whose outcome depends on data.
        label = "skip_%d" % label_counter
        target = reg()
        return [
            "    cmp %s, #%d" % (target, rng.randint(0, 64)),
            "    ble %s" % label,
            "    add %s, %s, #1" % (target, target),
            "%s:" % label,
        ]

    def source(self):
        """Assembly text of the synthetic program."""
        rng = random.Random(self.seed)
        lines = [
            "; synthetic workload (seed=%d)" % self.seed,
            "main:",
            "    mov r8, #%d" % DATA_BASE,
            "    mov r11, #%d" % self.iterations,
            "    mov r0, #1",
            "    mov r1, #2",
            "    mov r2, #3",
            "    mov r3, #5",
            "    mov r4, #7",
            "    mov r5, #11",
            "loop:",
        ]
        label_counter = 0
        # Instruction index of the next emitted instruction (the prologue
        # above holds eight instructions; labels and comments do not count).
        index = sum(1 for line in lines if line.startswith("    "))
        for _ in range(self.body_length):
            category = self._choose(rng)
            emitted = self._emit(category, rng, label_counter, index)
            if category == "branch":
                label_counter += 1
            index += sum(1 for line in emitted if line.startswith("    "))
            lines.extend(emitted)
        lines.extend(
            [
                "    subs r11, r11, #1",
                "    bgt loop",
                "    swi #1",
                "    halt",
            ]
        )
        return "\n".join(lines) + "\n"

    def program(self):
        """The assembled synthetic program."""
        return assemble(self.source())
