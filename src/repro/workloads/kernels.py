"""Assembly kernels standing in for the paper's benchmark programs.

Each ``*_source(scale)`` function returns assembly text for the ARM7-inspired
ISA.  The kernels are self-contained: they synthesise their own input data
with a xorshift pseudo-random generator (no file IO), run the algorithm and
leave a checksum in ``r0`` before executing ``halt``.
"""

from __future__ import annotations

DATA_BASE = 0x8000
AUX_BASE = 0xC000
STACK_TOP = 0x20000


def load_const(register, value):
    """Assembly lines that materialise an arbitrary 32-bit constant.

    The constant is assembled from up to four rotated 8-bit immediates, the
    standard ARM idiom for constants that do not fit one immediate field.
    """
    value &= 0xFFFFFFFF
    chunks = [(value >> shift) & 0xFF for shift in (0, 8, 16, 24)]
    lines = []
    first = True
    for index, chunk in enumerate(chunks):
        if chunk == 0 and not (first and index == 3):
            continue
        part = chunk << (8 * index)
        if first:
            lines.append("    mov %s, #%d" % (register, part))
            first = False
        else:
            lines.append("    orr %s, %s, #%d" % (register, register, part))
    if first:
        lines.append("    mov %s, #0" % register)
    return "\n".join(lines)


_XORSHIFT = """\
    eor {r}, {r}, {r}, lsl #13
    eor {r}, {r}, {r}, lsr #17
    eor {r}, {r}, {r}, lsl #5
"""


def xorshift(register):
    """Three-instruction xorshift32 update of ``register`` (data synthesis)."""
    return _XORSHIFT.format(r=register)


def crc_source(scale=1):
    """Bit-serial CRC-32 over a synthesised buffer (MiBench crc stand-in)."""
    nbytes = 96 * scale
    return """\
; crc kernel: bit-serial CRC-32 of a pseudo-random buffer
main:
    mov r6, #199
    mov r1, #{data}
    mov r2, #{nbytes}
    mov r7, r1
    mov r8, r2
fill:
{rand}
    str r6, [r7], #4
    subs r8, r8, #4
    bgt fill

    mvn r0, #0
{poly}
    mov r7, r1
    mov r8, r2
byte_loop:
    ldrb r4, [r7], #1
    eor r0, r0, r4
    mov r5, #8
bit_loop:
    ands r9, r0, #1
    mov r0, r0, lsr #1
    eorne r0, r0, r3
    subs r5, r5, #1
    bgt bit_loop
    subs r8, r8, #1
    bgt byte_loop
    mvn r0, r0
    swi #1
    halt
""".format(
        data=DATA_BASE,
        nbytes=nbytes,
        rand=xorshift("r6").rstrip(),
        poly=load_const("r3", 0xEDB88320),
    )


def adpcm_source(scale=1):
    """ADPCM-style sample quantisation loop (MediaBench adpcm stand-in)."""
    nsamples = 192 * scale
    return """\
; adpcm kernel: quantise synthetic samples with an adaptive step size
main:
    mov r0, #0          ; checksum
    mov r1, #0          ; predictor
    mov r2, #0          ; step index
    mov r3, #4          ; step size
    mov r6, #77         ; xorshift state
    mov r11, #{nsamples}
sample_loop:
{rand}
    and r5, r6, #255    ; sample in 0..255
    sub r5, r5, r1      ; diff = sample - predictor
    mov r4, #0
    cmp r5, #0
    rsblt r5, r5, #0    ; abs(diff)
    movlt r4, #8        ; sign bit of the code
    cmp r5, r3
    orrge r4, r4, #4
    subge r5, r5, r3
    cmp r5, r3, lsr #1
    orrge r4, r4, #2
    subge r5, r5, r3, lsr #1
    cmp r5, r3, lsr #2
    orrge r4, r4, #1
    ; reconstruct: predictor += / -= quantised difference
    and r9, r4, #7
    mul r10, r9, r3
    mov r10, r10, lsr #2
    tst r4, #8
    addeq r1, r1, r10
    subne r1, r1, r10
    ; clamp predictor to 0..255
    cmp r1, #0
    movlt r1, #0
    cmp r1, #255
    movgt r1, #255
    ; adapt the step index: big codes speed up, small codes slow down
    and r9, r4, #7
    cmp r9, #4
    addge r2, r2, #2
    sublt r2, r2, #1
    cmp r2, #0
    movlt r2, #0
    cmp r2, #24
    movgt r2, #24
    ; step = (index + 2) * (index + 3) / 2
    add r9, r2, #2
    add r10, r2, #3
    mul r3, r9, r10
    mov r3, r3, lsr #1
    ; accumulate the checksum of emitted codes
    add r0, r4, r0, lsl #1
    subs r11, r11, #1
    bgt sample_loop
    swi #1
    halt
""".format(nsamples=nsamples, rand=xorshift("r6").rstrip())


def blowfish_source(scale=1):
    """Feistel rounds with S-box lookups (MiBench blowfish stand-in)."""
    nblocks = 24 * scale
    return """\
; blowfish kernel: Feistel network with table lookups
main:
    mov r12, #{sbox}
    mov r6, #91
    mov r7, r12
    mov r8, #256
sbox_fill:
{rand}
    str r6, [r7], #4
    subs r8, r8, #1
    bgt sbox_fill

    mov r0, #0          ; checksum
    mov r11, #{nblocks}
block_loop:
{rand2}
    mov r1, r6          ; left half
    eor r2, r6, r6, ror #11
    mov r10, #16        ; rounds
round_loop:
    ; F(left): combine two S-box entries selected by bytes of the left half
    and r3, r1, #255
    mov r4, r1, lsr #8
    and r4, r4, #255
    ldr r5, [r12, r3, lsl #2]
    ldr r9, [r12, r4, lsl #2]
    add r5, r5, r9
    eor r5, r5, r1, ror #3
    eor r2, r2, r5
    ; swap halves
    mov r3, r1
    mov r1, r2
    mov r2, r3
    subs r10, r10, #1
    bgt round_loop
    eor r0, r0, r1
    add r0, r0, r2
    subs r11, r11, #1
    bgt block_loop
    swi #1
    halt
""".format(
        sbox=DATA_BASE,
        nblocks=nblocks,
        rand=xorshift("r6").rstrip(),
        rand2=xorshift("r6").rstrip(),
    )


def compress_source(scale=1):
    """Run-length encoding of a byte buffer (SPEC95 compress stand-in)."""
    nbytes = 224 * scale
    return """\
; compress kernel: run-length encode a partly repetitive byte buffer
main:
    mov r1, #{data}     ; input buffer
    mov r2, #{out}      ; output buffer
    mov r3, #{nbytes}
    mov r6, #57
    mov r7, r1
    mov r8, r3
    mov r9, #0
fill:
{rand}
    and r4, r6, #15
    cmp r4, #11
    movge r4, #7        ; force frequent repeats so runs exist
    strb r4, [r7], #1
    subs r8, r8, #1
    bgt fill

    ; RLE scan: emit (value, run length) byte pairs
    mov r7, r1          ; read pointer
    mov r8, r2          ; write pointer
    mov r0, #0          ; checksum of emitted pairs
    ldrb r4, [r7], #1   ; current run value
    mov r5, #1          ; current run length
    sub r9, r3, #1      ; remaining bytes
scan_loop:
    cmp r9, #0
    ble flush
    ldrb r10, [r7], #1
    sub r9, r9, #1
    cmp r10, r4
    bne emit
    add r5, r5, #1
    cmp r5, #255
    blt scan_loop
emit:
    strb r4, [r8], #1
    strb r5, [r8], #1
    add r0, r0, r4
    add r0, r0, r5, lsl #8
    mov r4, r10
    mov r5, #1
    b scan_loop
flush:
    strb r4, [r8], #1
    strb r5, [r8], #1
    add r0, r0, r4
    add r0, r0, r5, lsl #8
    swi #1
    halt
""".format(
        data=DATA_BASE,
        out=AUX_BASE,
        nbytes=nbytes,
        rand=xorshift("r6").rstrip(),
    )


def g721_source(scale=1):
    """Multiply-accumulate linear prediction filter (MediaBench g721 stand-in)."""
    nsamples = 160 * scale
    return """\
; g721 kernel: six-tap adaptive predictor built on multiply-accumulate
main:
    mov r1, #{hist}     ; history buffer (6 words)
    mov r7, r1
    mov r8, #6
    mov r6, #0
clear_hist:
    str r6, [r7], #4
    subs r8, r8, #1
    bgt clear_hist

    mov r0, #0          ; checksum
    mov r6, #123        ; xorshift state
    mov r11, #{nsamples}
sample_loop:
{rand}
    and r5, r6, #1020   ; new sample (rotated-immediate encodable mask)
    ; acc = sum coeff[i] * history[i]; coefficients are small constants
    ldr r2, [r1, #0]
    mov r3, #3
    mul r4, r2, r3
    ldr r2, [r1, #4]
    mov r3, #5
    mla r4, r2, r3, r4
    ldr r2, [r1, #8]
    mov r3, #7
    mla r4, r2, r3, r4
    ldr r2, [r1, #12]
    mov r3, #2
    mla r4, r2, r3, r4
    ldr r2, [r1, #16]
    mov r3, #4
    mla r4, r2, r3, r4
    ldr r2, [r1, #20]
    mov r3, #6
    mla r4, r2, r3, r4
    mov r4, r4, asr #4  ; prediction
    sub r9, r5, r4      ; prediction error
    ; shift the history: history[i] = history[i-1], history[0] = sample
    ldr r2, [r1, #16]
    str r2, [r1, #20]
    ldr r2, [r1, #12]
    str r2, [r1, #16]
    ldr r2, [r1, #8]
    str r2, [r1, #12]
    ldr r2, [r1, #4]
    str r2, [r1, #8]
    ldr r2, [r1, #0]
    str r2, [r1, #4]
    str r5, [r1, #0]
    ; accumulate the checksum of prediction errors
    eor r0, r9, r0, ror #7
    subs r11, r11, #1
    bgt sample_loop
    swi #1
    halt
""".format(hist=DATA_BASE, nsamples=nsamples, rand=xorshift("r6").rstrip())


def go_source(scale=1):
    """Board-scanning heuristic with irregular branches (SPEC95 go stand-in)."""
    passes = 2 * scale
    board = 19 * 19
    return """\
; go kernel: scan a 19x19 board and score empty points by their neighbours
main:
    mov r1, #{board}    ; board base
    mov r6, #37
    mov r7, r1
    mov r8, #19
    mul r8, r8, r8      ; 361 cells (19 x 19)
fill_board:
{rand}
    and r4, r6, #3
    cmp r4, #3
    moveq r4, #0        ; values 0 (empty), 1 (black), 2 (white)
    strb r4, [r7], #1
    subs r8, r8, #1
    bgt fill_board

    mov r0, #0          ; score checksum
    mov r11, #{passes}
pass_loop:
    mov r9, #19         ; row counter (skip the border rows below)
    sub r9, r9, #2
    mov r2, #1          ; row index
row_loop:
    mov r3, #1          ; column index
    mov r10, #17        ; columns per row (skip borders)
col_loop:
    ; cell address = board + row*19 + col
    mov r4, #19
    mul r4, r2, r4
    add r4, r4, r3
    add r4, r4, r1
    ldrb r5, [r4, #0]
    cmp r5, #0
    bne occupied
    ; empty point: count occupied neighbours
    ldrb r5, [r4, #1]
    cmp r5, #0
    addne r0, r0, #1
    ldrb r5, [r4, #-1]
    cmp r5, #0
    addne r0, r0, #1
    ldrb r5, [r4, #19]
    cmp r5, #2
    addeq r0, r0, #3
    ldrb r5, [r4, #-19]
    cmp r5, #1
    addeq r0, r0, #2
    b next_cell
occupied:
    cmp r5, #2
    addeq r0, r0, #5
    subne r0, r0, #1
next_cell:
    add r3, r3, #1
    subs r10, r10, #1
    bgt col_loop
    add r2, r2, #1
    subs r9, r9, #1
    bgt row_loop
    subs r11, r11, #1
    bgt pass_loop
    swi #1
    halt
""".format(board=DATA_BASE, passes=passes, rand=xorshift("r6").rstrip())


#: Builders for the six paper benchmarks, keyed by the paper's names.
KERNEL_BUILDERS = {
    "adpcm": adpcm_source,
    "blowfish": blowfish_source,
    "compress": compress_source,
    "crc": crc_source,
    "g721": g721_source,
    "go": go_source,
}


def kernel_source(name, scale=1):
    """Assembly text of the named kernel at the given scale."""
    try:
        builder = KERNEL_BUILDERS[name]
    except KeyError:
        from repro.core.exceptions import UnknownNameError

        raise UnknownNameError("workload", name, sorted(KERNEL_BUILDERS)) from None
    return builder(scale)
