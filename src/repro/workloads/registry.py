"""Workload registry: named, pre-assembled benchmark programs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.assembler import assemble
from repro.workloads.kernels import kernel_source

#: Suite each kernel stands in for, as named by the paper.
KERNEL_SUITES = {
    "adpcm": "MediaBench",
    "blowfish": "MiBench",
    "compress": "SPEC95",
    "crc": "MiBench",
    "g721": "MediaBench",
    "go": "SPEC95",
}


@dataclass(frozen=True)
class Workload:
    """A named benchmark: its source text and assembled program image."""

    name: str
    suite: str
    scale: int
    source: str
    program: object = field(repr=False, default=None)

    @property
    def entry(self):
        return self.program.entry


def workload_names():
    """The six benchmark names, in the order the paper's figures use."""
    return ("adpcm", "blowfish", "compress", "crc", "g721", "go")


def get_workload(name, scale=1):
    """Assemble and return the named workload at the given scale."""
    source = kernel_source(name, scale)
    program = assemble(source)
    return Workload(
        name=name,
        suite=KERNEL_SUITES.get(name, "synthetic"),
        scale=scale,
        source=source,
        program=program,
    )


def all_workloads(scale=1):
    """All six paper benchmarks at the given scale."""
    return [get_workload(name, scale) for name in workload_names()]
