"""Backend equivalence matrix: interpreted / compiled / generated / batched.

Every engine backend is contractually bit-identical in every statistic
the simulator exposes.  This matrix enforces the contract for **every
model in the processor registry** across every workload the model
supports, comparing

* the run statistics (cycles, instructions, stalls, squashes,
  per-transition firing counts, finish reason),
* the architectural state (registers, flags), and
* the memory-system counters (per-level accesses/hits/misses **and**
  ``miss_cycles``, which the cache-model bugfix sweep of PR 5 pinned).

It replaces the pairwise interpreted-vs-compiled sweep that lived in
``test_compiled_differential.py``: one parametrized run per (model,
kernel) pair now covers all three backends at once.  Backend-specific
*reset* semantics stay in their per-backend files; the generated
backend's reset-reuse regression lives here because it is the
equivalence contract applied to a second run of the same engine.
"""

import pytest

from repro.core.engine import ENGINE_BACKENDS
from repro.processors import build_processor, processor_names, supported_kernels
from repro.workloads import get_workload, workload_names

KERNELS = workload_names()

#: Every (model, kernel) pair the registry says is executable.
MODEL_KERNEL_PAIRS = [
    (model, kernel)
    for model in processor_names()
    for kernel in supported_kernels(model, KERNELS)
]


def run_backend(model, workload, backend):
    processor = build_processor(model, backend=backend)
    processor.load_program(workload.program)
    stats = processor.run(max_cycles=2_000_000)
    return processor, stats


def observable_state(processor, stats):
    """Everything a backend may not change: statistics + architecture + memory."""
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "stalls": stats.stalls,
        "squashed": stats.squashed,
        "generated_tokens": stats.generated_tokens,
        "retired_by_class": dict(stats.retired_by_class),
        "transition_firings": dict(stats.transition_firings),
        "finish_reason": stats.finish_reason,
        "registers": [processor.register(index) for index in range(16)],
        "flags": processor.flags(),
        "memory": processor.memory.statistics_summary(),
    }


def test_backend_matrix_covers_all_registered_backends():
    """The matrix below must not silently fall behind the engine registry."""
    assert set(ENGINE_BACKENDS) == {"interpreted", "compiled", "generated", "batched"}


@pytest.mark.parametrize("model,kernel", MODEL_KERNEL_PAIRS)
def test_all_backends_bit_identical(model, kernel):
    workload = get_workload(kernel, scale=1)

    states = {
        backend: observable_state(*run_backend(model, workload, backend))
        for backend in ENGINE_BACKENDS
    }

    reference = states["interpreted"]
    assert reference["finish_reason"] == "halt"
    for backend in ENGINE_BACKENDS[1:]:
        assert states[backend] == reference, backend


def test_generated_engine_reset_reuses_emitted_module():
    """Two back-to-back runs on one generated engine: identical stats, no re-emission.

    ``strongarm-c512`` + blowfish is the sweep point whose working set
    overflows the 512 B L1, so the second run only reproduces the first if
    ``reset()`` really restores the caches *and* the bound step function
    (places, stages, reservation pool) survives untouched.
    """
    workload = get_workload("blowfish", scale=1)
    processor = build_processor("strongarm-c512", backend="generated")
    processor.load_program(workload.program)
    first = processor.run(max_cycles=2_000_000)
    first_state = observable_state(processor, first)
    assert first.finish_reason == "halt"
    step_fn = processor.engine._step_fn
    module = processor.engine.module

    processor.reset()
    processor.load_program(workload.program)
    second = processor.run(max_cycles=2_000_000)

    assert observable_state(processor, second) == first_state
    # reset() must keep the emitted artefacts: same module, same bound
    # step function — re-running costs zero re-emissions.
    assert processor.engine._step_fn is step_fn
    assert processor.engine.module is module
