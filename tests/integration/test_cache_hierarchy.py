"""Integration tests for the spec-driven memory hierarchy (Figure 12 layer).

The ``strongarm-l2``/``xscale-l2`` registry entries share their 512-byte
split-L1 geometry with the ``strongarm-c512`` sweep point, so the pairs
see *identical* L1 miss streams — the only difference is what serves a
miss (a 6-cycle L2 or the 30-cycle memory).  These tests pin the claims
the hierarchy was added for: capacity misses are strictly cheaper through
the L2, both engine backends agree on every cache counter, a reused
processor never starts with a warm cache, and campaign results carry the
per-level statistics the fig12 report aggregates.
"""

import pytest

from repro.campaign import CampaignSpec, cache_table, run_campaign, run_single
from repro.processors import build_processor
from repro.processors.variants import small_l1_memory
from repro.processors.xscale import xscale_spec
from repro.workloads import get_workload

#: Kernels whose data working set overflows a 512 B L1 with reuse — the
#: "load-heavy" kernels of the acceptance criteria (blowfish's S-box is
#: 1 KB; compress streams through a dictionary larger than the L1).
LOAD_HEAVY_KERNELS = ("blowfish", "compress")


def run(model_or_spec, kernel, backend="interpreted"):
    if isinstance(model_or_spec, str):
        processor = build_processor(model_or_spec, backend=backend)
    else:
        from repro.describe import elaborate

        processor = elaborate(model_or_spec, backend=backend)
    workload = get_workload(kernel, scale=1)
    processor.load_program(workload.program)
    stats = processor.run(max_cycles=2_000_000)
    assert stats.finish_reason == "halt"
    return processor, stats


@pytest.mark.parametrize("kernel", LOAD_HEAVY_KERNELS)
def test_strongarm_l2_misses_cost_strictly_less_than_memory_direct(kernel):
    direct, _ = run("strongarm-c512", kernel)
    layered, _ = run("strongarm-l2", kernel)

    direct_d = direct.cache_statistics()["dcache"]
    layered_d = layered.cache_statistics()["dcache"]
    # Identical L1 geometry => identical miss streams ...
    assert layered_d.accesses == direct_d.accesses
    assert layered_d.misses == direct_d.misses
    assert layered_d.writebacks == direct_d.writebacks
    # ... but the L2 serves them strictly cheaper than the memory trip.
    assert layered_d.miss_cycles < direct_d.miss_cycles
    assert layered.cache_statistics()["l2"].hits > 0


@pytest.mark.parametrize("kernel", LOAD_HEAVY_KERNELS)
def test_xscale_l2_misses_cost_strictly_less_than_memory_direct(kernel):
    # XScale has no registered memory-direct sweep point; build the twin
    # inline from the same parameterised spec (same L1, no L2).
    direct, _ = run(
        xscale_spec(name="XScale-C512", memory=small_l1_memory(512, 1)), kernel
    )
    layered, _ = run("xscale-l2", kernel)

    direct_d = direct.cache_statistics()["dcache"]
    layered_d = layered.cache_statistics()["dcache"]
    assert layered_d.misses == direct_d.misses
    assert layered_d.miss_cycles < direct_d.miss_cycles
    assert layered.cache_statistics()["l2"].hits > 0


def test_l2_pays_off_end_to_end_on_blowfish():
    # The headline number: on the kernel with real L1 thrash, the L2 model
    # finishes the whole workload in strictly fewer cycles.
    _, direct = run("strongarm-c512", "blowfish")
    _, layered = run("strongarm-l2", "blowfish")
    assert layered.cycles < direct.cycles


@pytest.mark.parametrize("model", ["strongarm-l2", "xscale-l2", "strongarm-c512"])
def test_cache_counters_are_identical_across_backends(model):
    per_backend = {}
    for backend in ("interpreted", "compiled"):
        processor, stats = run(model, "blowfish", backend=backend)
        per_backend[backend] = (stats.cycles, processor.memory.statistics_summary())
    assert per_backend["compiled"] == per_backend["interpreted"]


@pytest.mark.parametrize("backend", ["interpreted", "compiled"])
def test_small_cache_model_reset_reuse_is_bit_identical(backend):
    """The cache-sensitive companion of the engine reset-reuse test.

    With a 512 B L1 a warm cache visibly changes the cycle count, so this
    would fail loudly if ``Processor.reset()`` ever went back to clearing
    counters without restoring cold tags.
    """
    workload = get_workload("blowfish", scale=1)
    processor = build_processor("strongarm-c512", backend=backend)

    observed = []
    for _ in range(3):
        processor.reset()
        processor.load_program(workload.program)
        stats = processor.run(max_cycles=2_000_000)
        observed.append((stats.cycles, stats.stalls, processor.memory.statistics_summary()))
        assert stats.finish_reason == "halt"
    assert observed[1] == observed[0]
    assert observed[2] == observed[0]
    # The point of the regression: the per-run miss counts stay at their
    # cold values instead of dropping on the second run.
    assert observed[0][2]["dcache"]["misses"] > 0


def test_campaign_results_carry_per_level_cache_statistics():
    result = run_single("strongarm-l2", "blowfish")
    assert result.memory["dcache"]["misses"] > 0
    assert result.memory["l2"]["hits"] > 0
    assert 0.0 < result.memory["dcache"]["miss_rate"] < 1.0
    hierarchy = result.generation["memory_hierarchy"]
    assert [level["role"] for level in hierarchy] == [
        "l1-instruction", "l1-data", "l2", "memory",
    ]


def test_fig12_style_campaign_aggregates_a_cache_table():
    spec = CampaignSpec(
        name="fig12-mini",
        processors=("strongarm-c512", "strongarm-l2"),
        workloads=("blowfish",),
        engines=("interpreted",),
    )
    report = run_campaign(spec, max_workers=1)
    rows = {row["processor"]: row for row in cache_table(report)}
    assert set(rows) == {"strongarm-c512", "strongarm-l2"}
    direct, layered = rows["strongarm-c512"], rows["strongarm-l2"]
    assert layered["dcache_miss_cycles"] < direct["dcache_miss_cycles"]
    assert direct["l2_hit_rate"] is None
    assert layered["l2_hit_rate"] > 0.0
    assert layered["cpi"] < direct["cpi"]
