"""The campaign subsystem's acceptance contract (ISSUE 3).

A campaign over **all registered processors × three workloads × both
engine backends** must (1) complete on a real multiprocessing worker
pool, (2) report per-run statistics bit-identical to direct
:func:`repro.analysis.metrics.run_processor` calls, and (3) when re-run
against the same store, execute **zero** simulations — every run served
from the :class:`~repro.campaign.ResultStore` by content fingerprint.
"""

import pytest

from repro.analysis.metrics import run_processor
from repro.campaign import ALL, CampaignSpec, plan_campaign, run_campaign
from repro.processors import get_entry, processor_names
from repro.workloads import get_workload

#: Three kernels every registered model (including the ISA-subset
#: ``example``) can execute, so the grid is a clean full cross-product.
ACCEPTANCE = CampaignSpec(
    name="acceptance",
    processors=(ALL,),
    workloads=("blowfish", "compress", "crc"),
    scales=(1,),
    engines=("interpreted", "compiled"),
)


@pytest.fixture(scope="module")
def pool_report(tmp_path_factory):
    store = tmp_path_factory.mktemp("campaign") / "store"
    report = run_campaign(ACCEPTANCE, store=store, max_workers=2)
    return store, report


def test_pool_campaign_covers_the_full_grid(pool_report):
    _, report = pool_report
    plan = plan_campaign(ACCEPTANCE)
    expected = len(processor_names()) * 3 * 2
    assert len(plan.runs) == expected
    assert plan.skipped == ()
    assert report.executed == expected
    assert report.cached == 0
    assert len(report.results) == expected
    assert {result.processor for result in report.results} == set(processor_names())
    assert all(result.finish_reason == "halt" for result in report.results)
    # The pool actually fanned out: more than one worker pid appears.
    assert len({result.worker_pid for result in report.results}) > 1


def test_pool_statistics_are_bit_identical_to_direct_runs(pool_report):
    _, report = pool_report
    plan = plan_campaign(ACCEPTANCE)
    for run, result in zip(plan.runs, report.results):
        assert result.fingerprint == run.fingerprint()
        direct = run_processor(
            get_entry(run.processor).builder,
            get_workload(run.workload, scale=run.scale),
            backend=run.engine.backend,
        )
        assert result.cycles == direct.cycles, run.run_id
        assert result.instructions == direct.instructions, run.run_id
        assert result.final_r0 == direct.final_r0, run.run_id
        assert result.stats["cycles"] == direct.cycles, run.run_id


def test_rerun_executes_zero_simulations(pool_report):
    store, report = pool_report
    rerun = run_campaign(ACCEPTANCE, store=store, max_workers=2)
    assert rerun.executed == 0
    assert rerun.cached == len(report.results)
    assert all(result.cached for result in rerun.results)
    # Served results carry the exact simulated quantities of the first run.
    first = [(r.cycles, r.instructions, r.final_r0) for r in report.results]
    served = [(r.cycles, r.instructions, r.final_r0) for r in rerun.results]
    assert served == first
