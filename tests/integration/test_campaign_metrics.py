"""Campaign-level metrics: registry wiring, persistence, cache accounting.

``run_campaign`` records where wall-time goes (phase timers, store
hit/miss counters and the host seconds hits saved, worker utilisation)
into a :class:`~repro.observe.metrics.MetricsRegistry`; the snapshot rides
on ``CampaignReport.metrics`` (this-run values) and is persisted as
``metrics.json`` next to the store with the store counters kept
*cumulative* across invocations.  Tracing rides the same machinery
without invalidating stores: ``EngineVariant.identity()`` excludes the
trace config, so a traced re-run of a stored campaign is served entirely
from cache.
"""

import re

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.cli import main as campaign_main
from repro.campaign.runner import CUMULATIVE_STORE_METRICS, metrics_path
from repro.campaign.spec import EngineVariant
from repro.campaign.store import ResultStore
from repro.core.engine import EngineOptions
from repro.observe.metrics import read_metrics_json, snapshot_value
from repro.observe.trace import TraceConfig

SPEC = CampaignSpec(
    name="metrics",
    processors=("strongarm",),
    workloads=("crc",),
    scales=(1,),
    engines=("interpreted", "generated"),
    max_cycles=2_000,
)


@pytest.fixture(scope="module")
def store_and_reports(tmp_path_factory):
    store = str(tmp_path_factory.mktemp("campaign") / "store")
    first = run_campaign(SPEC, store=store)
    second = run_campaign(SPEC, store=store)
    return store, first, second


def test_report_metrics_snapshot_reflects_this_run(store_and_reports):
    _, first, second = store_and_reports
    assert snapshot_value(first.metrics, "campaign.store.misses") == 2
    assert snapshot_value(first.metrics, "campaign.store.hits") == 0
    assert snapshot_value(first.metrics, "campaign.run.wall_seconds") == 2
    assert snapshot_value(first.metrics, "campaign.units") == 2
    # The second invocation is fully cached: this-run metrics say so.
    assert snapshot_value(second.metrics, "campaign.store.hits") == 2
    assert snapshot_value(second.metrics, "campaign.store.misses") == 0
    assert second.saved_wall_seconds == pytest.approx(
        sum(result.wall_seconds for result in second.results)
    )
    for phase in ("plan", "store_load", "execute"):
        name = "campaign.phase.%s_seconds" % phase
        assert snapshot_value(second.metrics, name) >= 0


def test_metrics_json_keeps_store_counters_cumulative(store_and_reports):
    store, first, second = store_and_reports
    persisted = read_metrics_json(metrics_path(ResultStore(store)))
    assert persisted is not None
    # Across the two invocations: 2 misses (first) + 2 hits (second).
    assert snapshot_value(persisted, "campaign.store.hits") == 2
    assert snapshot_value(persisted, "campaign.store.misses") == 2
    saved = snapshot_value(persisted, "campaign.store.saved_wall_seconds")
    assert saved == pytest.approx(second.saved_wall_seconds)
    # Only the designated counters accumulate; the rest is last-run state
    # (the second invocation was fully cached, so it had 0 pending units).
    assert set(CUMULATIVE_STORE_METRICS) == {
        "campaign.store.hits",
        "campaign.store.misses",
        "campaign.store.saved_wall_seconds",
        "campaign.store.lock_wait_seconds",
    }
    # Lock wait accumulates too: both invocations appended/locked shards.
    assert snapshot_value(persisted, "campaign.store.lock_wait_seconds") >= 0
    assert snapshot_value(persisted, "campaign.units") == 0


def test_traced_rerun_is_served_entirely_from_store(store_and_reports):
    store, first, _ = store_and_reports
    traced = CampaignSpec(
        name="metrics",
        processors=("strongarm",),
        workloads=("crc",),
        scales=(1,),
        engines=(
            EngineVariant(
                label="interpreted",
                options=EngineOptions(backend="interpreted", trace=TraceConfig()),
            ),
            EngineVariant(
                label="generated",
                options=EngineOptions(backend="generated", trace=TraceConfig()),
            ),
        ),
        max_cycles=2_000,
    )
    rerun = run_campaign(traced, store=store)
    assert rerun.executed == 0
    assert rerun.cached == 2
    served = {(r.engine, r.cycles) for r in rerun.results}
    assert served == {(r.engine, r.cycles) for r in first.results}


def test_report_cli_prints_store_cache_summary(store_and_reports, tmp_path, capsys):
    store, _, _ = store_and_reports
    export = str(tmp_path / "metrics-export.json")
    code = campaign_main(
        ["report", "--store", store, "--metrics", "--metrics-json", export]
    )
    assert code == 0
    output = capsys.readouterr().out
    # Earlier tests in this module may have re-run the campaign against the
    # same store, so only the miss count is exact; hits keep accumulating.
    match = re.search(r"store cache \(cumulative\): (\d+) hit\(s\), (\d+) miss\(es\)", output)
    assert match, output
    assert int(match.group(1)) >= 2
    assert int(match.group(2)) == 2
    assert "campaign metrics" in output
    assert "campaign.store.hits" in output
    exported = read_metrics_json(export)
    assert snapshot_value(exported, "campaign.store.hits") >= 2


def test_run_cli_prints_store_cache_line(store_and_reports, capsys):
    store, _, _ = store_and_reports
    code = campaign_main(
        [
            "run",
            "--store",
            store,
            "--processors",
            "strongarm",
            "--workloads",
            "crc",
            "--engines",
            "interpreted,generated",
            "--max-cycles",
            "2000",
            "--name",
            "metrics",
            "--expect-all-cached",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "store cache: 2 hit(s), 0 miss(es)" in output
