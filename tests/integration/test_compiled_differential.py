"""Differential equivalence of the compiled and interpreted engines.

The compiled backend (``repro.compiled``) is contractually bit-identical to
the interpreted reference engine in every statistic; these tests enforce
the contract for **every model in the processor registry** across every
workload the model supports, and check that ``CompiledEngine.reset()``
re-runs reproduce the first run without recompiling.
"""

import pytest

from repro.processors import build_processor, processor_names, supported_kernels
from repro.workloads import workload_names, get_workload

KERNELS = workload_names()

#: Every (model, kernel) pair the registry says is executable.
MODEL_KERNEL_PAIRS = [
    (model, kernel)
    for model in processor_names()
    for kernel in supported_kernels(model, KERNELS)
]

FULL_ISA_MODELS = ("strongarm", "xscale")


def full_reset(processor, workload):
    """Reset all dynamic state (engine, caches, predictors) and reload."""
    processor.reset()
    processor.load_program(workload.program)


def run_backend(model, workload, backend):
    processor = build_processor(model, backend=backend)
    processor.load_program(workload.program)
    stats = processor.run(max_cycles=2_000_000)
    return processor, stats


def observable_state(processor, stats):
    """Everything a backend may not change: statistics + architectural state."""
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "stalls": stats.stalls,
        "squashed": stats.squashed,
        "generated_tokens": stats.generated_tokens,
        "retired_by_class": dict(stats.retired_by_class),
        "transition_firings": dict(stats.transition_firings),
        "finish_reason": stats.finish_reason,
        "registers": [processor.register(index) for index in range(16)],
        "flags": processor.flags(),
    }


@pytest.mark.parametrize("model,kernel", MODEL_KERNEL_PAIRS)
def test_compiled_engine_matches_interpreted(model, kernel):
    workload = get_workload(kernel, scale=1)

    interpreted = observable_state(*run_backend(model, workload, "interpreted"))
    compiled = observable_state(*run_backend(model, workload, "compiled"))

    assert compiled == interpreted
    assert interpreted["finish_reason"] == "halt"


@pytest.mark.parametrize("model", FULL_ISA_MODELS)
def test_compiled_engine_reset_reuses_plan(model):
    workload = get_workload("crc", scale=1)

    processor = build_processor(model, backend="compiled")
    processor.load_program(workload.program)
    first = processor.run()
    first_state = observable_state(processor, first)
    plan = processor.engine.plan
    pool = processor.engine._reservation_pool

    full_reset(processor, workload)
    second = processor.run()
    second_state = observable_state(processor, second)

    assert second_state == first_state
    # reset() must keep the compiled artefacts (no recompilation) and the
    # exact pool/closure binding (the closures captured these objects).
    assert processor.engine.plan is plan
    assert processor.engine._reservation_pool is pool


def test_compiled_engine_reset_mid_run_recovers():
    """Resetting after an interrupted run must leave no stale worklist state."""
    workload = get_workload("crc", scale=1)

    processor = build_processor("strongarm", backend="compiled")
    processor.load_program(workload.program)
    partial = processor.run(max_cycles=50)
    assert partial.finish_reason == "max_cycles"

    full_reset(processor, workload)
    stats = processor.run()

    reference = build_processor("strongarm", backend="interpreted")
    reference.load_program(workload.program)
    expected = reference.run()

    assert stats.cycles == expected.cycles
    assert stats.instructions == expected.instructions
    assert stats.stalls == expected.stalls
    assert dict(stats.retired_by_class) == dict(expected.retired_by_class)


@pytest.mark.parametrize("backend", ["interpreted", "compiled"])
@pytest.mark.parametrize("kernel", ["crc", "adpcm"])
@pytest.mark.parametrize("model", FULL_ISA_MODELS)
def test_processor_reset_is_run_to_run_reproducible(model, kernel, backend):
    """``Processor.reset()`` must make re-runs bit-reproducible on both backends.

    One processor object, three runs of the same workload with a full reset
    in between: statistics and architectural state must match exactly (the
    caches, predictors and engine state all return to their initial state).
    """
    workload = get_workload(kernel, scale=1)
    processor = build_processor(model, backend=backend)

    states = []
    for _ in range(3):
        full_reset(processor, workload)
        stats = processor.run()
        states.append(observable_state(processor, stats))
        assert stats.finish_reason == "halt"

    assert states[1] == states[0]
    assert states[2] == states[0]
