"""Reset/reuse semantics of the compiled engine (and reset reproducibility).

The full registry-wide equivalence sweep (every model x every supported
kernel, all three backends at once) lives in
``test_backend_equivalence.py``; what stays here is what is specific to
the compiled backend's *lifecycle*: ``CompiledEngine.reset()`` re-runs
must reproduce the first run without recompiling, including after an
interrupted run, and full ``Processor.reset()`` re-runs must be
bit-reproducible on every backend.
"""

import pytest

from repro.processors import build_processor
from repro.workloads import get_workload

FULL_ISA_MODELS = ("strongarm", "xscale")


def full_reset(processor, workload):
    """Reset all dynamic state (engine, caches, predictors) and reload."""
    processor.reset()
    processor.load_program(workload.program)


def observable_state(processor, stats):
    """Everything a backend may not change: statistics + architectural state."""
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "stalls": stats.stalls,
        "squashed": stats.squashed,
        "generated_tokens": stats.generated_tokens,
        "retired_by_class": dict(stats.retired_by_class),
        "transition_firings": dict(stats.transition_firings),
        "finish_reason": stats.finish_reason,
        "registers": [processor.register(index) for index in range(16)],
        "flags": processor.flags(),
    }


@pytest.mark.parametrize("model", FULL_ISA_MODELS)
def test_compiled_engine_reset_reuses_plan(model):
    workload = get_workload("crc", scale=1)

    processor = build_processor(model, backend="compiled")
    processor.load_program(workload.program)
    first = processor.run()
    first_state = observable_state(processor, first)
    plan = processor.engine.plan
    pool = processor.engine._reservation_pool

    full_reset(processor, workload)
    second = processor.run()
    second_state = observable_state(processor, second)

    assert second_state == first_state
    # reset() must keep the compiled artefacts (no recompilation) and the
    # exact pool/closure binding (the closures captured these objects).
    assert processor.engine.plan is plan
    assert processor.engine._reservation_pool is pool


def test_compiled_engine_reset_mid_run_recovers():
    """Resetting after an interrupted run must leave no stale worklist state."""
    workload = get_workload("crc", scale=1)

    processor = build_processor("strongarm", backend="compiled")
    processor.load_program(workload.program)
    partial = processor.run(max_cycles=50)
    assert partial.finish_reason == "max_cycles"

    full_reset(processor, workload)
    stats = processor.run()

    reference = build_processor("strongarm", backend="interpreted")
    reference.load_program(workload.program)
    expected = reference.run()

    assert stats.cycles == expected.cycles
    assert stats.instructions == expected.instructions
    assert stats.stalls == expected.stalls
    assert dict(stats.retired_by_class) == dict(expected.retired_by_class)


@pytest.mark.parametrize("backend", ["interpreted", "compiled", "generated"])
@pytest.mark.parametrize("kernel", ["crc", "adpcm"])
@pytest.mark.parametrize("model", FULL_ISA_MODELS)
def test_processor_reset_is_run_to_run_reproducible(model, kernel, backend):
    """``Processor.reset()`` must make re-runs bit-reproducible on every backend.

    One processor object, three runs of the same workload with a full reset
    in between: statistics and architectural state must match exactly (the
    caches, predictors and engine state all return to their initial state).
    """
    workload = get_workload(kernel, scale=1)
    processor = build_processor(model, backend=backend)

    states = []
    for _ in range(3):
        full_reset(processor, workload)
        stats = processor.run()
        states.append(observable_state(processor, stats))
        assert stats.finish_reason == "halt"

    assert states[1] == states[0]
    assert states[2] == states[0]
