"""Differential equivalence of the compiled and interpreted engines.

The compiled backend (``repro.compiled``) is contractually bit-identical to
the interpreted reference engine in every statistic; these tests enforce
the contract across every registered workload on both full-ISA processor
models, and check that ``CompiledEngine.reset()`` re-runs reproduce the
first run without recompiling.
"""

import pytest

from repro.processors import build_strongarm_processor, build_xscale_processor
from repro.workloads import get_workload, workload_names

KERNELS = workload_names()
FULL_ISA_MODELS = {
    "strongarm": build_strongarm_processor,
    "xscale": build_xscale_processor,
}


def full_reset(processor, workload):
    """Reset all dynamic state (engine, caches, predictors) and reload."""
    processor.reset()
    processor.load_program(workload.program)


def run_backend(builder, workload, backend):
    processor = builder(backend=backend)
    processor.load_program(workload.program)
    stats = processor.run()
    return processor, stats


def observable_state(processor, stats):
    """Everything a backend may not change: statistics + architectural state."""
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "stalls": stats.stalls,
        "squashed": stats.squashed,
        "generated_tokens": stats.generated_tokens,
        "retired_by_class": dict(stats.retired_by_class),
        "transition_firings": dict(stats.transition_firings),
        "finish_reason": stats.finish_reason,
        "registers": [processor.register(index) for index in range(16)],
        "flags": processor.flags(),
    }


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("model", sorted(FULL_ISA_MODELS))
def test_compiled_engine_matches_interpreted(model, kernel):
    builder = FULL_ISA_MODELS[model]
    workload = get_workload(kernel, scale=1)

    interpreted = observable_state(*run_backend(builder, workload, "interpreted"))
    compiled = observable_state(*run_backend(builder, workload, "compiled"))

    assert compiled == interpreted
    assert interpreted["finish_reason"] == "halt"


@pytest.mark.parametrize("model", sorted(FULL_ISA_MODELS))
def test_compiled_engine_reset_reuses_plan(model):
    builder = FULL_ISA_MODELS[model]
    workload = get_workload("crc", scale=1)

    processor = builder(backend="compiled")
    processor.load_program(workload.program)
    first = processor.run()
    first_state = observable_state(processor, first)
    plan = processor.engine.plan
    pool = processor.engine._reservation_pool

    full_reset(processor, workload)
    second = processor.run()
    second_state = observable_state(processor, second)

    assert second_state == first_state
    # reset() must keep the compiled artefacts (no recompilation) and the
    # exact pool/closure binding (the closures captured these objects).
    assert processor.engine.plan is plan
    assert processor.engine._reservation_pool is pool


def test_compiled_engine_reset_mid_run_recovers():
    """Resetting after an interrupted run must leave no stale worklist state."""
    builder = FULL_ISA_MODELS["strongarm"]
    workload = get_workload("crc", scale=1)

    processor = builder(backend="compiled")
    processor.load_program(workload.program)
    partial = processor.run(max_cycles=50)
    assert partial.finish_reason == "max_cycles"

    full_reset(processor, workload)
    stats = processor.run()

    reference = builder(backend="interpreted")
    reference.load_program(workload.program)
    expected = reference.run()

    assert stats.cycles == expected.cycles
    assert stats.instructions == expected.instructions
    assert stats.stalls == expected.stalls
    assert dict(stats.retired_by_class) == dict(expected.retired_by_class)
