"""Randomized differential testing of every registered processor model.

The six paper kernels exercise fixed instruction sequences; this layer
fuzzes the *mix*: eight seeded :class:`SyntheticWorkloadGenerator`
programs (ALU-heavy, branchy, memory-bound, multiply chains ...) run on
every model the registry knows, on every engine backend, and every run
is checked two ways:

* **architectural** — the retired instruction count, the architectural
  registers, the condition flags and the syscall output must match a
  functional (instruction-set) simulation of the same binary; timing
  models may reorder completion, never results;
* **backend** — the interpreted, compiled, generated and batched engines
  must produce bit-identical statistics (cycles, stalls, squashes,
  per-transition firing counts), the same contract
  ``test_backend_equivalence.py`` enforces on the paper kernels.

The seeds below are fixed so failures reproduce exactly; to investigate
one, rebuild the program with the same constructor arguments (see
EXPERIMENTS.md, "Differential fuzzing").
"""

import pytest

from repro.baseline import FunctionalSimulator
from repro.processors import build_processor, get_spec, processor_names
from repro.workloads.generator import SyntheticWorkloadGenerator

#: The fuzz corpus: name -> generator settings.  Mixes are chosen to lean
#: on different subsystems (issue ports, bypass network, branch handling,
#: block-free memory traffic); seeds are arbitrary but frozen.
FUZZ_MIXES = {
    "paper_mix": dict(seed=1011, mix=None),
    "alu_heavy": dict(seed=1102, mix={"alu": 9, "branch": 1}),
    "branchy": dict(seed=1203, mix={"alu": 2, "branch": 5}),
    "memory_bound": dict(seed=1304, mix={"alu": 2, "load": 4, "store": 3}),
    "mul_chains": dict(seed=1405, mix={"alu": 2, "mul": 5}),
    "load_use": dict(seed=1506, mix={"alu": 4, "load": 5, "branch": 1}),
    "jumpy": dict(seed=1607, mix={"alu": 4, "jump": 2, "branch": 1}),
    "kitchen_sink": dict(
        seed=1708,
        mix={"alu": 4, "mul": 2, "load": 3, "store": 2, "branch": 3, "jump": 1},
    ),
}

BODY_LENGTH = 20
ITERATIONS = 12

#: Generator category -> operation class the emitted instructions decode to.
CATEGORY_CLASSES = {
    "alu": "alu",
    "mul": "mul",
    "load": "mem",
    "store": "mem",
    "branch": "branch",
    "jump": "alu",  # mov pc, rN is a data-processing instruction
}


def required_opclasses(mix):
    """Operation classes a mix needs a model to implement.

    Every synthetic program carries an ALU prologue, a subs/bgt loop
    counter and a swi/halt epilogue, so alu, branch and system are always
    required.
    """
    needed = {"alu", "branch", "system"}
    weights = mix or SyntheticWorkloadGenerator().mix
    for category, weight in weights.items():
        if weight > 0:
            needed.add(CATEGORY_CLASSES[category])
    return needed


def eligible_models(mix):
    models = []
    for name in processor_names():
        spec = get_spec(name)
        if spec is None:
            continue  # legacy builder without a declarative class list
        if required_opclasses(mix) <= set(spec.opclasses):
            models.append(name)
    return models


_PROGRAMS = {}


def fuzz_program(name):
    program = _PROGRAMS.get(name)
    if program is None:
        settings = FUZZ_MIXES[name]
        generator = SyntheticWorkloadGenerator(
            mix=settings["mix"],
            body_length=BODY_LENGTH,
            iterations=ITERATIONS,
            seed=settings["seed"],
        )
        program = _PROGRAMS[name] = generator.program()
    return program


_FUNCTIONAL = {}


def functional_reference(name):
    """Architectural ground truth for one fuzz program (memoized)."""
    reference = _FUNCTIONAL.get(name)
    if reference is None:
        simulator = FunctionalSimulator()
        simulator.load_program(fuzz_program(name))
        stats = simulator.run(max_instructions=1_000_000)
        assert stats.halted, "fuzz program %r does not halt" % name
        reference = _FUNCTIONAL[name] = {
            "instructions": stats.instructions,
            "registers": [simulator.register(i) for i in range(15)],
            "flags": simulator.state.flags,
            "output": list(simulator.output),
        }
    return reference


def run_model(model, name, backend):
    processor = build_processor(model, backend=backend)
    processor.load_program(fuzz_program(name))
    stats = processor.run(max_cycles=1_000_000)
    return processor, stats


def observable_state(processor, stats):
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "stalls": stats.stalls,
        "squashed": stats.squashed,
        "generated_tokens": stats.generated_tokens,
        "retired_by_class": dict(stats.retired_by_class),
        "transition_firings": dict(stats.transition_firings),
        "finish_reason": stats.finish_reason,
        "registers": [processor.register(i) for i in range(16)],
        "flags": processor.flags(),
    }


FUZZ_CASES = [
    (name, model) for name in FUZZ_MIXES for model in eligible_models(FUZZ_MIXES[name]["mix"])
]


def test_every_model_is_fuzzed():
    """The corpus must cover each registered model with at least one mix."""
    covered = {model for _, model in FUZZ_CASES}
    assert covered == set(processor_names())


@pytest.mark.parametrize("name,model", FUZZ_CASES, ids=["%s-%s" % case for case in FUZZ_CASES])
def test_fuzzed_model_matches_functional_and_backends_agree(name, model):
    reference = functional_reference(name)

    interpreted, istats = run_model(model, name, "interpreted")
    assert istats.finish_reason == "halt"

    # Architectural agreement with the functional baseline.
    assert istats.instructions == reference["instructions"]
    assert [interpreted.register(i) for i in range(15)] == reference["registers"]
    assert interpreted.flags() == reference["flags"]
    assert list(getattr(interpreted.core, "output", [])) == reference["output"]

    # Bit-identical statistics across engine backends.
    reference = observable_state(interpreted, istats)
    compiled, cstats = run_model(model, name, "compiled")
    assert observable_state(compiled, cstats) == reference
    generated, gstats = run_model(model, name, "generated")
    assert observable_state(generated, gstats) == reference
    batched, bstats = run_model(model, name, "batched")
    assert observable_state(batched, bstats) == reference
