"""Golden-statistics regression test for the shipped processor models.

The numbers below were captured from the hand-wired StrongARM/XScale/example
models *before* they were rebuilt on the declarative description layer
(``repro.describe``).  The refactor is required to be bit-identical: any
change to cycle counts, retired-instruction counts, stall counts or the
architectural result is a modeling regression, not noise.

The golden rows run on both the interpreted reference engine and the
source-level generated backend (``repro.codegen``): an emitted module
that drifts from these absolute numbers is a codegen regression even if
it still agrees with the interpreter of the same build.
"""

import pytest

from repro.processors import build_processor
from repro.workloads import get_workload

#: (model, kernel) -> (cycles, instructions, stalls, final r0); captured at
#: scale=1 from the seed models (PR 1 tree) on the interpreted backend.
GOLDEN = {
    ("strongarm", "adpcm"): (10146, 8072, 2634, 2282867342),
    ("strongarm", "blowfish"): (11534, 6776, 7540, 1638522846),
    ("strongarm", "compress"): (8184, 4760, 3948, 58384),
    ("strongarm", "crc"): (7403, 4479, 3106, 4223799965),
    ("strongarm", "g721"): (10012, 6107, 4738, 3462125290),
    ("strongarm", "go"): (24059, 13592, 13399, 1286),
    ("xscale", "adpcm"): (11562, 8072, 11482, 2282867342),
    ("xscale", "blowfish"): (12373, 6776, 17770, 1638522846),
    ("xscale", "compress"): (8634, 4760, 11162, 58384),
    ("xscale", "crc"): (7600, 4479, 8455, 4223799965),
    ("xscale", "g721"): (11097, 6107, 12578, 3462125290),
    ("xscale", "go"): (27834, 13592, 40565, 1286),
    ("example", "crc"): (7495, 4479, 2006, 4223799965),
    ("example", "compress"): (8730, 4760, 2894, 58384),
    ("example", "blowfish"): (11913, 6776, 4321, 1638522846),
    # Dual-issue variants (PR 4): captured on the interpreted backend at the
    # introduction of IssueSpec-driven multi-issue elaboration.
    ("strongarm-ds", "adpcm"): (8123, 8072, 13604, 2282867342),
    ("strongarm-ds", "blowfish"): (9378, 6776, 17402, 1638522846),
    ("strongarm-ds", "compress"): (6924, 4760, 11587, 58384),
    ("strongarm-ds", "crc"): (5710, 4479, 6120, 4223799965),
    ("strongarm-ds", "g721"): (7724, 6107, 15462, 3462125290),
    ("strongarm-ds", "go"): (21146, 13592, 42076, 1286),
    ("xscale-ds", "adpcm"): (10237, 8072, 46324, 2282867342),
    ("xscale-ds", "blowfish"): (10667, 6776, 50530, 1638522846),
    ("xscale-ds", "compress"): (6936, 4760, 30034, 58384),
    ("xscale-ds", "crc"): (6012, 4479, 22661, 4223799965),
    ("xscale-ds", "g721"): (9628, 6107, 47141, 3462125290),
    ("xscale-ds", "go"): (24439, 13592, 119280, 1286),
    # Memory-hierarchy variants (PR 5): captured on the interpreted backend
    # at the introduction of MemorySpec-driven elaboration.  The sweep
    # points degrade exactly where the working set overflows the L1
    # (blowfish/compress at 512 B); the -l2 rows pay a few extra cycles
    # for cold misses but serve capacity misses from the L2.
    ("strongarm-l2", "adpcm"): (10182, 8072, 2634, 2282867342),
    ("strongarm-l2", "blowfish"): (14078, 6776, 13990, 1638522846),
    ("strongarm-l2", "compress"): (8862, 4760, 5640, 58384),
    ("strongarm-l2", "crc"): (7445, 4479, 3160, 4223799965),
    ("strongarm-l2", "g721"): (10054, 6107, 4756, 3462125290),
    ("strongarm-l2", "go"): (24173, 13592, 13615, 1286),
    ("xscale-l2", "adpcm"): (11598, 8072, 11482, 2282867342),
    ("xscale-l2", "blowfish"): (14911, 6776, 28966, 1638522846),
    ("xscale-l2", "compress"): (9306, 4760, 13754, 58384),
    ("xscale-l2", "crc"): (7642, 4479, 8527, 4223799965),
    ("xscale-l2", "g721"): (11133, 6107, 12602, 3462125290),
    ("xscale-l2", "go"): (27942, 13592, 40853, 1286),
    ("strongarm-c512", "adpcm"): (10146, 8072, 2634, 2282867342),
    ("strongarm-c512", "blowfish"): (23174, 6776, 37000, 1638522846),
    ("strongarm-c512", "compress"): (10884, 4760, 11148, 58384),
    ("strongarm-c512", "crc"): (7403, 4479, 3106, 4223799965),
    ("strongarm-c512", "g721"): (10012, 6107, 4738, 3462125290),
    ("strongarm-c512", "go"): (24059, 13592, 13399, 1286),
    ("strongarm-c2k", "adpcm"): (10146, 8072, 2634, 2282867342),
    ("strongarm-c2k", "blowfish"): (11534, 6776, 7540, 1638522846),
    ("strongarm-c2k", "compress"): (8184, 4760, 3948, 58384),
    ("strongarm-c2k", "crc"): (7403, 4479, 3106, 4223799965),
    ("strongarm-c2k", "g721"): (10012, 6107, 4738, 3462125290),
    ("strongarm-c2k", "go"): (24059, 13592, 13399, 1286),
    ("strongarm-c8k", "adpcm"): (10146, 8072, 2634, 2282867342),
    ("strongarm-c8k", "blowfish"): (11534, 6776, 7540, 1638522846),
    ("strongarm-c8k", "compress"): (8184, 4760, 3948, 58384),
    ("strongarm-c8k", "crc"): (7403, 4479, 3106, 4223799965),
    ("strongarm-c8k", "g721"): (10012, 6107, 4738, 3462125290),
    ("strongarm-c8k", "go"): (24059, 13592, 13399, 1286),
}


@pytest.mark.parametrize("backend", ["interpreted", "generated", "batched"])
@pytest.mark.parametrize("model,kernel", sorted(GOLDEN))
def test_golden_statistics_are_unchanged(model, kernel, backend):
    expected_cycles, expected_instructions, expected_stalls, expected_r0 = GOLDEN[
        (model, kernel)
    ]
    workload = get_workload(kernel, scale=1)
    processor = build_processor(model, backend=backend)
    processor.load_program(workload.program)
    stats = processor.run(max_cycles=2_000_000)

    assert stats.finish_reason == "halt"
    assert stats.cycles == expected_cycles
    assert stats.instructions == expected_instructions
    assert stats.stalls == expected_stalls
    assert processor.register(0) == expected_r0


#: Dual-issue variant -> its single-issue parent.
DUAL_ISSUE_PARENTS = {"strongarm-ds": "strongarm", "xscale-ds": "xscale"}


@pytest.mark.parametrize("variant,parent", sorted(DUAL_ISSUE_PARENTS.items()))
def test_dual_issue_invariants_against_single_issue_parent(variant, parent):
    """A wider front end may only help: same work, fewer (or equal) cycles.

    On every kernel the dual-issue model must retire exactly the same
    instruction stream as its parent (identical retired counts and final
    architectural result — the golden rows above pin the absolute values),
    and on the crc kernel its CPI must be at most the parent's.
    """
    for kernel in ("crc", "adpcm", "go"):
        workload = get_workload(kernel, scale=1)
        results = {}
        for model in (parent, variant):
            processor = build_processor(model)
            processor.load_program(workload.program)
            stats = processor.run(max_cycles=2_000_000)
            results[model] = (stats.cycles, stats.instructions, processor.register(0))
        assert results[variant][1] == results[parent][1], kernel
        assert results[variant][2] == results[parent][2], kernel
        cpi = {m: c / i for m, (c, i, _) in results.items()}
        if kernel == "crc":
            assert cpi[variant] <= cpi[parent]
