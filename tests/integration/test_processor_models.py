"""Integration tests: the generated RCPN simulators against the references.

These are the repository's equivalent of the paper's implicit correctness
requirement: a cycle-accurate simulator must produce the same architectural
results as a functional simulation of the same binary, for every benchmark.
"""

import pytest

from repro.baseline import FunctionalSimulator, SimpleScalarLikeSimulator
from repro.core import EngineOptions
from repro.processors import (
    build_example_processor,
    build_strongarm_processor,
    build_xscale_processor,
)
from repro.workloads import get_workload, workload_names

KERNELS = workload_names()
FULL_ISA_MODELS = {
    "strongarm": build_strongarm_processor,
    "xscale": build_xscale_processor,
}


def functional_reference(workload):
    simulator = FunctionalSimulator()
    simulator.load_program(workload.program)
    stats = simulator.run()
    return simulator, stats


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("model", sorted(FULL_ISA_MODELS))
def test_rcpn_models_match_functional_architectural_state(model, kernel):
    workload = get_workload(kernel, scale=1)
    functional, fstats = functional_reference(workload)

    processor = FULL_ISA_MODELS[model]()
    processor.load_program(workload.program)
    stats = processor.run()

    assert stats.finish_reason == "halt"
    assert stats.instructions == fstats.instructions
    assert processor.register(0) == functional.register(0)


@pytest.mark.parametrize("kernel", ["crc", "compress", "blowfish"])
def test_example_model_matches_functional_on_supported_kernels(kernel):
    # The Figure 4/5 example model implements only the alu/mem/branch/system
    # classes; these three kernels use no multiply or block transfer.
    workload = get_workload(kernel, scale=1)
    functional, fstats = functional_reference(workload)
    processor = build_example_processor()
    processor.load_program(workload.program)
    stats = processor.run(max_cycles=2_000_000)
    assert stats.instructions == fstats.instructions
    assert processor.register(0) == functional.register(0)


@pytest.mark.parametrize("kernel", ["crc", "go"])
def test_rcpn_cpi_within_band_of_simplescalar_baseline(kernel):
    """Figure 11: the CPI of the generated simulator tracks the baseline."""
    workload = get_workload(kernel, scale=1)
    baseline = SimpleScalarLikeSimulator()
    baseline.load_program(workload.program)
    bstats = baseline.run()

    processor = build_strongarm_processor()
    processor.load_program(workload.program)
    rstats = processor.run()

    assert 1.0 <= bstats.cpi <= 4.0
    assert 1.0 <= rstats.cpi <= 4.0
    # The paper reports ~10% difference; allow a generous band here.
    assert rstats.cpi == pytest.approx(bstats.cpi, rel=0.5)


def test_xscale_deeper_pipeline_costs_more_cycles_than_strongarm():
    workload = get_workload("go", scale=1)
    results = {}
    for name, builder in FULL_ISA_MODELS.items():
        processor = builder()
        processor.load_program(workload.program)
        results[name] = processor.run().cpi
    assert results["xscale"] >= results["strongarm"]


def test_engine_optimisations_do_not_change_simulated_behaviour():
    """The two engine optimisations are pure speed-ups (Section 4)."""
    workload = get_workload("crc", scale=1)
    reference = None
    for options in (
        EngineOptions(),
        EngineOptions(use_sorted_transitions=False),
        EngineOptions(two_list_everywhere=True),
    ):
        processor = build_strongarm_processor(engine_options=options)
        processor.load_program(workload.program)
        stats = processor.run()
        key = (stats.cycles, stats.instructions, processor.register(0))
        if reference is None:
            reference = key
        else:
            assert key == reference


def test_decode_cache_ablation_preserves_results_and_counts_hits():
    workload = get_workload("adpcm", scale=1)
    cached = build_strongarm_processor(use_decode_cache=True)
    cached.load_program(workload.program)
    cached_stats = cached.run()
    assert cached.decoder.hits > cached.decoder.misses

    uncached = build_strongarm_processor(use_decode_cache=False)
    uncached.load_program(workload.program)
    uncached_stats = uncached.run()
    assert uncached.decoder.hits == 0
    assert cached_stats.cycles == uncached_stats.cycles
    assert cached.register(0) == uncached.register(0)


def test_branch_heavy_kernel_exercises_reservation_stall_mechanism():
    workload = get_workload("crc", scale=1)
    processor = build_strongarm_processor()
    processor.load_program(workload.program)
    stats = processor.run()
    firings = stats.transition_firings
    assert firings["branch.taken"] > 0
    assert firings["branch.unstall"] == firings["branch.taken"]
    assert stats.squashed > 0


def test_cache_statistics_reported_by_generated_simulator():
    workload = get_workload("blowfish", scale=1)
    processor = build_xscale_processor()
    processor.load_program(workload.program)
    processor.run()
    cache_stats = processor.cache_statistics()
    assert cache_stats["dcache"].accesses > 0
    assert 0.5 <= cache_stats["dcache"].hit_rate <= 1.0


def test_strongarm_model_has_six_instruction_subnets():
    processor = build_strongarm_processor()
    instruction_subnets = [
        s for s in processor.net.subnets.values() if not s.is_instruction_independent
    ]
    assert len(instruction_subnets) == 6  # paper Section 5
    assert len(processor.net.operation_classes) == 6


def test_generation_report_for_models():
    for builder in (build_example_processor, build_strongarm_processor, build_xscale_processor):
        processor = builder()
        report = processor.generation_report
        assert report.dispatch_entries > 0
        assert report.generator_transitions
        assert len(report.place_order) == len(processor.net.places)
