"""Tracing must observe, never perturb — on every backend.

The observability contract has two halves, and this suite pins both:

* **Zero perturbation.**  A traced run produces bit-identical statistics,
  architectural state and memory counters to an untraced run of the same
  (model, workload) on the same backend — for all four backends, on a
  plain model and on an L2 model (so the cache category exercises a
  two-level hierarchy).
* **Trace-content golden.**  The event stream is not merely harmless, it
  is *correct*: per-category event counts equal the statistics counters
  the engines already maintain (firings per transition, stalls, squashes,
  generated tokens, per-level cache traffic), and — after normalising the
  process-global token sequence numbers — all four backends emit the same
  firing/stall/squash/token event stream.
"""

import pytest

from repro.core.engine import ENGINE_BACKENDS, EngineOptions
from repro.observe.trace import TraceConfig
from repro.processors import build_processor
from repro.workloads import get_workload

MODELS = ("strongarm", "strongarm-l2")
KERNEL = "crc"
MAX_CYCLES = 4_000
#: Large enough that the ring never evicts (the golden counts need the
#: whole run).
CAPACITY = 2_000_000


def run_once(model, backend, trace=None):
    options = EngineOptions(backend=backend, trace=trace)
    processor = build_processor(model, engine_options=options)
    workload = get_workload(KERNEL, scale=1)
    processor.load_program(workload.program)
    stats = processor.run(max_cycles=MAX_CYCLES)
    return processor, stats


def observable_state(processor, stats):
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "stalls": stats.stalls,
        "squashed": stats.squashed,
        "generated_tokens": stats.generated_tokens,
        "retired_by_class": dict(stats.retired_by_class),
        "transition_firings": dict(stats.transition_firings),
        "finish_reason": stats.finish_reason,
        "registers": [processor.register(index) for index in range(16)],
        "flags": processor.flags(),
        "memory": processor.memory.statistics_summary(),
    }


def normalized_events(tracer):
    """Event tuples with token seqs renumbered by first appearance.

    ``Token.seq`` is a process-global counter, so two runs of the same
    simulation see different absolute sequence numbers; dense renumbering
    makes the streams comparable across runs and backends.
    """
    mapping = {}
    rows = []
    for event in tracer.events:
        category, cycle, a, b, c, d = event
        if category == "cache":
            rows.append(event)
            continue
        seq = b
        if seq is not None and seq not in mapping:
            mapping[seq] = len(mapping)
        rows.append((category, cycle, a, mapping.get(seq), c, d))
    return rows


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("backend", ENGINE_BACKENDS)
def test_traced_run_is_bit_identical(model, backend):
    baseline = observable_state(*run_once(model, backend))
    traced_processor, traced_stats = run_once(
        model, backend, trace=TraceConfig(capacity=CAPACITY)
    )
    assert observable_state(traced_processor, traced_stats) == baseline
    assert traced_processor.tracer is not None
    assert traced_processor.tracer.dropped == 0


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("backend", ENGINE_BACKENDS)
def test_trace_content_matches_statistics(model, backend):
    processor, stats = run_once(model, backend, trace=TraceConfig(capacity=CAPACITY))
    tracer = processor.tracer
    counts = tracer.counts()

    assert dict(tracer.firing_counts()) == dict(stats.transition_firings)
    assert counts.get("stall", 0) == stats.stalls
    assert counts.get("squash", 0) == stats.squashed
    assert counts.get("token", 0) == stats.generated_tokens

    cache_events = [event for event in tracer.events if event[0] == "cache"]
    by_kind = {}
    for _, _, _level, kind, _address, _latency in cache_events:
        by_kind[kind] = by_kind.get(kind, 0) + 1
    memory = processor.memory.statistics_summary()
    levels = [entry for entry in memory.values() if isinstance(entry, dict)]
    hits = sum(level["hits"] for level in levels)
    misses = sum(level["misses"] for level in levels)
    assert by_kind.get("hit", 0) == hits
    assert by_kind.get("miss", 0) == misses
    # Every miss line-fills its level exactly once.
    assert by_kind.get("fill", 0) == misses


@pytest.mark.parametrize("model", MODELS)
def test_event_stream_identical_across_backends(model):
    config = TraceConfig(
        capacity=CAPACITY, categories=("firing", "stall", "squash", "token")
    )
    streams = {
        backend: normalized_events(run_once(model, backend, trace=config)[0].tracer)
        for backend in ENGINE_BACKENDS
    }
    reference = streams["interpreted"]
    assert reference, "interpreted backend recorded no events"
    for backend in ENGINE_BACKENDS[1:]:
        assert streams[backend] == reference, backend


def test_category_filter_limits_recording():
    processor, stats = run_once(
        "strongarm", "interpreted", trace=TraceConfig(capacity=CAPACITY, categories=("firing",))
    )
    counts = processor.tracer.counts()
    assert set(counts) == {"firing"}
    assert sum(counts.values()) == sum(stats.transition_firings.values())


def test_reset_clears_trace_and_second_run_matches():
    config = TraceConfig(capacity=CAPACITY)
    processor, first_stats = run_once("strongarm", "generated", trace=config)
    first_counts = processor.tracer.counts()
    processor.reset()
    assert processor.tracer.recorded == 0
    workload = get_workload(KERNEL, scale=1)
    processor.load_program(workload.program)
    second_stats = processor.run(max_cycles=MAX_CYCLES)
    assert second_stats.cycles == first_stats.cycles
    assert processor.tracer.counts() == first_counts
