"""Property-based tests for core invariants: multisets, the register protocol
and the cache model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RegRef, RegisterFile
from repro.cpn import Multiset
from repro.memory import Cache, CacheConfig


@given(st.lists(st.integers(0, 5)))
@settings(max_examples=150, deadline=None)
def test_multiset_length_equals_insertions(items):
    bag = Multiset(items)
    assert len(bag) == len(items)
    for item in set(items):
        assert bag.count(item) == items.count(item)


@given(st.lists(st.integers(0, 5), min_size=1))
@settings(max_examples=150, deadline=None)
def test_multiset_remove_inverts_add(items):
    bag = Multiset(items)
    for item in items:
        bag.remove(item)
    assert len(bag) == 0


@given(st.lists(st.integers(0, 3), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_register_protocol_sequence_preserves_last_writeback(indices):
    """After any in-order sequence of reserve/writeback pairs, the register
    holds the last written value and no stale writer remains."""
    regfile = RegisterFile("gpr", 4)
    last_value = {}
    for step, index in enumerate(indices):
        ref = RegRef(regfile.register(index))
        if not ref.can_write():
            continue
        ref.reserve_write()
        ref.value = step
        ref.writeback()
        last_value[index] = step
    for index, value in last_value.items():
        assert regfile.data[index] == value
    assert all(writer is None for writer in regfile.writers)


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_cache_statistics_are_consistent(addresses):
    cache = Cache(CacheConfig(size_bytes=512, line_bytes=32, associativity=2,
                              hit_latency=1, miss_penalty=10))
    for address in addresses:
        latency = cache.access(address)
        assert latency >= 1
    stats = cache.stats
    assert stats.accesses == len(addresses)
    assert stats.hits + stats.misses == stats.accesses
    assert 0.0 <= stats.hit_rate <= 1.0


@given(st.lists(st.integers(0, 63), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_repeated_accesses_to_small_working_set_eventually_hit(addresses):
    """A working set that fits in the cache cannot miss twice for one line."""
    cache = Cache(CacheConfig(size_bytes=4096, line_bytes=32, associativity=4))
    for address in addresses:
        cache.access(address * 4)
    distinct_lines = {address * 4 // 32 for address in addresses}
    assert cache.stats.misses <= len(distinct_lines)
