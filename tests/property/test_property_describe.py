"""Property tests for the declarative spec layer (IssueSpec / PipelineSpec).

Hypothesis drives the validation rules and the fingerprint through many
generated configurations: invalid issue widths and over-subscribed ports
must always be rejected, valid configurations must always elaborate, and
the content fingerprint must depend only on declarative *content* — not on
how the description was assembled (dict insertion order, tuple vs list
fields, keyword order).
"""

from hypothesis import given, settings, strategies as st
import pytest

from repro.describe import (
    FetchSpec,
    HazardSpec,
    IssuePortSpec,
    IssueSpec,
    PipelineSpec,
    SpecError,
    StageSpec,
    linear_path,
)

STAGES = ("S1", "S2", "S3")


def spec_with_issue(issue, capacity=2):
    """A minimal two-class pipeline around the given IssueSpec."""
    return PipelineSpec(
        name="PropPipe",
        stages=tuple(StageSpec(name, capacity=capacity) for name in STAGES),
        paths=(
            linear_path(
                "alu", STAGES,
                hooks={"S3": "alu.issue", "end": ("alu.execute", "alu.writeback")},
            ),
            linear_path(
                "system", STAGES,
                hooks={"S3": "system.issue", "end": "system.retire"},
            ),
        ),
        hazards=HazardSpec(forward_states=("S3",), front_flush_stages=("S1", "S2")),
        fetch=FetchSpec(style="sequential", capacity_stage="S1"),
        issue=issue,
    )


# -- validation properties ----------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(width=st.one_of(st.integers(max_value=0), st.booleans(), st.floats(), st.text()))
def test_non_positive_or_non_integer_widths_are_rejected(width):
    with pytest.raises(SpecError, match="issue width"):
        spec_with_issue(IssueSpec(width=width, stage="S2")).validate()


@settings(max_examples=30, deadline=None)
@given(width=st.integers(min_value=2, max_value=8), excess=st.integers(min_value=1, max_value=8))
def test_port_oversubscription_is_rejected(width, excess):
    issue = IssueSpec(
        width=width,
        stage="S2",
        ports=(IssuePortSpec("p", classes=("alu",), count=width + excess),),
    )
    with pytest.raises(SpecError, match="exceeds the issue width"):
        spec_with_issue(issue).validate()


@settings(max_examples=30, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=4),
    count=st.integers(min_value=1, max_value=4),
)
def test_valid_multi_issue_specs_always_validate(width, count):
    issue = IssueSpec(
        width=width,
        stage="S2",
        ports=(IssuePortSpec("p", classes=("alu",), count=min(count, width)),),
    )
    assert spec_with_issue(issue).validate()


def test_single_issue_with_ports_or_stage_is_rejected():
    with pytest.raises(SpecError, match="width > 1"):
        spec_with_issue(IssueSpec(width=1, stage="S2")).validate()
    with pytest.raises(SpecError, match="width > 1"):
        spec_with_issue(
            IssueSpec(width=1, ports=(IssuePortSpec("p", classes=("alu",)),))
        ).validate()


def test_unknown_port_class_and_duplicate_port_are_rejected():
    bad = IssueSpec(
        width=2,
        stage="S2",
        ports=(
            IssuePortSpec("p", classes=("vector",)),
            IssuePortSpec("p", classes=("alu",)),
        ),
    )
    with pytest.raises(SpecError) as caught:
        spec_with_issue(bad).validate()
    message = str(caught.value)
    assert "unknown operation class 'vector'" in message
    assert "duplicate issue port 'p'" in message


def test_path_bypassing_the_issue_stage_is_rejected():
    spec = PipelineSpec(
        name="Skips",
        stages=tuple(StageSpec(name, capacity=2) for name in STAGES),
        paths=(
            linear_path("alu", STAGES, hooks={"S3": "alu.issue", "end": "alu.writeback"}),
            # This path goes straight from S1 to S3: it never visits S2.
            linear_path("system", ("S1", "S3"), hooks={"S3": "system.issue", "end": "system.retire"}),
        ),
        fetch=FetchSpec(style="sequential", capacity_stage="S1"),
        issue=IssueSpec(width=2, stage="S2"),
    )
    with pytest.raises(SpecError, match="never visits issue stage"):
        spec.validate()


# -- fingerprint properties ---------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(width=st.integers(min_value=2, max_value=4), data=st.data())
def test_fingerprint_is_stable_under_assembly_order(width, data):
    """Equal declarative content -> equal fingerprint, however assembled.

    The hooks mapping of ``linear_path`` is shuffled, the ports tuple is
    passed once as a tuple and once as a list, and keyword order differs:
    none of that is content, so the fingerprint must not move.
    """
    hooks = {"S3": "alu.issue", "end": ("alu.execute", "alu.writeback")}
    shuffled_keys = data.draw(st.permutations(sorted(hooks)))
    shuffled = {key: hooks[key] for key in shuffled_keys}

    ports = (IssuePortSpec("p", classes=("alu",), count=1),)

    def build(hook_map, port_seq, flip_kwargs):
        if flip_kwargs:
            issue = IssueSpec(ports=tuple(port_seq), in_order=True, stage="S2", width=width)
        else:
            issue = IssueSpec(width=width, stage="S2", in_order=True, ports=port_seq)
        return PipelineSpec(
            name="PropPipe",
            stages=tuple(StageSpec(name, capacity=width) for name in STAGES),
            paths=(
                linear_path("alu", STAGES, hooks=hook_map),
                linear_path("system", STAGES, hooks={"S3": "system.issue", "end": "system.retire"}),
            ),
            hazards=HazardSpec(forward_states=("S3",), front_flush_stages=("S1", "S2")),
            fetch=FetchSpec(style="sequential", capacity_stage="S1"),
            issue=issue,
        )

    reference = build(hooks, ports, flip_kwargs=False).fingerprint()
    assert build(shuffled, list(ports), flip_kwargs=True).fingerprint() == reference


@settings(max_examples=30, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=4),
    other_width=st.integers(min_value=2, max_value=4),
    in_order=st.booleans(),
)
def test_fingerprint_distinguishes_issue_content(width, other_width, in_order):
    base = spec_with_issue(IssueSpec(width=width, stage="S2")).fingerprint()
    variant = spec_with_issue(
        IssueSpec(width=other_width, stage="S2", in_order=in_order)
    ).fingerprint()
    same_content = other_width == width and in_order
    assert (variant == base) == same_content
