"""Property-based tests (hypothesis) for the ISA substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import decode, encode
from repro.isa.alu import alu_operate, apply_shift
from repro.isa.flags import to_signed, to_unsigned
from repro.isa.instructions import (
    Branch,
    DataOpcode,
    DataProcessing,
    LoadStore,
    LoadStoreMultiple,
    Multiply,
    Operand2,
    ShiftType,
)

registers = st.integers(min_value=0, max_value=15)
words32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


@st.composite
def data_processing_instructions(draw):
    if draw(st.booleans()):
        operand2 = Operand2.from_immediate(draw(st.integers(0, 255)), draw(st.integers(0, 15)))
    else:
        operand2 = Operand2.from_register(
            draw(registers), draw(st.sampled_from(list(ShiftType))), draw(st.integers(0, 31))
        )
    return DataProcessing(
        opcode=draw(st.sampled_from(list(DataOpcode))),
        rd=draw(registers),
        rn=draw(registers),
        operand2=operand2,
        set_flags=draw(st.booleans()),
    )


@st.composite
def load_store_instructions(draw):
    if draw(st.booleans()):
        return LoadStore(
            load=draw(st.booleans()), byte=draw(st.booleans()), rd=draw(registers),
            rn=draw(registers), offset_immediate=draw(st.integers(0, 0xFFF)),
            pre_index=draw(st.booleans()), up=draw(st.booleans()), writeback=draw(st.booleans()),
        )
    return LoadStore(
        load=draw(st.booleans()), byte=draw(st.booleans()), rd=draw(registers),
        rn=draw(registers), offset_register=draw(registers), offset_immediate=None,
        shift_type=draw(st.sampled_from(list(ShiftType))), shift_amount=draw(st.integers(0, 31)),
        pre_index=draw(st.booleans()), up=draw(st.booleans()), writeback=draw(st.booleans()),
    )


@st.composite
def any_instruction(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(data_processing_instructions())
    if kind == 1:
        return draw(load_store_instructions())
    if kind == 2:
        return Branch(link=draw(st.booleans()), offset=draw(st.integers(-(1 << 23), (1 << 23) - 1)))
    if kind == 3:
        return Multiply(rd=draw(registers), rm=draw(registers), rs=draw(registers),
                        rn=draw(registers), accumulate=draw(st.booleans()),
                        set_flags=draw(st.booleans()))
    regs = draw(st.lists(registers, min_size=1, max_size=16, unique=True))
    return LoadStoreMultiple(load=draw(st.booleans()), rn=draw(registers),
                             register_list=tuple(sorted(regs)),
                             writeback=draw(st.booleans()), before=draw(st.booleans()),
                             up=draw(st.booleans()))


@given(any_instruction())
@settings(max_examples=300, deadline=None)
def test_encode_decode_roundtrip(instr):
    """decode(encode(i)) preserves every field of every instruction."""
    assert decode(encode(instr)) == instr


@given(any_instruction())
@settings(max_examples=150, deadline=None)
def test_encoding_fits_in_32_bits(instr):
    assert 0 <= encode(instr) <= 0xFFFFFFFF


@given(words32, words32)
@settings(max_examples=200, deadline=None)
def test_add_matches_python_arithmetic(a, b):
    result, n, z, c, v, _ = alu_operate(DataOpcode.ADD, a, b, 0)
    assert result == (a + b) & 0xFFFFFFFF
    assert c == ((a + b) > 0xFFFFFFFF)
    assert z == (result == 0)
    assert n == bool(result >> 31)
    assert v == (to_signed(a) + to_signed(b) != to_signed(result))


@given(words32, words32)
@settings(max_examples=200, deadline=None)
def test_sub_matches_python_arithmetic(a, b):
    result, _, z, c, _, _ = alu_operate(DataOpcode.SUB, a, b, 0)
    assert result == (a - b) & 0xFFFFFFFF
    assert c == (a >= b)  # carry means no borrow
    assert z == (a == b)


@given(words32)
@settings(max_examples=100, deadline=None)
def test_signed_unsigned_are_inverse(value):
    assert to_unsigned(to_signed(value)) == value


@given(words32, st.sampled_from(list(ShiftType)), st.integers(0, 31))
@settings(max_examples=200, deadline=None)
def test_shift_stays_in_32_bits(value, shift_type, amount):
    result, carry = apply_shift(value, shift_type, amount, carry_in=False)
    assert 0 <= result <= 0xFFFFFFFF
    assert isinstance(carry, bool) or carry in (0, 1)


@given(words32, st.integers(0, 31))
@settings(max_examples=100, deadline=None)
def test_lsl_then_lsr_masks_low_bits(value, amount):
    shifted, _ = apply_shift(value, ShiftType.LSL, amount, False)
    restored, _ = apply_shift(shifted, ShiftType.LSR, amount, False)
    assert restored == (value << amount & 0xFFFFFFFF) >> amount
